"""Vectorized similarity kernels over prepared source indexes.

The generic engine path scores value pairs through Python loops —
cheap per call, but the interpreter overhead dominates at millions of
pairs.  For similarity functions whose math reduces to array algebra
we can do radically better.  :func:`build_kernel` is the kernel
registry: given a similarity function and two sources it returns the
matching fast-path kernel, or ``None`` for the generic batch path.
Two kernels exist today:

* **q-gram bit kernel** (:class:`NGramBitKernel`, here) — every
  source value's q-gram set becomes a bit row of one packed ``uint64``
  matrix per source; a whole chunk scores with three array operations
  (gather, bitwise AND, ``np.bitwise_count``);
* **sparse TF/IDF kernel** (:class:`~repro.engine.sparse.TfIdfKernel`,
  :mod:`repro.engine.sparse`) — prepared TF/IDF vectors packed as CSR
  arrays over the shared vocabulary, chunks scored as sparse dot
  products.

A third, *composed* kernel serves multi-attribute requests:
:func:`build_multi_kernel` builds one column per attribute spec — a
real kernel where one exists, a :class:`ScalarColumn` fallback
otherwise — over the shared ``source.ids()`` row order, evaluates all
columns on the same candidate row arrays, masks missing values as
``None`` slots, and applies the request's
:class:`~repro.core.operators.functions.CombinationFunction`
column-wise (vectorized for the exact avg/min/max/weighted classes,
including their ``-0`` missing-as-zero policies; per-row for custom
combiners) — bit-identical to
:meth:`~repro.engine.scorer.ChunkScorer._score_multi`.

All kernels expose ``score_rows(domain_rows, range_rows) -> float64
scores`` over row indices aligned with ``source.ids()`` order, which
is the whole kernel contract: :class:`IndexedScorer` (and the sharded
block-vectorized mode) is kernel-agnostic.  Candidate pairs cross
process boundaries as int index arrays (~8 bytes/pair) instead of
string tuples, so the parallel path's IPC cost collapses as well; on
the sharded path the payload contract is *shard indices in, surviving
``(rows_a, rows_b, scores)`` arrays out* (see
:mod:`repro.engine.shards`).

Bit-exactness: the kernels evaluate the *same* arithmetic expressions
as the scalar ``_score`` implementations in the same order, so
vectorized, batched and per-pair scoring agree to the last bit — the
engine's equivalence guarantee holds across all execution paths.

numpy is optional: :func:`build_kernel` returns ``None`` when numpy
(for the bit kernel, ``np.bitwise_count``/numpy >= 2.0) is
unavailable, when the similarity function is not recognized, or when
the packed index would exceed the memory budget; callers fall back to
the Python path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - image always has numpy
    _np = None

from repro.core.operators.functions import (
    AvgFunction,
    CombinationFunction,
    MaxFunction,
    MinFunction,
    WeightedFunction,
)
from repro.model.source import LogicalSource
from repro.sim.base import SimilarityFunction
from repro.sim.ngram import NGramSimilarity

#: refuse to build packed matrices larger than this (bytes, both sides)
MAX_INDEX_BYTES = 512 * 1024 * 1024


def numpy_available() -> bool:
    """True when the bit-kernel's numpy primitives exist."""
    return _np is not None and hasattr(_np, "bitwise_count")


class NGramBitKernel:
    """Packed-bitmap q-gram scorer for one (domain, range) attribute pair.

    Rows are aligned with ``source.ids()`` order; a missing attribute
    value becomes an all-zero row, which scores 0.0 against everything
    and is therefore dropped by the engine's ``score > 0`` filter —
    the same outcome as the scalar path's missing-value skip.
    """

    #: dice/jaccard/overlap are symmetric in their operands, so the
    #: block-vectorized sharded mode may expand a self-matching pair
    #: in either orientation
    orientation_symmetric = True

    def __init__(self, sim: NGramSimilarity,
                 domain_values: Sequence[object],
                 range_values: Sequence[object]) -> None:
        self.method = sim.method
        vocabulary: dict = {}
        domain_grams = [self._grams(sim, value) for value in domain_values]
        range_grams = [self._grams(sim, value) for value in range_values]
        for grams in domain_grams:
            for gram in grams:
                if gram not in vocabulary:
                    vocabulary[gram] = len(vocabulary)
        for grams in range_grams:
            for gram in grams:
                if gram not in vocabulary:
                    vocabulary[gram] = len(vocabulary)
        width = max(1, (len(vocabulary) + 63) // 64)
        rows = len(domain_grams) + len(range_grams)
        if rows * width * 8 > MAX_INDEX_BYTES:
            raise MemoryError("packed gram index exceeds budget")
        self.domain_bits, self.domain_sizes = self._pack(
            domain_grams, vocabulary, width)
        self.range_bits, self.range_sizes = self._pack(
            range_grams, vocabulary, width)

    @staticmethod
    def _grams(sim: NGramSimilarity, value: object) -> frozenset:
        if value is None:
            return frozenset()
        return sim.grams(str(value))

    @staticmethod
    def _pack(gram_sets: List[frozenset], vocabulary: dict, width: int):
        bits = _np.zeros((len(gram_sets), width), dtype=_np.uint64)
        sizes = _np.zeros(len(gram_sets), dtype=_np.int64)
        for row, grams in enumerate(gram_sets):
            sizes[row] = len(grams)
            for gram in grams:
                position = vocabulary[gram]
                bits[row, position >> 6] |= _np.uint64(1 << (position & 63))
        return bits, sizes

    def score_rows(self, domain_rows, range_rows):
        """Score aligned row-index arrays; returns a float64 array.

        Evaluates the scalar ``_score`` expressions elementwise:
        overlap 0 (including missing values) scores 0.0 exactly.
        """
        overlap = _np.bitwise_count(
            self.domain_bits[domain_rows] & self.range_bits[range_rows]
        ).sum(axis=1, dtype=_np.int64)
        size_a = self.domain_sizes[domain_rows]
        size_b = self.range_sizes[range_rows]
        if self.method == "dice":
            denominator = size_a + size_b
        elif self.method == "jaccard":
            denominator = size_a + size_b - overlap
        else:  # overlap coefficient
            denominator = _np.minimum(size_a, size_b)
        safe = _np.maximum(denominator, 1)
        if self.method == "dice":
            scores = 2.0 * overlap / safe
        else:
            scores = overlap / safe
        scores[overlap == 0] = 0.0
        return scores

    def score_bound_rows(self, domain_rows, range_rows):
        """Per-pair score upper bounds from gram counts alone.

        The overlap can never exceed the smaller gram-set size (the
        length bucket both sides share), and each scalar expression is
        monotone in the exactly-represented integer overlap under
        IEEE correctly-rounded division, so
        ``score_rows(...) <= score_bound_rows(...)`` holds *exactly*,
        float by float — a pair whose bound misses the threshold can
        be dropped with bit-identical surviving results.  O(pairs)
        size gathers; the packed bitmaps are never touched.
        """
        size_a = self.domain_sizes[domain_rows]
        size_b = self.range_sizes[range_rows]
        cap = _np.minimum(size_a, size_b)
        if self.method == "dice":
            # same denominator as score_rows, numerator capped
            return 2.0 * cap / _np.maximum(size_a + size_b, 1)
        if self.method == "jaccard":
            # overlap=cap minimizes the denominator to max(a, b)
            return cap / _np.maximum(_np.maximum(size_a, size_b), 1)
        # overlap coefficient: 1.0 whenever overlap is possible at
        # all, 0.0 for an empty side (which scores exactly 0.0)
        return cap / _np.maximum(cap, 1)


def build_kernel(sim: SimilarityFunction,
                 domain: LogicalSource, range_: LogicalSource,
                 attribute: str,
                 range_attribute: str):
    """Build a vectorized kernel for ``sim`` over two sources, or ``None``.

    This is the engine's kernel registry: exact
    :class:`NGramSimilarity` scoring gets the packed bit kernel, exact
    :class:`~repro.sim.tfidf.TfIdfCosineSimilarity` scoring gets the
    sparse CSR kernel (:mod:`repro.engine.sparse`), and everything
    else — including subclasses that override ``_score`` and thereby
    silently change the math, such as SoftTFIDF — returns ``None``
    and falls back to the generic batch path.
    """
    if numpy_available() and isinstance(sim, NGramSimilarity) \
            and type(sim)._score is NGramSimilarity._score:
        domain_values = [instance.get(attribute) for instance in domain]
        if range_ is domain and range_attribute == attribute:
            range_values = domain_values
        else:
            range_values = [instance.get(range_attribute)
                            for instance in range_]
        try:
            return NGramBitKernel(sim, domain_values, range_values)
        except MemoryError:
            return None
    from repro.engine import sparse
    return sparse.build_tfidf_kernel(sim, domain, range_,
                                     attribute, range_attribute)


# ----------------------------------------------------------------------
# multi-attribute composed kernel
# ----------------------------------------------------------------------

def source_values(domain: LogicalSource, range_: LogicalSource,
                  attribute: str, range_attribute: str):
    """Attribute values of both sides in ``source.ids()`` row order.

    Self-matching on the same attribute shares one list, mirroring the
    aliasing the kernel builders use.
    """
    domain_values = [instance.get(attribute) for instance in domain]
    if range_ is domain and range_attribute == attribute:
        return domain_values, domain_values
    return domain_values, [instance.get(range_attribute)
                           for instance in range_]


def missing_mask(values: Sequence[object]):
    """Boolean row array marking ``None`` attribute values."""
    return _np.fromiter((value is None for value in values),
                        dtype=_np.bool_, count=len(values))


class ScalarColumn:
    """Generic ``score_rows`` column for one spec without a vector kernel.

    Looks the candidate rows' values up in ``source.ids()``-aligned
    text lists and scores the distinct unseen value pairs through the
    similarity function's ``score_batch`` — exactly the evaluation
    (and the bounded per-attribute memo) the generic
    :class:`~repro.engine.scorer.ChunkScorer` performs, so scores are
    bit-identical to the scalar multi-attribute path.  Missing values
    score 0.0 like the real kernels; the composed kernel masks them
    out before the combiner ever sees the column.

    Not orientation-symmetric in general (the wrapped similarity may
    not be), so a composed kernel containing a scalar column keeps the
    sharded self-matching path on the orientation-faithful pair
    stream instead of the block-vectorized expansion.
    """

    orientation_symmetric = False

    def __init__(self, sim: SimilarityFunction,
                 domain_values: Sequence[object],
                 range_values: Sequence[object], *,
                 cache_limit: int = 1 << 20,
                 cache: Optional[dict] = None) -> None:
        self.sim = sim
        self.domain_texts = [None if value is None else str(value)
                             for value in domain_values]
        if range_values is domain_values:
            self.range_texts = self.domain_texts
        else:
            self.range_texts = [None if value is None else str(value)
                                for value in range_values]
        self.cache_limit = cache_limit
        # ``cache`` lets a long-lived caller (the serving subsystem's
        # per-batch rebinding) share one memo across instances
        self._cache: dict = {} if cache is None else cache

    def score_rows(self, domain_rows, range_rows):
        texts_a = self.domain_texts
        texts_b = self.range_texts
        cache = self._cache
        keys: List[Optional[tuple]] = []
        pending: dict = {}
        for row_a, row_b in zip(_np.asarray(domain_rows).tolist(),
                                _np.asarray(range_rows).tolist()):
            value_a = texts_a[row_a]
            value_b = texts_b[row_b]
            if value_a is None or value_b is None:
                keys.append(None)
                continue
            key = (value_a, value_b)
            keys.append(key)
            if key not in cache and key not in pending:
                pending[key] = None
        if pending:
            work = list(pending)
            fresh = dict(zip(work, self.sim.score_batch(work)))
        else:
            fresh = {}
        out = _np.zeros(len(keys), dtype=_np.float64)
        for index, key in enumerate(keys):
            if key is None:
                continue
            score = fresh.get(key)
            if score is None:
                score = cache[key]
            out[index] = score
        if fresh:
            if len(cache) + len(fresh) > self.cache_limit:
                cache.clear()
            if len(fresh) <= self.cache_limit:
                cache.update(fresh)
        return out


def _combine_columns(combiner: CombinationFunction, columns, present):
    """Apply ``combiner`` column-wise; dropped slots become 0.0.

    Vectorized implementations exist for the exact avg/min/max/
    weighted classes (covering their missing-as-zero ``-0`` variants);
    any subclass falls back to per-row ``combine`` calls.  Either way
    the result is bit-identical to the scalar loop: sums accumulate
    left to right with missing slots contributing an exact ``+0.0``
    (which IEEE addition cannot observe on the engine's non-negative
    scores), min/max perform no arithmetic, and divisions divide the
    same two float64 values.  A combined result of ``None`` maps to
    0.0, which the engine's ``score > 0`` filter removes — the same
    outcome as the scalar path dropping the pair.
    """
    count = len(columns[0])
    cls = type(combiner)
    if cls is AvgFunction:
        acc = _np.zeros(count, dtype=_np.float64)
        available = _np.zeros(count, dtype=_np.int64)
        for column, mask in zip(columns, present):
            acc = acc + _np.where(mask, column, 0.0)
            available += mask
        if combiner.missing_as_zero:
            return acc / len(columns)
        valid = available > 0
        return _np.where(valid, acc / _np.maximum(available, 1), 0.0)
    if cls is MinFunction:
        acc = _np.full(count, _np.inf, dtype=_np.float64)
        available = _np.zeros(count, dtype=_np.int64)
        for column, mask in zip(columns, present):
            acc = _np.minimum(acc, _np.where(mask, column, _np.inf))
            available += mask
        if combiner.missing_as_zero:
            valid = available == len(columns)
        else:
            valid = available > 0
        return _np.where(valid, acc, 0.0)
    if cls is MaxFunction:
        acc = _np.full(count, -_np.inf, dtype=_np.float64)
        available = _np.zeros(count, dtype=_np.int64)
        for column, mask in zip(columns, present):
            acc = _np.maximum(acc, _np.where(mask, column, -_np.inf))
            available += mask
        return _np.where(available > 0, acc, 0.0)
    if cls is WeightedFunction and len(combiner.weights) == len(columns):
        if combiner.missing_as_zero:
            total = _np.zeros(count, dtype=_np.float64)
            for weight, column, mask in zip(combiner.weights, columns,
                                            present):
                total = total + _np.where(mask, weight * column, 0.0)
            return total / sum(combiner.weights)
        total = _np.zeros(count, dtype=_np.float64)
        weight_sum = _np.zeros(count, dtype=_np.float64)
        for weight, column, mask in zip(combiner.weights, columns, present):
            total = total + _np.where(mask, weight * column, 0.0)
            weight_sum = weight_sum + _np.where(mask, weight, 0.0)
        valid = weight_sum > 0.0
        return _np.where(valid, total / _np.where(valid, weight_sum, 1.0),
                         0.0)
    # custom combiner subclass: per-row fallback through the scalar API
    combine = combiner.combine
    out = _np.zeros(count, dtype=_np.float64)
    column_lists = [column.tolist() for column in columns]
    mask_lists = [mask.tolist() for mask in present]
    for row in range(count):
        values = [column[row] if mask[row] else None
                  for column, mask in zip(column_lists, mask_lists)]
        score = combine(values)
        if score is not None:
            out[row] = score
    return out


class MultiSpecKernel:
    """Composed kernel for multi-attribute requests.

    One ``score_rows`` column per attribute spec — a real vectorized
    kernel where one exists, a :class:`ScalarColumn` otherwise — all
    aligned on the same ``source.ids()`` row order and evaluated on
    the same candidate row arrays.  Missing values are masked into
    ``None`` slots and the :class:`CombinationFunction` is applied
    column-wise (:func:`_combine_columns`), so the combined scores are
    bit-identical to :meth:`ChunkScorer._score_multi`; pairs the
    combiner drops surface as 0.0 and fall to the engine's
    ``score > 0`` filter.

    When a positive ``threshold`` is supplied and the combiner is one
    of the exact built-in classes, ``score_rows`` evaluates columns
    *progressively*: after each column, rows whose best achievable
    combined score (a per-combiner upper bound assuming every
    unevaluated column contributes its cheap per-pair cap — the q-gram
    gram-count bound where a column offers ``score_bound_rows``, the
    ``[0, 1]`` score contract otherwise) falls below the threshold by
    the safety slack are dropped from the remaining columns'
    evaluation.  Dropped rows return 0.0 — below the positive
    threshold, exactly where their true combined score already was —
    and survivors are re-combined from the full per-column scores, so
    the output is bit-identical to the unfiltered path; custom
    combiner subclasses disable the prefilter entirely.
    """

    #: absolute slack for prefilter bound comparisons: bounds are a
    #: few float operations over values in [0, 1], so accumulated
    #: rounding error sits orders of magnitude below this.  The slack
    #: can only make the filter keep extra rows (settled by the exact
    #: combine + threshold mask), never drop a surviving one.
    PREFILTER_SLACK = 1e-9

    def __init__(self, columns, domain_missing, range_missing,
                 combiner: CombinationFunction, *,
                 threshold: Optional[float] = None) -> None:
        self.columns = list(columns)
        self.domain_missing = list(domain_missing)
        self.range_missing = list(range_missing)
        self.combiner = combiner
        #: rows dropped by the progressive prefilter, cumulative
        self.prefiltered = 0
        # prefilter only for the exact built-in classes, whose bound
        # formulas below are proven; a subclass may combine arbitrarily
        cls = type(combiner)
        eligible = cls in (AvgFunction, MinFunction, MaxFunction) or (
            cls is WeightedFunction
            and len(combiner.weights) == len(self.columns))
        self._prefilter = (threshold if threshold is not None
                           and threshold > 0.0 and eligible
                           and len(self.columns) > 1 else None)
        # self-matching block expansion may flip pair orientation; only
        # safe when every column is (all real kernels are, by contract)
        self.orientation_symmetric = all(
            getattr(column, "orientation_symmetric", False)
            for column in self.columns)

    def score_rows(self, domain_rows, range_rows):
        """Combined float64 scores; dropped (``None``) combos are 0.0."""
        if self._prefilter is not None:
            return self._score_rows_prefiltered(domain_rows, range_rows)
        scores = [column.score_rows(domain_rows, range_rows)
                  for column in self.columns]
        present = [
            ~(domain_miss[domain_rows] | range_miss[range_rows])
            for domain_miss, range_miss in zip(self.domain_missing,
                                               self.range_missing)
        ]
        return _combine_columns(self.combiner, scores, present)

    def _column_caps(self, domain_rows, range_rows):
        """Per-row score caps per column, for the unevaluated tail.

        Columns exposing ``score_bound_rows`` (the q-gram bit kernel's
        gram-count/length bound, the sparse kernel's emptiness cap)
        give real per-pair bounds; the rest fall back to the engine's
        ``[0, 1]`` score contract.  Every cap is an exact float upper
        bound on the column's ``score_rows`` output.
        """
        count = len(domain_rows)
        caps = []
        for column in self.columns:
            bound_rows = getattr(column, "score_bound_rows", None)
            if bound_rows is None:
                caps.append(_np.ones(count, dtype=_np.float64))
            else:
                caps.append(_np.minimum(
                    bound_rows(domain_rows, range_rows), 1.0))
        return caps

    def _score_rows_prefiltered(self, domain_rows, range_rows):
        """Progressive column evaluation under the threshold prefilter.

        Per combiner class the bound on a row's best achievable final
        score, after evaluating columns ``0..j`` (``S``/``c`` the sum/
        count of present scores, ``r`` the remaining-column count,
        caps as in :meth:`_column_caps`):

        * avg (skip):  ``(S + r) / (c + r)`` — monotone since every
          score is at most 1;
        * avg (-0):    ``(S + sum(remaining caps)) / n``;
        * min (skip):  current min when anything is present, else the
          largest remaining cap (one present column is the best case);
        * min (-0):    0 once any evaluated column was missing, else
          ``min(current min, smallest remaining cap)``;
        * max:         ``max(current max, largest remaining cap, 0)``;
        * weighted (skip): ``(N + Wr) / (D + Wr)`` with ``N``/``D``
          the present weighted sum / weight mass and ``Wr`` the
          remaining weight mass (monotone mediant, scores at most 1);
        * weighted (-0):   ``(N + sum(remaining w*cap)) / W_total``.

        A row is dropped only when its bound misses the threshold by
        :data:`PREFILTER_SLACK`, which dwarfs every float error above,
        so no row the exact combine would score at or over the
        threshold is ever dropped.
        """
        domain_rows = _np.asarray(domain_rows)
        range_rows = _np.asarray(range_rows)
        count = len(domain_rows)
        columns = self.columns
        n = len(columns)
        combiner = self.combiner
        cls = type(combiner)
        cutoff = self._prefilter - self.PREFILTER_SLACK
        caps = self._column_caps(domain_rows, range_rows)
        # suffix aggregates of the caps over the unevaluated tail:
        # index j holds the aggregate of caps[j+1:]
        cap_sum_after = [None] * n
        cap_max_after = [None] * n
        cap_min_after = [None] * n
        running_sum = _np.zeros(count, dtype=_np.float64)
        running_max = _np.zeros(count, dtype=_np.float64)
        running_min = _np.full(count, _np.inf, dtype=_np.float64)
        for j in range(n - 1, -1, -1):
            cap_sum_after[j] = running_sum
            cap_max_after[j] = running_max
            cap_min_after[j] = running_min
            running_sum = running_sum + caps[j]
            running_max = _np.maximum(running_max, caps[j])
            running_min = _np.minimum(running_min, caps[j])
        if cls is WeightedFunction:
            weights = combiner.weights
            weight_total = sum(weights)
            if combiner.missing_as_zero:
                wcap_sum_after = [None] * n
                running_wsum = _np.zeros(count, dtype=_np.float64)
                for j in range(n - 1, -1, -1):
                    wcap_sum_after[j] = running_wsum
                    running_wsum = running_wsum + weights[j] * caps[j]
        alive = _np.arange(count, dtype=_np.int64)
        full_scores = []
        full_present = []
        acc_sum = _np.zeros(count, dtype=_np.float64)
        acc_den = _np.zeros(count, dtype=_np.float64)
        acc_count = _np.zeros(count, dtype=_np.int64)
        acc_min = _np.full(count, _np.inf, dtype=_np.float64)
        acc_max = _np.full(count, -_np.inf, dtype=_np.float64)
        for j, column in enumerate(columns):
            col_scores = _np.zeros(count, dtype=_np.float64)
            col_present = _np.zeros(count, dtype=_np.bool_)
            if len(alive):
                rows_a = domain_rows[alive]
                rows_b = range_rows[alive]
                col_scores[alive] = column.score_rows(rows_a, rows_b)
                col_present[alive] = ~(self.domain_missing[j][rows_a]
                                       | self.range_missing[j][rows_b])
            full_scores.append(col_scores)
            full_present.append(col_present)
            if not len(alive) or j == n - 1:
                continue
            s = col_scores[alive]
            p = col_present[alive]
            if cls is AvgFunction:
                acc_sum[alive] += _np.where(p, s, 0.0)
                acc_count[alive] += p
                if combiner.missing_as_zero:
                    bound = (acc_sum[alive]
                             + cap_sum_after[j][alive]) / n
                else:
                    r = n - 1 - j
                    bound = ((acc_sum[alive] + r)
                             / (acc_count[alive] + r))
            elif cls is MinFunction:
                acc_min[alive] = _np.minimum(
                    acc_min[alive], _np.where(p, s, _np.inf))
                acc_count[alive] += p
                if combiner.missing_as_zero:
                    bound = _np.where(
                        acc_count[alive] == j + 1,
                        _np.minimum(acc_min[alive],
                                    cap_min_after[j][alive]),
                        0.0)
                else:
                    bound = _np.where(acc_count[alive] > 0,
                                      acc_min[alive],
                                      cap_max_after[j][alive])
            elif cls is MaxFunction:
                acc_max[alive] = _np.maximum(
                    acc_max[alive], _np.where(p, s, -_np.inf))
                bound = _np.maximum(
                    _np.maximum(acc_max[alive],
                                cap_max_after[j][alive]), 0.0)
            else:  # WeightedFunction with matching weights
                if combiner.missing_as_zero:
                    acc_sum[alive] += _np.where(p, weights[j] * s, 0.0)
                    bound = ((acc_sum[alive]
                              + wcap_sum_after[j][alive])
                             / weight_total)
                else:
                    acc_sum[alive] += _np.where(p, weights[j] * s, 0.0)
                    acc_den[alive] += _np.where(p, weights[j], 0.0)
                    wr = sum(weights[j + 1:])
                    den = acc_den[alive] + wr
                    positive = den > 0.0
                    bound = _np.where(
                        positive,
                        (acc_sum[alive] + wr)
                        / _np.where(positive, den, 1.0),
                        0.0)
            keep = bound >= cutoff
            if not keep.all():
                alive = alive[keep]
        self.prefiltered += count - len(alive)
        out = _np.zeros(count, dtype=_np.float64)
        if len(alive):
            out[alive] = _combine_columns(
                combiner,
                [scores[alive] for scores in full_scores],
                [mask[alive] for mask in full_present])
        return out


def build_multi_kernel(request) -> Optional[MultiSpecKernel]:
    """Build the composed kernel for a multi-attribute request, or ``None``.

    Eligible when numpy is available and at least one spec has a real
    vectorized kernel (otherwise the generic chunk scorer — with its
    own per-attribute memo — is just as good and skips the packing
    cost).  Specs without a kernel become :class:`ScalarColumn`
    fallbacks, so one slow similarity no longer forces the whole
    request off the fast path.  The request's threshold feeds the
    per-spec progressive prefilter (see :class:`MultiSpecKernel`) —
    rows no combiner could lift over it skip the remaining columns'
    work, with bit-identical surviving output.
    """
    if _np is None or request.combiner is None:
        return None
    kernels = [build_kernel(spec.similarity, request.domain, request.range,
                            spec.attribute, spec.range_attribute)
               for spec in request.specs]
    if not any(kernel is not None for kernel in kernels):
        # bail before the fallback columns and masks are built: an
        # all-fallback composition would just be the generic scorer
        # with extra packing cost
        return None
    columns = []
    domain_missing = []
    range_missing = []
    for spec, kernel in zip(request.specs, kernels):
        domain_values, range_values = source_values(
            request.domain, request.range,
            spec.attribute, spec.range_attribute)
        if kernel is None:
            kernel = ScalarColumn(spec.similarity, domain_values,
                                  range_values)
        columns.append(kernel)
        domain_missing.append(missing_mask(domain_values))
        range_missing.append(missing_mask(range_values)
                             if range_values is not domain_values
                             else domain_missing[-1])
    return MultiSpecKernel(columns, domain_missing, range_missing,
                           request.combiner, threshold=request.threshold)


class IndexedScorer:
    """Bridges id-pair chunks onto a vectorized kernel.

    Kernel-agnostic: anything exposing ``score_rows(domain_rows,
    range_rows)`` over ``source.ids()``-aligned row indices works (the
    q-gram bit kernel and the sparse TF/IDF kernel today).  The parent
    converts each chunk of ``(domain id, range id)`` string pairs into
    int row arrays (:meth:`convert`); scoring (:meth:`score_rows`)
    runs wherever the scorer lives — inline, or inside forked workers
    that inherited the packed arrays — and returns only surviving
    rows; :meth:`triples` maps survivors back to id strings in the
    parent.
    """

    def __init__(self, kernel, domain_ids: List[str],
                 range_ids: List[str], threshold: float, *,
                 missing_zero: bool = False,
                 domain_missing=None, range_missing=None) -> None:
        self.kernel = kernel
        self.threshold = threshold
        self.domain_ids = domain_ids
        self.range_ids = range_ids
        self._domain_rows = {id: row for row, id in enumerate(domain_ids)}
        self._range_rows = {id: row for row, id in enumerate(range_ids)}
        # single-attribute missing="zero" policy: pairs with a missing
        # value (which every kernel scores exactly 0.0) survive the
        # filter at threshold 0 instead of being dropped with the
        # ordinary zero scores
        self.missing_zero = missing_zero
        self.domain_missing = domain_missing
        self.range_missing = range_missing

    def convert(self, chunk):
        """Map a chunk of id pairs to row arrays (unknown ids dropped)."""
        domain_row = self._domain_rows.get
        range_row = self._range_rows.get
        rows_a: List[int] = []
        rows_b: List[int] = []
        for id_a, id_b in chunk:
            row_a = domain_row(id_a)
            row_b = range_row(id_b)
            if row_a is None or row_b is None:
                continue
            rows_a.append(row_a)
            rows_b.append(row_b)
        # int32 keeps IPC payloads at 8 bytes/pair; sources are far
        # below 2**31 rows.
        return (_np.asarray(rows_a, dtype=_np.int32),
                _np.asarray(rows_b, dtype=_np.int32))

    def score_rows(self, rows_a, rows_b):
        """Score row arrays; return only rows surviving the threshold."""
        scores = self.kernel.score_rows(rows_a, rows_b)
        mask = (scores >= self.threshold) & (scores > 0.0)
        if self.missing_zero and self.threshold <= 0.0 and len(rows_a):
            missing = (self.domain_missing[rows_a]
                       | self.range_missing[rows_b])
            mask = mask | missing
        return rows_a[mask], rows_b[mask], scores[mask]

    def triples(self, rows_a, rows_b, scores):
        """Materialize surviving rows as (domain id, range id, score)."""
        domain_ids = self.domain_ids
        range_ids = self.range_ids
        return [
            (domain_ids[row_a], range_ids[row_b], score)
            for row_a, row_b, score in zip(
                rows_a.tolist(), rows_b.tolist(), scores.tolist())
        ]


# Worker-side slot for the parallel indexed path (see scorer.py for the
# same pattern on the generic path).
_ACTIVE_INDEXED: Optional[IndexedScorer] = None


def _install_indexed(scorer: Optional[IndexedScorer]) -> None:
    global _ACTIVE_INDEXED
    _ACTIVE_INDEXED = scorer


def _score_rows_task(rows):
    scorer = _ACTIVE_INDEXED
    if scorer is None:  # pragma: no cover - defensive; engine installs first
        raise RuntimeError("no indexed scorer installed in worker process")
    return scorer.score_rows(*rows)


def _score_rows_task_timed(rows):
    """Like :func:`_score_rows_task` but reporting worker-side seconds.

    The autotuner's chunk-size feedback needs the scoring cost alone,
    not queueing or IPC latency the parent would otherwise fold in.
    """
    import time
    scorer = _ACTIVE_INDEXED
    if scorer is None:  # pragma: no cover - defensive; engine installs first
        raise RuntimeError("no indexed scorer installed in worker process")
    start = time.perf_counter()
    survivors = scorer.score_rows(*rows)
    return time.perf_counter() - start, survivors
