"""Vectorized similarity kernels over prepared source indexes.

The generic engine path scores value pairs through Python loops —
cheap per call, but the interpreter overhead dominates at millions of
pairs.  For similarity functions whose math reduces to array algebra
we can do radically better.  :func:`build_kernel` is the kernel
registry: given a similarity function and two sources it returns the
matching fast-path kernel, or ``None`` for the generic batch path.
Two kernels exist today:

* **q-gram bit kernel** (:class:`NGramBitKernel`, here) — every
  source value's q-gram set becomes a bit row of one packed ``uint64``
  matrix per source; a whole chunk scores with three array operations
  (gather, bitwise AND, ``np.bitwise_count``);
* **sparse TF/IDF kernel** (:class:`~repro.engine.sparse.TfIdfKernel`,
  :mod:`repro.engine.sparse`) — prepared TF/IDF vectors packed as CSR
  arrays over the shared vocabulary, chunks scored as sparse dot
  products.

Both expose ``score_rows(domain_rows, range_rows) -> float64 scores``
over row indices aligned with ``source.ids()`` order, which is the
whole kernel contract: :class:`IndexedScorer` (and the sharded
block-vectorized mode) is kernel-agnostic.  Candidate pairs cross
process boundaries as int index arrays (~8 bytes/pair) instead of
string tuples, so the parallel path's IPC cost collapses as well; on
the sharded path the payload contract is *shard indices in, surviving
``(rows_a, rows_b, scores)`` arrays out* (see
:mod:`repro.engine.shards`).

Bit-exactness: the kernels evaluate the *same* arithmetic expressions
as the scalar ``_score`` implementations in the same order, so
vectorized, batched and per-pair scoring agree to the last bit — the
engine's equivalence guarantee holds across all execution paths.

numpy is optional: :func:`build_kernel` returns ``None`` when numpy
(for the bit kernel, ``np.bitwise_count``/numpy >= 2.0) is
unavailable, when the similarity function is not recognized, or when
the packed index would exceed the memory budget; callers fall back to
the Python path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - image always has numpy
    _np = None

from repro.model.source import LogicalSource
from repro.sim.base import SimilarityFunction
from repro.sim.ngram import NGramSimilarity

#: refuse to build packed matrices larger than this (bytes, both sides)
MAX_INDEX_BYTES = 512 * 1024 * 1024


def numpy_available() -> bool:
    """True when the bit-kernel's numpy primitives exist."""
    return _np is not None and hasattr(_np, "bitwise_count")


class NGramBitKernel:
    """Packed-bitmap q-gram scorer for one (domain, range) attribute pair.

    Rows are aligned with ``source.ids()`` order; a missing attribute
    value becomes an all-zero row, which scores 0.0 against everything
    and is therefore dropped by the engine's ``score > 0`` filter —
    the same outcome as the scalar path's missing-value skip.
    """

    def __init__(self, sim: NGramSimilarity,
                 domain_values: Sequence[object],
                 range_values: Sequence[object]) -> None:
        self.method = sim.method
        vocabulary: dict = {}
        domain_grams = [self._grams(sim, value) for value in domain_values]
        range_grams = [self._grams(sim, value) for value in range_values]
        for grams in domain_grams:
            for gram in grams:
                if gram not in vocabulary:
                    vocabulary[gram] = len(vocabulary)
        for grams in range_grams:
            for gram in grams:
                if gram not in vocabulary:
                    vocabulary[gram] = len(vocabulary)
        width = max(1, (len(vocabulary) + 63) // 64)
        rows = len(domain_grams) + len(range_grams)
        if rows * width * 8 > MAX_INDEX_BYTES:
            raise MemoryError("packed gram index exceeds budget")
        self.domain_bits, self.domain_sizes = self._pack(
            domain_grams, vocabulary, width)
        self.range_bits, self.range_sizes = self._pack(
            range_grams, vocabulary, width)

    @staticmethod
    def _grams(sim: NGramSimilarity, value: object) -> frozenset:
        if value is None:
            return frozenset()
        return sim.grams(str(value))

    @staticmethod
    def _pack(gram_sets: List[frozenset], vocabulary: dict, width: int):
        bits = _np.zeros((len(gram_sets), width), dtype=_np.uint64)
        sizes = _np.zeros(len(gram_sets), dtype=_np.int64)
        for row, grams in enumerate(gram_sets):
            sizes[row] = len(grams)
            for gram in grams:
                position = vocabulary[gram]
                bits[row, position >> 6] |= _np.uint64(1 << (position & 63))
        return bits, sizes

    def score_rows(self, domain_rows, range_rows):
        """Score aligned row-index arrays; returns a float64 array.

        Evaluates the scalar ``_score`` expressions elementwise:
        overlap 0 (including missing values) scores 0.0 exactly.
        """
        overlap = _np.bitwise_count(
            self.domain_bits[domain_rows] & self.range_bits[range_rows]
        ).sum(axis=1, dtype=_np.int64)
        size_a = self.domain_sizes[domain_rows]
        size_b = self.range_sizes[range_rows]
        if self.method == "dice":
            denominator = size_a + size_b
        elif self.method == "jaccard":
            denominator = size_a + size_b - overlap
        else:  # overlap coefficient
            denominator = _np.minimum(size_a, size_b)
        safe = _np.maximum(denominator, 1)
        if self.method == "dice":
            scores = 2.0 * overlap / safe
        else:
            scores = overlap / safe
        scores[overlap == 0] = 0.0
        return scores


def build_kernel(sim: SimilarityFunction,
                 domain: LogicalSource, range_: LogicalSource,
                 attribute: str,
                 range_attribute: str):
    """Build a vectorized kernel for ``sim`` over two sources, or ``None``.

    This is the engine's kernel registry: exact
    :class:`NGramSimilarity` scoring gets the packed bit kernel, exact
    :class:`~repro.sim.tfidf.TfIdfCosineSimilarity` scoring gets the
    sparse CSR kernel (:mod:`repro.engine.sparse`), and everything
    else — including subclasses that override ``_score`` and thereby
    silently change the math, such as SoftTFIDF — returns ``None``
    and falls back to the generic batch path.
    """
    if numpy_available() and isinstance(sim, NGramSimilarity) \
            and type(sim)._score is NGramSimilarity._score:
        domain_values = [instance.get(attribute) for instance in domain]
        if range_ is domain and range_attribute == attribute:
            range_values = domain_values
        else:
            range_values = [instance.get(range_attribute)
                            for instance in range_]
        try:
            return NGramBitKernel(sim, domain_values, range_values)
        except MemoryError:
            return None
    from repro.engine import sparse
    return sparse.build_tfidf_kernel(sim, domain, range_,
                                     attribute, range_attribute)


class IndexedScorer:
    """Bridges id-pair chunks onto a vectorized kernel.

    Kernel-agnostic: anything exposing ``score_rows(domain_rows,
    range_rows)`` over ``source.ids()``-aligned row indices works (the
    q-gram bit kernel and the sparse TF/IDF kernel today).  The parent
    converts each chunk of ``(domain id, range id)`` string pairs into
    int row arrays (:meth:`convert`); scoring (:meth:`score_rows`)
    runs wherever the scorer lives — inline, or inside forked workers
    that inherited the packed arrays — and returns only surviving
    rows; :meth:`triples` maps survivors back to id strings in the
    parent.
    """

    def __init__(self, kernel, domain_ids: List[str],
                 range_ids: List[str], threshold: float) -> None:
        self.kernel = kernel
        self.threshold = threshold
        self.domain_ids = domain_ids
        self.range_ids = range_ids
        self._domain_rows = {id: row for row, id in enumerate(domain_ids)}
        self._range_rows = {id: row for row, id in enumerate(range_ids)}

    def convert(self, chunk):
        """Map a chunk of id pairs to row arrays (unknown ids dropped)."""
        domain_row = self._domain_rows.get
        range_row = self._range_rows.get
        rows_a: List[int] = []
        rows_b: List[int] = []
        for id_a, id_b in chunk:
            row_a = domain_row(id_a)
            row_b = range_row(id_b)
            if row_a is None or row_b is None:
                continue
            rows_a.append(row_a)
            rows_b.append(row_b)
        # int32 keeps IPC payloads at 8 bytes/pair; sources are far
        # below 2**31 rows.
        return (_np.asarray(rows_a, dtype=_np.int32),
                _np.asarray(rows_b, dtype=_np.int32))

    def score_rows(self, rows_a, rows_b):
        """Score row arrays; return only rows surviving the threshold."""
        scores = self.kernel.score_rows(rows_a, rows_b)
        mask = (scores >= self.threshold) & (scores > 0.0)
        return rows_a[mask], rows_b[mask], scores[mask]

    def triples(self, rows_a, rows_b, scores):
        """Materialize surviving rows as (domain id, range id, score)."""
        domain_ids = self.domain_ids
        range_ids = self.range_ids
        return [
            (domain_ids[row_a], range_ids[row_b], score)
            for row_a, row_b, score in zip(
                rows_a.tolist(), rows_b.tolist(), scores.tolist())
        ]


# Worker-side slot for the parallel indexed path (see scorer.py for the
# same pattern on the generic path).
_ACTIVE_INDEXED: Optional[IndexedScorer] = None


def _install_indexed(scorer: Optional[IndexedScorer]) -> None:
    global _ACTIVE_INDEXED
    _ACTIVE_INDEXED = scorer


def _score_rows_task(rows):
    scorer = _ACTIVE_INDEXED
    if scorer is None:  # pragma: no cover - defensive; engine installs first
        raise RuntimeError("no indexed scorer installed in worker process")
    return scorer.score_rows(*rows)
