"""Chunked streaming over candidate-pair iterables.

The batch engine never materializes a full candidate stream: pairs are
pulled from the generator lazily and grouped into fixed-size lists that
become the unit of scoring, dispatch and caching.  A chunk is small
enough to bound memory and IPC payloads, and large enough to amortize
per-chunk overhead (batch call, future submission, result merge).
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator, List, TypeVar

T = TypeVar("T")

#: adaptive chunk sizing bounds and target (seconds of scoring work
#: per chunk).  The floor keeps batch-call amortization, the ceiling
#: bounds memory and merge latency, and the target window is large
#: enough to drown per-chunk dispatch overhead while keeping the
#: pipeline responsive.
ADAPTIVE_MIN_CHUNK = 256
ADAPTIVE_MAX_CHUNK = 1 << 16
ADAPTIVE_TARGET_SECONDS = 0.2


def iter_chunks(iterable: Iterable[T], chunk_size: int) -> Iterator[List[T]]:
    """Yield successive lists of up to ``chunk_size`` items.

    Consumes ``iterable`` lazily: a chunk is only pulled when the
    consumer asks for it, so candidate generation and scoring can
    pipeline.  The final chunk may be shorter; no empty chunks are
    produced.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size!r}")
    iterator = iter(iterable)
    while True:
        chunk = list(islice(iterator, chunk_size))
        if not chunk:
            return
        yield chunk


class AdaptiveChunker:
    """Feedback-sized chunking for the engine's autotuner.

    Drop-in replacement for :func:`iter_chunks` whose chunk size is a
    *moving* knob: the scoring loop reports each chunk's observed cost
    through :meth:`observe` and the next chunk grows or shrinks toward
    :data:`ADAPTIVE_TARGET_SECONDS` of work.  Adjustment is
    multiplicative with a factor-of-two deadband, so noisy timings
    cannot make the size oscillate, and is clamped to
    [:data:`ADAPTIVE_MIN_CHUNK`, :data:`ADAPTIVE_MAX_CHUNK`].

    Chunk boundaries are a pure performance knob — scores depend only
    on the value pair and the merge is keyed — so resizing mid-stream
    never changes the result mapping.
    """

    def __init__(self, iterable: Iterable[T], initial: int = 2048, *,
                 min_size: int = ADAPTIVE_MIN_CHUNK,
                 max_size: int = ADAPTIVE_MAX_CHUNK,
                 target_seconds: float = ADAPTIVE_TARGET_SECONDS) -> None:
        if initial < 1:
            raise ValueError(f"initial must be >= 1, got {initial!r}")
        self._iterator = iter(iterable)
        self.min_size = max(1, min_size)
        self.max_size = max(self.min_size, max_size)
        self.size = min(self.max_size, max(self.min_size, initial))
        self.target_seconds = target_seconds
        self.observed = 0

    def __iter__(self) -> Iterator[List[T]]:
        while True:
            chunk = list(islice(self._iterator, self.size))
            if not chunk:
                return
            yield chunk

    def observe(self, items: int, seconds: float) -> None:
        """Feed back one chunk's scoring cost; adjusts the next size."""
        if items <= 0:
            return
        self.observed += 1
        if seconds <= 0.0:
            ideal = self.max_size
        else:
            ideal = items * self.target_seconds / seconds
        if ideal >= 2 * self.size:
            self.size = min(self.max_size, self.size * 2)
        elif ideal <= self.size / 2:
            self.size = max(self.min_size, self.size // 2)
