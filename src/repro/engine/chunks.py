"""Chunked streaming over candidate-pair iterables.

The batch engine never materializes a full candidate stream: pairs are
pulled from the generator lazily and grouped into fixed-size lists that
become the unit of scoring, dispatch and caching.  A chunk is small
enough to bound memory and IPC payloads, and large enough to amortize
per-chunk overhead (batch call, future submission, result merge).
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator, List, TypeVar

T = TypeVar("T")


def iter_chunks(iterable: Iterable[T], chunk_size: int) -> Iterator[List[T]]:
    """Yield successive lists of up to ``chunk_size`` items.

    Consumes ``iterable`` lazily: a chunk is only pulled when the
    consumer asks for it, so candidate generation and scoring can
    pipeline.  The final chunk may be shorter; no empty chunks are
    produced.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size!r}")
    iterator = iter(iterable)
    while True:
        chunk = list(islice(iterator, chunk_size))
        if not chunk:
            return
        yield chunk
