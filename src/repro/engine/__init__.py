"""Parallel batch match engine.

Replaces the matchers' one-pair-at-a-time scoring loops with a batch
execution model: candidate pairs are streamed in fixed-size chunks,
scored through the similarity layer's vectorized ``score_batch``
kernels with per-attribute memoization, and — when ``workers > 1`` —
fanned out across a process pool whose partial results merge into a
single mapping deterministically.  ``workers=1`` is a zero-overhead
serial fallback producing byte-identical mappings.

Typical use::

    from repro.engine import BatchMatchEngine, EngineConfig

    engine = BatchMatchEngine(EngineConfig(workers=4, chunk_size=4096))
    matcher = AttributeMatcher("title", similarity="trigram",
                               threshold=0.5, engine=engine)
    mapping = matcher.match(dblp, acm)

or process-wide via :func:`configure_default_engine` (what the CLI's
``--workers`` / ``--chunk-size`` flags call).

With ``EngineConfig(shard_blocking=True)`` candidate generation itself
moves into the workers (:mod:`repro.engine.shards`): the blocking
strategy is partitioned into shards, each worker generates and scores
its shard's pairs locally, and the parent only merges surviving
triples — same results, no parent-side generation bottleneck.
``balance_shards=True`` additionally splits and LPT-packs skewed
shard lists so one dominant block cannot leave a worker with a long
tail.

Two vectorized kernels back the hot paths (bit-identical to scalar
scoring, numpy optional): packed q-gram bitmaps
(:mod:`repro.engine.vectorized`) and sparse CSR TF/IDF
(:mod:`repro.engine.sparse`).  Multi-attribute requests compose
per-spec kernels with a vectorized combiner
(:func:`repro.engine.vectorized.build_multi_kernel`), so both matcher
families ride the same fast paths.  ``EngineConfig(auto=True)`` (CLI
``--auto``) replaces the hand-set performance knobs with a
self-tuning mode: chunk size adapts to observed scoring throughput,
sharding engages whenever the blocking strategy supports it, shard
rebalancing flips on when cost estimates are skewed, and — with
``workers`` unset — the pool size derives from the CPU count
(:func:`autotune_workers`).  See ``docs/engine.md``.
"""

from repro.engine.chunks import AdaptiveChunker, iter_chunks
from repro.engine.engine import (
    BatchMatchEngine,
    EngineConfig,
    autotune_workers,
    configure_default_engine,
    get_default_engine,
    set_default_engine,
)
from repro.engine.request import AttributeSpec, MatchRequest
from repro.engine.scorer import ChunkScorer

__all__ = [
    "AdaptiveChunker",
    "AttributeSpec",
    "BatchMatchEngine",
    "ChunkScorer",
    "EngineConfig",
    "MatchRequest",
    "autotune_workers",
    "configure_default_engine",
    "get_default_engine",
    "iter_chunks",
    "set_default_engine",
]
