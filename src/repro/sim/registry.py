"""String-name registry of similarity functions.

The script language (``attrMatch(..., Trigram, 0.5, ...)``) and matcher
configuration files refer to similarity functions by name; this module
resolves those names to fresh instances.  Registration is open so that
applications can plug in domain-specific metrics, mirroring MOMA's
"extensible library of matcher algorithms".
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.sim.affix import AffixSimilarity
from repro.sim.base import SimilarityFunction
from repro.sim.edit import JaroSimilarity, JaroWinklerSimilarity, LevenshteinSimilarity
from repro.sim.hybrid import (
    ExactSimilarity,
    MongeElkanSimilarity,
    PersonNameSimilarity,
    TokenJaccardSimilarity,
)
from repro.sim.ngram import DiceNGram, JaccardNGram, TrigramSimilarity
from repro.sim.numeric import NumericSimilarity, YearSimilarity
from repro.sim.tfidf import SoftTfIdfSimilarity, TfIdfCosineSimilarity

_FACTORIES: Dict[str, Callable[..., SimilarityFunction]] = {}


def register_similarity(name: str,
                        factory: Callable[..., SimilarityFunction]) -> None:
    """Register ``factory`` under ``name`` (case-insensitive)."""
    key = name.strip().lower()
    if not key:
        raise ValueError("similarity name must be non-empty")
    _FACTORIES[key] = factory


def get_similarity(name: str, **params: object) -> SimilarityFunction:
    """Instantiate the similarity function registered under ``name``.

    Raises ``KeyError`` with the list of known names on a miss, which
    surfaces configuration typos immediately.
    """
    key = name.strip().lower()
    factory = _FACTORIES.get(key)
    if factory is None:
        known = ", ".join(sorted(_FACTORIES))
        raise KeyError(f"unknown similarity function {name!r}; known: {known}")
    return factory(**params)


def available_similarities() -> List[str]:
    """Return the sorted list of registered similarity names."""
    return sorted(_FACTORIES)


def _register_defaults() -> None:
    register_similarity("trigram", lambda **kw: TrigramSimilarity())
    register_similarity("ngram", lambda **kw: DiceNGram(**kw))
    register_similarity("dicengram", lambda **kw: DiceNGram(**kw))
    register_similarity("jaccardngram", lambda **kw: JaccardNGram(**kw))
    register_similarity("levenshtein", lambda **kw: LevenshteinSimilarity())
    register_similarity("editdistance", lambda **kw: LevenshteinSimilarity())
    register_similarity("jaro", lambda **kw: JaroSimilarity())
    register_similarity("jarowinkler", lambda **kw: JaroWinklerSimilarity(**kw))
    register_similarity("tfidf", lambda **kw: TfIdfCosineSimilarity())
    register_similarity("softtfidf", lambda **kw: SoftTfIdfSimilarity(**kw))
    register_similarity("affix", lambda **kw: AffixSimilarity())
    register_similarity("jaccard", lambda **kw: TokenJaccardSimilarity())
    register_similarity("tokenjaccard", lambda **kw: TokenJaccardSimilarity())
    register_similarity("mongeelkan", lambda **kw: MongeElkanSimilarity(**kw))
    register_similarity("personname", lambda **kw: PersonNameSimilarity(**kw))
    register_similarity("name", lambda **kw: PersonNameSimilarity(**kw))
    register_similarity("exact", lambda **kw: ExactSimilarity())
    register_similarity("numeric", lambda **kw: NumericSimilarity(**kw))
    register_similarity("year", lambda **kw: YearSimilarity(**kw))


_register_defaults()
