"""Hybrid and domain-aware similarity functions.

Token-level measures (Jaccard, Monge-Elkan) and a person-name
similarity that tolerates Google-Scholar-style first-name initials —
the paper notes that "GS reduces authors' first names to their first
letter leading to ambiguous author representations" (§5.4.3), which is
exactly the failure mode :class:`PersonNameSimilarity` addresses.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.base import SimilarityFunction
from repro.sim.edit import JaroWinklerSimilarity
from repro.sim.ngram import TrigramSimilarity
from repro.sim.tokenize import initials, name_parts, normalize, word_tokens


class ExactSimilarity(SimilarityFunction):
    """1.0 on normalized equality, else 0.0 (the paper's year matcher)."""

    name = "exact"

    def _score(self, a: str, b: str) -> float:
        return 1.0 if normalize(a) == normalize(b) else 0.0


class TokenJaccardSimilarity(SimilarityFunction):
    """Jaccard coefficient over normalized word tokens."""

    name = "tokenjaccard"

    def _score(self, a: str, b: str) -> float:
        tokens_a = set(word_tokens(a))
        tokens_b = set(word_tokens(b))
        if not tokens_a or not tokens_b:
            return 0.0
        return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)


class MongeElkanSimilarity(SimilarityFunction):
    """Monge-Elkan: average best inner similarity of a's tokens to b's.

    Asymmetric by definition; pass ``symmetric=True`` to average both
    directions, which is usually what a matcher wants.
    """

    name = "mongeelkan"

    def __init__(self, inner: Optional[SimilarityFunction] = None, *,
                 symmetric: bool = True) -> None:
        self.inner = inner if inner is not None else JaroWinklerSimilarity()
        self.symmetric = symmetric

    def _directed(self, tokens_a: List[str], tokens_b: List[str]) -> float:
        if not tokens_a or not tokens_b:
            return 0.0
        total = 0.0
        for token_a in tokens_a:
            total += max(self.inner.similarity(token_a, token_b)
                         for token_b in tokens_b)
        return total / len(tokens_a)

    def _score(self, a: str, b: str) -> float:
        tokens_a = word_tokens(a)
        tokens_b = word_tokens(b)
        forward = self._directed(tokens_a, tokens_b)
        if not self.symmetric:
            return forward
        backward = self._directed(tokens_b, tokens_a)
        return (forward + backward) / 2.0


class PersonNameSimilarity(SimilarityFunction):
    """Person-name similarity robust to abbreviated first names.

    The last names are compared with a character-level similarity
    (trigram Dice by default).  First names compare as:

    * full vs. full  -> character similarity;
    * initial vs. anything -> 1.0 when the initials agree, else 0.0;
    * missing first name on either side -> neutral 0.5 (absence of
      evidence).

    The final score is ``last_weight * last_sim + (1 - last_weight) *
    first_sim``, so "J. Ullman" ~ "Jeffrey Ullman" scores high while
    "J. Ullman" ~ "K. Ullman" is penalized.
    """

    name = "personname"

    def __init__(self, inner: Optional[SimilarityFunction] = None, *,
                 last_weight: float = 0.7) -> None:
        if not 0.0 < last_weight < 1.0:
            raise ValueError("last_weight must be in (0, 1)")
        self.inner = inner if inner is not None else TrigramSimilarity()
        self.last_weight = last_weight

    def _first_similarity(self, first_a: str, first_b: str) -> float:
        norm_a = normalize(first_a)
        norm_b = normalize(first_b)
        if not norm_a or not norm_b:
            return 0.5
        initials_a = initials(first_a)
        initials_b = initials(first_b)
        tokens_a = word_tokens(first_a)
        tokens_b = word_tokens(first_b)
        abbreviated_a = all(len(tok) == 1 for tok in tokens_a)
        abbreviated_b = all(len(tok) == 1 for tok in tokens_b)
        if abbreviated_a or abbreviated_b:
            # Compare on the shared number of initials so "J." matches
            # "John B." (first initial agrees).
            width = min(len(initials_a), len(initials_b))
            if width == 0:
                return 0.5
            return 1.0 if initials_a[:width] == initials_b[:width] else 0.0
        return self.inner.similarity(norm_a, norm_b)

    def _score(self, a: str, b: str) -> float:
        first_a, last_a = name_parts(a)
        first_b, last_b = name_parts(b)
        last_sim = self.inner.similarity(normalize(last_a), normalize(last_b))
        first_sim = self._first_similarity(first_a, first_b)
        return self.last_weight * last_sim + (1.0 - self.last_weight) * first_sim
