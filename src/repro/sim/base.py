"""Core interfaces for similarity functions.

A similarity function maps a pair of values to a score in ``[0, 1]``.
MOMA's attribute matchers call :meth:`SimilarityFunction.similarity`
once per candidate pair, so implementations are expected to be cheap
per call and to push any corpus-level work (e.g. TF/IDF statistics)
into :meth:`SimilarityFunction.prepare`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Optional, Sequence, Tuple


class SimilarityFunction(ABC):
    """A normalized similarity measure over attribute values.

    Subclasses must implement :meth:`similarity` returning a float in
    ``[0, 1]``.  ``None`` values are handled uniformly here: comparing
    anything with ``None`` yields 0.0 and ``None`` with ``None`` yields
    0.0 as well (missing evidence is not evidence of equality).
    """

    #: short registry name, overridden by subclasses
    name: str = "abstract"

    def prepare(self, values: Iterable[object]) -> None:
        """Absorb corpus-level statistics before pairwise scoring.

        The default implementation does nothing.  Functions such as
        TF/IDF override this to build document-frequency tables from
        the union of both sources' attribute values.
        """

    @abstractmethod
    def _score(self, a: str, b: str) -> float:
        """Score two non-``None`` values, already coerced to ``str``."""

    def similarity(self, a: object, b: object) -> float:
        """Return the similarity of ``a`` and ``b`` in ``[0, 1]``."""
        if a is None or b is None:
            return 0.0
        score = self._score(str(a), str(b))
        # Clamp to guard against floating point drift in implementations.
        if score < 0.0:
            return 0.0
        if score > 1.0:
            return 1.0
        return score

    def score_batch(self, pairs: Sequence[Tuple[str, str]]) -> List[float]:
        """Score many value pairs at once (the batch engine's hot path).

        ``pairs`` follows :meth:`_score`'s contract: values are
        non-``None`` and already coerced to ``str``.  The default
        implementation loops :meth:`_score` with the same clamping as
        :meth:`similarity`; corpus-aware functions override this with
        vectorized variants over their prepared token/vector indexes.
        Results must be bit-identical to per-pair :meth:`similarity`
        calls so that serial and batched execution agree exactly.
        """
        score = self._score
        out: List[float] = []
        append = out.append
        for a, b in pairs:
            s = score(a, b)
            append(0.0 if s < 0.0 else (1.0 if s > 1.0 else s))
        return out

    def __call__(self, a: object, b: object) -> float:
        return self.similarity(a, b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class CachedSimilarity(SimilarityFunction):
    """Memoizing wrapper around another similarity function.

    Attribute matchers repeatedly compare the same strings when
    blocking produces overlapping candidate blocks; caching on the
    (ordered) string pair removes that duplicated work.  Symmetric
    functions may pass ``symmetric=True`` to normalize the cache key.
    """

    def __init__(self, inner: SimilarityFunction, *, symmetric: bool = True,
                 max_size: Optional[int] = None) -> None:
        self.inner = inner
        self.name = f"cached[{inner.name}]"
        self._symmetric = symmetric
        self._max_size = max_size
        self._cache: dict[tuple[str, str], float] = {}
        self.hits = 0
        self.misses = 0

    def prepare(self, values: Iterable[object]) -> None:
        self._cache.clear()
        self.inner.prepare(values)

    def _score(self, a: str, b: str) -> float:
        key = (b, a) if self._symmetric and b < a else (a, b)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        score = self.inner.similarity(a, b)
        if self._max_size is not None and len(self._cache) >= self._max_size:
            self._cache.clear()
        self._cache[key] = score
        return score

    def score_batch(self, pairs: Sequence[Tuple[str, str]]) -> List[float]:
        """Batch scoring through the cache: only misses reach ``inner``.

        Distinct cache keys missing from the cache are scored once via
        ``inner.score_batch`` and then filled in, so a batch with many
        repeated pairs costs one inner evaluation per distinct pair.
        """
        cache = self._cache
        symmetric = self._symmetric
        keys = []
        miss_keys: dict[Tuple[str, str], None] = {}
        for a, b in pairs:
            key = (b, a) if symmetric and b < a else (a, b)
            keys.append(key)
            if key in cache or key in miss_keys:
                self.hits += 1
            else:
                self.misses += 1
                miss_keys[key] = None
        fresh: dict[Tuple[str, str], float] = {}
        if miss_keys:
            misses = list(miss_keys)
            fresh = dict(zip(misses, self.inner.score_batch(misses)))
        # Serve the batch before any cache maintenance so a reset can
        # never drop keys this batch still references, then respect the
        # bound: an oversized batch must not leave the cache over limit.
        out = [cache[key] if key in cache else fresh[key] for key in keys]
        if fresh:
            if self._max_size is not None:
                if len(cache) + len(fresh) > self._max_size:
                    cache.clear()
                if len(fresh) <= self._max_size:
                    cache.update(fresh)
            else:
                cache.update(fresh)
        return out

    def cache_info(self) -> dict[str, int]:
        """Return hit/miss/size counters for diagnostics."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self._cache)}
