"""Similarity-function library used by MOMA's attribute matchers.

The paper's generic attribute matcher is "provided with a pair of
attributes to be matched, a similarity function to be evaluated (e.g.
n-gram, TF/IDF or affix) and a similarity threshold".  This package
supplies those similarity functions plus the string-metric families that
are standard in the record-linkage literature the paper cites
(Cohen et al., "A Comparison of String Distance Metrics for
Name-Matching Tasks").

Every function is exposed both as a class implementing
:class:`~repro.sim.base.SimilarityFunction` and through the string
registry :func:`~repro.sim.registry.get_similarity`, which is what the
script language and the matcher configuration layer use.
"""

from repro.sim.affix import AffixSimilarity, common_prefix_length, common_suffix_length
from repro.sim.base import CachedSimilarity, SimilarityFunction
from repro.sim.edit import (
    JaroSimilarity,
    JaroWinklerSimilarity,
    LevenshteinSimilarity,
    damerau_levenshtein_distance,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
)
from repro.sim.hybrid import (
    ExactSimilarity,
    MongeElkanSimilarity,
    PersonNameSimilarity,
    TokenJaccardSimilarity,
)
from repro.sim.ngram import DiceNGram, JaccardNGram, NGramSimilarity, TrigramSimilarity
from repro.sim.numeric import NumericSimilarity, YearSimilarity
from repro.sim.registry import available_similarities, get_similarity, register_similarity
from repro.sim.tfidf import SoftTfIdfSimilarity, TfIdfCosineSimilarity
from repro.sim.tokenize import (
    normalize,
    qgrams,
    strip_punctuation,
    word_tokens,
)

__all__ = [
    "AffixSimilarity",
    "CachedSimilarity",
    "DiceNGram",
    "ExactSimilarity",
    "JaccardNGram",
    "JaroSimilarity",
    "JaroWinklerSimilarity",
    "LevenshteinSimilarity",
    "MongeElkanSimilarity",
    "NGramSimilarity",
    "NumericSimilarity",
    "PersonNameSimilarity",
    "SimilarityFunction",
    "SoftTfIdfSimilarity",
    "TfIdfCosineSimilarity",
    "TokenJaccardSimilarity",
    "TrigramSimilarity",
    "YearSimilarity",
    "available_similarities",
    "common_prefix_length",
    "common_suffix_length",
    "damerau_levenshtein_distance",
    "get_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_distance",
    "normalize",
    "qgrams",
    "register_similarity",
    "strip_punctuation",
    "word_tokens",
]
