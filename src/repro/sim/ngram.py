"""Character n-gram similarity (the paper's trigram matcher).

MOMA's evaluation uses trigram string matching for publication titles
and author names (§5.2, §4.3).  We provide Dice- and Jaccard-normalized
variants over padded character q-grams; Dice over trigrams is the
classic "trigram metric" the paper names.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.sim.base import SimilarityFunction
from repro.sim.tokenize import qgrams


class NGramSimilarity(SimilarityFunction):
    """Set-based q-gram similarity with selectable normalization.

    ``method='dice'`` computes ``2|A∩B| / (|A| + |B|)`` and
    ``method='jaccard'`` computes ``|A∩B| / |A∪B|`` over the *sets* of
    padded q-grams.  Gram sets are cached per string because attribute
    matching scores each source value against many candidates.
    """

    def __init__(self, q: int = 3, *, method: str = "dice", pad: bool = True) -> None:
        if method not in ("dice", "jaccard", "overlap"):
            raise ValueError(f"unknown n-gram method: {method!r}")
        self.q = q
        self.method = method
        self.pad = pad
        self.name = f"{method}-{q}gram"
        self._gram_cache: Dict[str, FrozenSet[str]] = {}

    def prepare(self, values: Iterable[object]) -> None:
        """Pre-populate the gram cache for the given corpus values."""
        for value in values:
            if value is not None:
                self.grams(str(value))

    def grams(self, text: str) -> FrozenSet[str]:
        """Return (and cache) the q-gram set of ``text``."""
        cached = self._gram_cache.get(text)
        if cached is None:
            cached = frozenset(qgrams(text, self.q, pad=self.pad))
            self._gram_cache[text] = cached
        return cached

    def _score(self, a: str, b: str) -> float:
        grams_a = self.grams(a)
        grams_b = self.grams(b)
        if not grams_a and not grams_b:
            return 0.0
        overlap = len(grams_a & grams_b)
        if overlap == 0:
            return 0.0
        if self.method == "dice":
            return 2.0 * overlap / (len(grams_a) + len(grams_b))
        if self.method == "jaccard":
            return overlap / len(grams_a | grams_b)
        # overlap coefficient
        return overlap / min(len(grams_a), len(grams_b))

    def score_batch(self, pairs: Sequence[Tuple[str, str]]) -> List[float]:
        """Vectorized batch scoring over the prepared gram index.

        Binds the gram cache and the normalization into a tight loop so
        chunked execution avoids the per-call dispatch of
        :meth:`similarity`.  Uses the exact expressions of
        :meth:`_score`, so results are bit-identical to per-pair calls.
        """
        grams = self.grams
        method = self.method
        out: List[float] = []
        append = out.append
        if method == "dice":
            for a, b in pairs:
                grams_a = grams(a)
                grams_b = grams(b)
                overlap = len(grams_a & grams_b)
                if overlap == 0:
                    append(0.0)
                else:
                    append(2.0 * overlap / (len(grams_a) + len(grams_b)))
        elif method == "jaccard":
            for a, b in pairs:
                grams_a = grams(a)
                grams_b = grams(b)
                overlap = len(grams_a & grams_b)
                if overlap == 0:
                    append(0.0)
                else:
                    append(overlap / len(grams_a | grams_b))
        else:  # overlap coefficient
            for a, b in pairs:
                grams_a = grams(a)
                grams_b = grams(b)
                overlap = len(grams_a & grams_b)
                if overlap == 0:
                    append(0.0)
                else:
                    append(overlap / min(len(grams_a), len(grams_b)))
        return out


class DiceNGram(NGramSimilarity):
    """Dice-normalized q-gram similarity."""

    def __init__(self, q: int = 3, *, pad: bool = True) -> None:
        super().__init__(q, method="dice", pad=pad)


class JaccardNGram(NGramSimilarity):
    """Jaccard-normalized q-gram similarity."""

    def __init__(self, q: int = 3, *, pad: bool = True) -> None:
        super().__init__(q, method="jaccard", pad=pad)


class TrigramSimilarity(DiceNGram):
    """The trigram metric used throughout the paper's evaluation."""

    def __init__(self) -> None:
        super().__init__(q=3)
        self.name = "trigram"
