"""String normalization and tokenization helpers.

These are deliberately simple and deterministic: the dirty-data
behaviour MOMA's evaluation depends on (typos, abbreviations, diverse
venue strings) is produced by the data generator, not hidden in the
tokenizer.
"""

from __future__ import annotations

import re
import unicodedata
from typing import Iterator, List, Sequence

_WHITESPACE_RE = re.compile(r"\s+")
_PUNCT_RE = re.compile(r"[^\w\s]", re.UNICODE)
_TOKEN_RE = re.compile(r"[a-z0-9]+")


def strip_accents(text: str) -> str:
    """Replace accented characters with their ASCII base form."""
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def strip_punctuation(text: str) -> str:
    """Remove punctuation, keeping word characters and whitespace."""
    return _PUNCT_RE.sub(" ", text)


def normalize(text: str) -> str:
    """Lowercase, de-accent, strip punctuation and collapse whitespace.

    This is the canonical form used by all token-based similarity
    functions so that e.g. ``"Potter's Wheel"`` and ``"potters wheel"``
    compare equal at the token level.
    """
    text = strip_accents(text).lower()
    text = strip_punctuation(text)
    return _WHITESPACE_RE.sub(" ", text).strip()


def word_tokens(text: str) -> List[str]:
    """Split normalized text into lowercase alphanumeric tokens."""
    return _TOKEN_RE.findall(normalize(text))


def qgrams(text: str, q: int = 3, *, pad: bool = True) -> List[str]:
    """Return the list of character q-grams of ``text``.

    With ``pad=True`` (the default, matching the common trigram
    formulation) the string is padded with ``q - 1`` boundary markers
    on each side so that short strings still produce grams and prefix/
    suffix agreement is rewarded.
    """
    if q < 1:
        raise ValueError(f"q must be positive, got {q}")
    text = normalize(text)
    if not text:
        return []
    if pad:
        boundary = "#" * (q - 1)
        text = f"{boundary}{text}{boundary}"
    if len(text) < q:
        return [text]
    return [text[i:i + q] for i in range(len(text) - q + 1)]


def ngram_windows(tokens: Sequence[str], n: int) -> Iterator[tuple[str, ...]]:
    """Yield sliding windows of ``n`` consecutive tokens."""
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    for i in range(len(tokens) - n + 1):
        yield tuple(tokens[i:i + n])


def name_parts(name: str) -> tuple[str, str]:
    """Split a person name into ``(first_part, last_name)``.

    Handles both "First Last" and "Last, First" conventions.  The last
    name is the final token (or the part before the comma); everything
    else is the first-name part.  Used by the person-name similarity
    that has to survive Google-Scholar-style initial-only first names.
    """
    name = name.strip()
    if "," in name:
        last, _, first = name.partition(",")
        return first.strip(), last.strip()
    tokens = name.split()
    if not tokens:
        return "", ""
    if len(tokens) == 1:
        return "", tokens[0]
    return " ".join(tokens[:-1]), tokens[-1]


def initials(first_part: str) -> str:
    """Reduce a first-name part to its initials, e.g. ``"John B."`` -> ``"jb"``."""
    return "".join(tok[0] for tok in word_tokens(first_part) if tok)
