"""TF/IDF cosine similarity and its SoftTFIDF relaxation.

The paper lists TF/IDF as one of the attribute matcher's pluggable
similarity functions.  These are corpus-aware: :meth:`prepare` must be
called with the union of both sources' attribute values before scoring
so that document frequencies are meaningful.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.sim.base import SimilarityFunction
from repro.sim.edit import jaro_winkler_similarity
from repro.sim.tokenize import word_tokens


class TfIdfCosineSimilarity(SimilarityFunction):
    """Cosine similarity over L2-normalized TF/IDF token vectors.

    IDF uses the smoothed form ``log(1 + N / df)``.  Tokens unseen at
    :meth:`prepare` time receive the maximum IDF (they are rarer than
    anything in the corpus).  Without :meth:`prepare`, every token gets
    IDF 1 and the measure degrades gracefully to plain TF cosine.
    """

    name = "tfidf"

    def __init__(self) -> None:
        self._idf: Dict[str, float] = {}
        self._default_idf = 1.0
        self._corpus_size = 0
        self._vector_cache: Dict[str, Dict[str, float]] = {}

    def prepare(self, values: Iterable[object]) -> None:
        document_frequency: Dict[str, int] = {}
        size = 0
        for value in values:
            if value is None:
                continue
            size += 1
            # sorted: keeps the document-frequency (and derived _idf)
            # dict order independent of the string hash seed
            for token in sorted(set(word_tokens(str(value)))):
                document_frequency[token] = document_frequency.get(token, 0) + 1
        self._corpus_size = size
        self._idf = {
            token: math.log(1.0 + size / df)
            for token, df in document_frequency.items()
        }
        self._default_idf = math.log(1.0 + max(size, 1))
        self._vector_cache.clear()

    def idf(self, token: str) -> float:
        """Return the IDF weight of ``token`` under the prepared corpus."""
        if not self._idf:
            return 1.0
        return self._idf.get(token, self._default_idf)

    def vector(self, text: str) -> Dict[str, float]:
        """Return (and cache) the L2-normalized TF/IDF vector of ``text``."""
        cached = self._vector_cache.get(text)
        if cached is not None:
            return cached
        counts: Dict[str, int] = {}
        for token in word_tokens(text):
            counts[token] = counts.get(token, 0) + 1
        weights = {
            token: count * self.idf(token) for token, count in counts.items()
        }
        norm = math.sqrt(sum(w * w for w in weights.values()))
        if norm > 0:
            weights = {token: w / norm for token, w in weights.items()}
        self._vector_cache[text] = weights
        return weights

    def value_vector(self, value: object) -> Dict[str, float]:
        """Prepared vector of a raw attribute value (``None`` → empty).

        This is the packing contract of the engine's sparse TF/IDF
        kernel (:mod:`repro.engine.sparse`): every source row is
        exactly ``value_vector(instance.get(attribute))``, so the
        packed CSR arrays hold bit-identical weights to the ones the
        scalar paths read from the vector cache.
        """
        if value is None:
            return {}
        return self.vector(str(value))

    def _score(self, a: str, b: str) -> float:
        # Iterate the smaller vector; on equal sizes, the vector of
        # the lexicographically smaller text.  The tie-break makes
        # _score(a, b) bit-identical to _score(b, a): a sum over the
        # same products in the same order regardless of argument
        # order.  The engine's block-vectorized sharded mode relies on
        # this — it may expand a self-matching pair in either
        # orientation and must still reproduce serial scores exactly.
        vec_a = self.vector(a)
        vec_b = self.vector(b)
        if len(vec_b) < len(vec_a) or (len(vec_b) == len(vec_a) and b < a):
            vec_a, vec_b = vec_b, vec_a
        return sum(weight * vec_b.get(token, 0.0) for token, weight in vec_a.items())

    def score_batch(self, pairs: Sequence[Tuple[str, str]]) -> List[float]:
        """Vectorized batch cosine over the prepared TF/IDF vector cache.

        Same dot-product expression (and symmetric tie-break) as
        :meth:`_score` — bit-identical results — with the vector cache
        bound locally and the clamp of :meth:`similarity` applied
        inline.
        """
        vector = self.vector
        out: List[float] = []
        append = out.append
        for a, b in pairs:
            vec_a = vector(a)
            vec_b = vector(b)
            if len(vec_b) < len(vec_a) or (len(vec_b) == len(vec_a) and b < a):
                vec_a, vec_b = vec_b, vec_a
            get = vec_b.get
            s = sum(weight * get(token, 0.0) for token, weight in vec_a.items())
            append(0.0 if s < 0.0 else (1.0 if s > 1.0 else s))
        return out


class SoftTfIdfSimilarity(TfIdfCosineSimilarity):
    """SoftTFIDF (Cohen et al. 2003): TF/IDF with fuzzy token matching.

    Tokens of ``a`` are matched to their most similar token of ``b``
    under a secondary character-level similarity (Jaro-Winkler by
    default); pairs above ``token_threshold`` contribute the product of
    their TF/IDF weights scaled by the secondary similarity.
    """

    name = "softtfidf"

    def score_batch(self, pairs: Sequence[Tuple[str, str]]) -> List[float]:
        """Per-pair loop over SoftTFIDF's own :meth:`_score`.

        The parent's batch kernel computes a *plain* cosine; silently
        inheriting it (or the old ``score_batch = SimilarityFunction.
        score_batch`` class-attribute reassignment, which an innocent
        parent refactor would bypass) would make batched scores
        disagree with per-pair :meth:`similarity` calls.  The explicit
        override pins SoftTFIDF to the generic loop; the engine's
        sparse TF/IDF kernel likewise refuses SoftTFIDF (it overrides
        ``_score``), so every execution path scores the fuzzy measure.
        """
        return SimilarityFunction.score_batch(self, pairs)

    def __init__(self, token_threshold: float = 0.9) -> None:
        super().__init__()
        if not 0.0 < token_threshold <= 1.0:
            raise ValueError("token_threshold must be in (0, 1]")
        self.token_threshold = token_threshold

    def _best_partner(self, token: str, candidates: Iterable[str]) -> Tuple[str, float]:
        best_token, best_sim = "", 0.0
        for other in candidates:
            sim = 1.0 if token == other else jaro_winkler_similarity(token, other)
            if sim > best_sim:
                best_token, best_sim = other, sim
        return best_token, best_sim

    def _score(self, a: str, b: str) -> float:
        vec_a = self.vector(a)
        vec_b = self.vector(b)
        if not vec_a or not vec_b:
            return 0.0
        total = 0.0
        for token, weight in vec_a.items():
            partner, sim = self._best_partner(token, vec_b)
            if sim >= self.token_threshold:
                total += weight * vec_b[partner] * sim
        return total
