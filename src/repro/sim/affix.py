"""Affix similarity: agreement of string prefixes and suffixes.

The paper names "affix" as one of the attribute matcher's similarity
functions.  We follow the common formulation: the shared prefix plus
the shared suffix (counted on the remainder, so characters are never
counted twice), normalized by the longer string length.
"""

from __future__ import annotations

from repro.sim.base import SimilarityFunction
from repro.sim.tokenize import normalize


def common_prefix_length(a: str, b: str) -> int:
    """Length of the longest common prefix of ``a`` and ``b``."""
    count = 0
    for ch_a, ch_b in zip(a, b):
        if ch_a != ch_b:
            break
        count += 1
    return count


def common_suffix_length(a: str, b: str) -> int:
    """Length of the longest common suffix of ``a`` and ``b``."""
    count = 0
    for ch_a, ch_b in zip(reversed(a), reversed(b)):
        if ch_a != ch_b:
            break
        count += 1
    return count


class AffixSimilarity(SimilarityFunction):
    """``(|common prefix| + |common suffix|) / max(|a|, |b|)``.

    The suffix is measured on the string remainders after removing the
    common prefix, so a pair of identical strings scores exactly 1.0
    rather than 2.0.  Strings are normalized (case, punctuation) first.
    """

    name = "affix"

    def _score(self, a: str, b: str) -> float:
        a = normalize(a)
        b = normalize(b)
        if not a or not b:
            return 0.0
        prefix = common_prefix_length(a, b)
        suffix = common_suffix_length(a[prefix:], b[prefix:])
        return (prefix + suffix) / max(len(a), len(b))
