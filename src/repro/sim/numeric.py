"""Numeric similarity functions (publication years, citation counts).

The paper's third attribute matcher "compares publication years"
(§5.2) and its object-value constraint requires "that the publication
year of matching objects must not differ by more than one year" (§3.3).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.base import SimilarityFunction


def _to_float(value: str) -> Optional[float]:
    try:
        return float(str(value).strip())
    except (TypeError, ValueError):
        return None


class NumericSimilarity(SimilarityFunction):
    """Linear decay similarity: ``max(0, 1 - |a - b| / window)``.

    Non-numeric inputs score 0.0.  ``window`` is the difference at
    which similarity reaches zero; ``window=1`` means only equal values
    match at 1.0 and a difference of one scores 0.0.
    """

    name = "numeric"

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window

    def _score(self, a: str, b: str) -> float:
        value_a = _to_float(a)
        value_b = _to_float(b)
        if value_a is None or value_b is None:
            return 0.0
        return max(0.0, 1.0 - abs(value_a - value_b) / self.window)


class YearSimilarity(NumericSimilarity):
    """Year comparison: equal years 1.0, one year apart 0.5, else 0.

    ``window=2`` reproduces the tolerant behaviour needed for
    conference-vs-journal versions of a paper published a year apart
    (Figure 1's similarity-0.6 correspondences combine a perfect title
    match with a one-off year).
    """

    name = "year"

    def __init__(self, window: float = 2.0) -> None:
        super().__init__(window=window)
