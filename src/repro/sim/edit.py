"""Edit-distance-based string similarities.

Levenshtein / Damerau-Levenshtein distances and the Jaro /
Jaro-Winkler family, all exposed both as plain functions (returning
raw distances or similarities) and as
:class:`~repro.sim.base.SimilarityFunction` classes for use in
matchers.
"""

from __future__ import annotations

from repro.sim.base import SimilarityFunction


def levenshtein_distance(a: str, b: str, *, max_distance: int | None = None) -> int:
    """Classic Levenshtein distance with optional early-exit bound.

    ``max_distance`` enables a cheap band cutoff: once every entry of a
    DP row exceeds the bound the function returns ``max_distance + 1``
    immediately, which is all threshold-based callers need to know.
    """
    if a == b:
        return 0
    if len(a) > len(b):
        a, b = b, a
    if not a:
        return len(b)
    if max_distance is not None and len(b) - len(a) > max_distance:
        return max_distance + 1

    previous = list(range(len(a) + 1))
    for j, ch_b in enumerate(b, start=1):
        current = [j]
        row_min = j
        for i, ch_a in enumerate(a, start=1):
            cost = 0 if ch_a == ch_b else 1
            value = min(
                previous[i] + 1,       # deletion
                current[i - 1] + 1,    # insertion
                previous[i - 1] + cost,  # substitution
            )
            current.append(value)
            if value < row_min:
                row_min = value
        if max_distance is not None and row_min > max_distance:
            return max_distance + 1
        previous = current
    return previous[-1]


def damerau_levenshtein_distance(a: str, b: str) -> int:
    """Edit distance that additionally counts adjacent transpositions."""
    if a == b:
        return 0
    len_a, len_b = len(a), len(b)
    if not len_a:
        return len_b
    if not len_b:
        return len_a

    # Restricted Damerau-Levenshtein (optimal string alignment).
    rows = [[0] * (len_b + 1) for _ in range(len_a + 1)]
    for i in range(len_a + 1):
        rows[i][0] = i
    for j in range(len_b + 1):
        rows[0][j] = j
    for i in range(1, len_a + 1):
        for j in range(1, len_b + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            value = min(
                rows[i - 1][j] + 1,
                rows[i][j - 1] + 1,
                rows[i - 1][j - 1] + cost,
            )
            if (
                i > 1 and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                value = min(value, rows[i - 2][j - 2] + 1)
            rows[i][j] = value
    return rows[len_a][len_b]


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity in ``[0, 1]``."""
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if not len_a or not len_b:
        return 0.0

    match_window = max(len_a, len_b) // 2 - 1
    if match_window < 0:
        match_window = 0
    matched_a = [False] * len_a
    matched_b = [False] * len_b

    matches = 0
    for i, ch in enumerate(a):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len_b)
        for j in range(start, end):
            if not matched_b[j] and b[j] == ch:
                matched_a[i] = True
                matched_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    # Count transpositions between the matched subsequences.
    transpositions = 0
    j = 0
    for i in range(len_a):
        if matched_a[i]:
            while not matched_b[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2

    return (
        matches / len_a
        + matches / len_b
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(a: str, b: str, *, prefix_weight: float = 0.1,
                            max_prefix: int = 4) -> float:
    """Jaro-Winkler similarity: Jaro boosted by common-prefix length."""
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError("prefix_weight must be in [0, 0.25]")
    jaro = jaro_similarity(a, b)
    prefix = 0
    for ch_a, ch_b in zip(a, b):
        if ch_a != ch_b or prefix >= max_prefix:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


class LevenshteinSimilarity(SimilarityFunction):
    """``1 - distance / max(len)`` normalized Levenshtein similarity."""

    name = "levenshtein"

    def _score(self, a: str, b: str) -> float:
        if not a and not b:
            return 0.0
        longest = max(len(a), len(b))
        return 1.0 - levenshtein_distance(a, b) / longest


class JaroSimilarity(SimilarityFunction):
    """Jaro similarity as a matcher-pluggable function."""

    name = "jaro"

    def _score(self, a: str, b: str) -> float:
        return jaro_similarity(a, b)


class JaroWinklerSimilarity(SimilarityFunction):
    """Jaro-Winkler similarity as a matcher-pluggable function."""

    name = "jarowinkler"

    def __init__(self, prefix_weight: float = 0.1, max_prefix: int = 4) -> None:
        self.prefix_weight = prefix_weight
        self.max_prefix = max_prefix

    def _score(self, a: str, b: str) -> float:
        return jaro_winkler_similarity(
            a, b, prefix_weight=self.prefix_weight, max_prefix=self.max_prefix
        )
