"""repro — a reproduction of MOMA (Thor & Rahm, CIDR 2007).

MOMA is a flexible framework for *mapping-based object matching*: match
results are instance mappings combined with merge / compose operators,
refined by selections, orchestrated as match workflows and re-used via
a mapping repository.  See ``DESIGN.md`` for the system inventory and
``EXPERIMENTS.md`` for the paper-vs-measured record.

Quickstart::

    from repro import AttributeMatcher, ThresholdSelection, merge

    title = AttributeMatcher("title", similarity="trigram", threshold=0.5)
    year = AttributeMatcher("year", similarity="exact", threshold=1.0)
    mapping = merge([title.match(dblp, acm), year.match(dblp, acm)], "avg")
    mapping = ThresholdSelection(0.8).apply(mapping)
"""

from repro.core import (
    AttributeMatcher,
    AttributePair,
    Best1DeltaSelection,
    BestNSelection,
    CompositeSelection,
    ConstraintSelection,
    Correspondence,
    GridSearchTuner,
    Mapping,
    MappingKind,
    MatchContext,
    Matcher,
    MatcherLibrary,
    MatchWorkflow,
    MaxAttributeDifference,
    MultiAttributeMatcher,
    NeighborhoodMatcher,
    NotIdentity,
    Selection,
    ThresholdSelection,
    compose,
    default_library,
    difference,
    hub_compose,
    intersection,
    mapping_union,
    merge,
    neighborhood_match,
    select,
    symmetrize,
    transitive_closure,
    tune_threshold,
)
from repro.model import (
    LogicalSource,
    MappingCache,
    MappingRepository,
    MappingType,
    ObjectInstance,
    ObjectType,
    PhysicalSource,
    SourceMappingModel,
)
from repro.engine import (
    BatchMatchEngine,
    EngineConfig,
    autotune_workers,
    configure_default_engine,
    get_default_engine,
    set_default_engine,
)
from repro.serve import IncrementalIndex, MatchService
from repro.sim import SimilarityFunction, get_similarity

__version__ = "1.1.0"

__all__ = [
    "AttributeMatcher",
    "AttributePair",
    "BatchMatchEngine",
    "EngineConfig",
    "Best1DeltaSelection",
    "BestNSelection",
    "CompositeSelection",
    "ConstraintSelection",
    "Correspondence",
    "GridSearchTuner",
    "IncrementalIndex",
    "LogicalSource",
    "Mapping",
    "MappingCache",
    "MappingKind",
    "MappingRepository",
    "MappingType",
    "MatchContext",
    "MatchService",
    "MatchWorkflow",
    "Matcher",
    "MatcherLibrary",
    "MaxAttributeDifference",
    "MultiAttributeMatcher",
    "NeighborhoodMatcher",
    "NotIdentity",
    "ObjectInstance",
    "ObjectType",
    "PhysicalSource",
    "Selection",
    "SimilarityFunction",
    "SourceMappingModel",
    "ThresholdSelection",
    "autotune_workers",
    "compose",
    "configure_default_engine",
    "default_library",
    "difference",
    "get_default_engine",
    "get_similarity",
    "set_default_engine",
    "hub_compose",
    "intersection",
    "mapping_union",
    "merge",
    "neighborhood_match",
    "select",
    "symmetrize",
    "transitive_closure",
    "tune_threshold",
]
