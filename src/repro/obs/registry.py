"""Thread-safe metrics registry with Prometheus text exposition.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — a monotonically increasing total.  Sources that
  already keep their own counters (the index's pruning counters, the
  service's cache hits/misses, WAL append/sync totals) synchronize
  them in through :meth:`Counter.set_total` from a registered
  *collector* at scrape time, so the existing counters stay the
  single source of truth and the hot paths gain no new writes;
* :class:`Gauge` — a value that can go up and down (cache entries,
  live records, largest micro-batch);
* :class:`Histogram` — fixed cumulative buckets plus sum and count,
  with :meth:`Histogram.percentile` interpolating p50/p99 estimates
  from the bucket boundaries (the classic ``histogram_quantile``
  math).  Latency histograms observe **seconds** — the Prometheus
  base-unit convention — and the default bucket ladder spans 500µs
  to 10s.

Instruments are identified by ``(name, labels)``; :meth:`MetricsRegistry.
render` emits the text exposition format (``# HELP`` / ``# TYPE``
lines, one sample per label set, ``_bucket``/``_sum``/``_count``
series for histograms) and :meth:`MetricsRegistry.summary` the same
data as a JSON-friendly dict for ``/v1/stats``.

Everything locks around mutation, so HTTP worker threads can observe
while a scrape renders.  No instrument ever feeds back into the code
it measures: registering, observing and rendering are side-effect
free with respect to matching results.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: default latency ladder (seconds): 500µs .. 10s, then +Inf
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: default ladder for size-style histograms (micro-batch sizes)
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
)

Labels = Tuple[Tuple[str, str], ...]


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of raw ``values`` (0.0 on empty).

    The helper the engine's profile summaries share with the
    registry; histogram percentiles use bucket interpolation instead
    (:meth:`Histogram.percentile`).
    """
    if not values:
        return 0.0
    ranked = sorted(values)
    index = min(len(ranked) - 1,
                int(round(fraction * (len(ranked) - 1))))
    return ranked[index]


def _format_value(value: float) -> str:
    """Prometheus sample formatting: integers without the ``.0``."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n") \
        .replace('"', '\\"')


def _render_labels(labels: Labels, extra: Optional[Tuple[str, str]] = None,
                   ) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    rendered = ",".join(f'{key}="{_escape_label(str(value))}"'
                        for key, value in pairs)
    return "{" + rendered + "}"


class _Instrument:
    """Shared plumbing: identity, help text, a lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: Labels) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()

    def samples(self) -> List[str]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str, labels: Labels) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc {amount!r})")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Synchronize from an external counter (collector path).

        The external source is authoritative and itself monotonic, so
        the set never moves the sample backwards in practice; a
        defensive clamp keeps the exposition monotone even if a
        source resets (e.g. a restored shard).
        """
        with self._lock:
            self._value = max(self._value, float(value))

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> List[str]:
        return [f"{self.name}{_render_labels(self.labels)} "
                f"{_format_value(self.value)}"]


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: Labels) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> List[str]:
        return [f"{self.name}{_render_labels(self.labels)} "
                f"{_format_value(self.value)}"]


class Histogram(_Instrument):
    """Fixed cumulative buckets + sum + count, Prometheus style.

    ``buckets`` are the finite upper bounds (``le`` values) in
    ascending order; an implicit ``+Inf`` bucket catches the rest.
    ``observe`` takes the measured value in the histogram's base unit
    (seconds for latencies).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, labels: Labels,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                 ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name} needs strictly increasing buckets, "
                f"got {buckets!r}")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[position] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def _snapshot(self) -> Tuple[List[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum, self._count

    def percentile(self, fraction: float) -> float:
        """Estimate the ``fraction`` quantile from the buckets.

        Linear interpolation inside the first bucket whose cumulative
        count reaches the rank — the ``histogram_quantile`` estimate.
        Observations beyond the last finite bound clamp to it (the
        same convention Prometheus uses for the ``+Inf`` bucket).
        """
        counts, _sum, total = self._snapshot()
        if total == 0:
            return 0.0
        rank = fraction * total
        cumulative = 0
        previous_bound = 0.0
        for position, bound in enumerate(self.buckets):
            bucket_count = counts[position]
            if cumulative + bucket_count >= rank:
                if bucket_count == 0:  # pragma: no cover - defensive
                    return bound
                within = (rank - cumulative) / bucket_count
                return previous_bound + (bound - previous_bound) * within
            cumulative += bucket_count
            previous_bound = bound
        return self.buckets[-1]

    def summary(self) -> Dict[str, float]:
        counts, total_sum, total = self._snapshot()
        return {
            "count": float(total),
            "sum": total_sum,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
        }

    def samples(self) -> List[str]:
        counts, total_sum, total = self._snapshot()
        lines = []
        cumulative = 0
        for position, bound in enumerate(self.buckets):
            cumulative += counts[position]
            label = _render_labels(self.labels,
                                   ("le", _format_value(bound)))
            lines.append(f"{self.name}_bucket{label} {cumulative}")
        label = _render_labels(self.labels, ("le", "+Inf"))
        lines.append(f"{self.name}_bucket{label} {total}")
        base = _render_labels(self.labels)
        lines.append(f"{self.name}_sum{base} {_format_value(total_sum)}")
        lines.append(f"{self.name}_count{base} {total}")
        return lines


class MetricsRegistry:
    """Instrument factory, collector host and exposition renderer.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the
    same ``(name, labels)`` always returns the same instrument, so
    call sites need no bookkeeping.  ``register_collector`` adds a
    zero-argument callable invoked before every render/summary —
    the pull half of the registry, where existing counter sources
    (index pruning counters, WAL totals, cluster shard stats)
    synchronize their state in without instrumenting their own hot
    paths.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: "Dict[Tuple[str, Labels], _Instrument]" = {}
        self._collectors: List[Callable[[], None]] = []

    # -- instruments ---------------------------------------------------

    @staticmethod
    def _labels(labels: Optional[Dict[str, object]]) -> Labels:
        if not labels:
            return ()
        return tuple(sorted((key, str(value))
                            for key, value in labels.items()))

    def _get(self, kind: type, name: str, help: str,
             labels: Optional[Dict[str, object]],
             **kwargs: object) -> _Instrument:
        key = (name, self._labels(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = kind(name, help, key[1], **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{instrument.kind}, not {kind.kind}")
            return instrument

    def counter(self, name: str, help: str = "",
                labels: Optional[Dict[str, object]] = None) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Dict[str, object]] = None) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Dict[str, object]] = None,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # -- collectors ----------------------------------------------------

    def register_collector(self, collector: Callable[[], None]) -> None:
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> None:
        """Run every registered collector (scrape-time pull)."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()

    # -- output --------------------------------------------------------

    def _grouped(self) -> List[Tuple[str, List[_Instrument]]]:
        with self._lock:
            instruments = list(self._instruments.values())
        groups: Dict[str, List[_Instrument]] = {}
        for instrument in instruments:
            groups.setdefault(instrument.name, []).append(instrument)
        return [(name, sorted(group, key=lambda i: i.labels))
                for name, group in sorted(groups.items())]

    def render(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        self.collect()
        lines: List[str] = []
        for name, group in self._grouped():
            first = group[0]
            if first.help:
                lines.append(f"# HELP {name} {first.help}")
            lines.append(f"# TYPE {name} {first.kind}")
            for instrument in group:
                lines.extend(instrument.samples())
        return "\n".join(lines) + "\n" if lines else ""

    def summary(self) -> Dict[str, object]:
        """The same data as a JSON-friendly dict (``/v1/stats``)."""
        self.collect()
        out: Dict[str, object] = {}
        for name, group in self._grouped():
            for instrument in group:
                key = name + _render_labels(instrument.labels)
                if isinstance(instrument, Histogram):
                    out[key] = instrument.summary()
                else:
                    out[key] = instrument.value  # type: ignore[union-attr]
        return out
