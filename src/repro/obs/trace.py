"""Per-request tracing: trace ids, span records, sampled ring buffer.

One trace per sampled request.  The id is minted at the HTTP/service
boundary (or taken from a client ``X-Request-Id`` header); the active
:class:`TraceContext` rides a :mod:`contextvars` variable so the
service, the cluster router and the index never pass it explicitly —
they just open spans.  Crossing a ``FrameChannel`` the context
travels as a small ``{"id", "parent"}`` dict inside the op payload;
the shard worker times its handler and returns a span record (name,
parent, start, duration, shard id) the router folds back into the
request's trace.

Sampling is **deterministic**: a fractional accumulator admits
exactly ``sample_rate`` of requests (every request at 1.0, none at
0.0, every other at 0.5) with no randomness — the repository's
determinism discipline applies to observability too.  Finished
traces land in a bounded ring buffer surfaced by ``/v1/stats``.

Span records are plain dicts so they pickle across process
boundaries and serialize to JSON unchanged:

``{"name", "trace_id", "span_id", "parent_id", "start", "duration",
"shard"}``

with ``start`` in Unix seconds, ``duration`` in seconds and
``shard`` ``None`` outside shard workers.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

Span = Dict[str, object]

#: the ambient trace of the current request (None = not sampled)
_current: "ContextVar[Optional[TraceContext]]" = ContextVar(
    "repro_obs_trace", default=None)


def make_span(name: str, trace_id: str, span_id: str,
              parent_id: Optional[str], start: float,
              duration: float, shard: Optional[int] = None) -> Span:
    """One span record; a plain dict so it crosses pickle and JSON."""
    return {
        "name": name,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "start": start,
        "duration": duration,
        "shard": shard,
    }


class TraceContext:
    """All spans of one sampled request.

    A context belongs to the request's driving thread (the
    micro-batcher may score *other* requests' records under the
    leader's trace — that is the documented attribution: spans
    describe the work the traced request drove).  Span ids are
    sequential per trace, so a trace is reproducible given the same
    request flow.
    """

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.spans: List[Span] = []
        self._next = 0
        self._stack: List[str] = []
        self._lock = threading.Lock()

    def _mint_id(self) -> str:
        with self._lock:
            self._next += 1
            return f"s{self._next}"

    @property
    def active_span_id(self) -> Optional[str]:
        return self._stack[-1] if self._stack else None

    def add_span(self, span: Optional[Span]) -> None:
        """Fold in a finished span (e.g. one returned by a shard)."""
        if span is not None:
            with self._lock:
                self.spans.append(span)

    def wire_context(self) -> Dict[str, object]:
        """The payload dict a ``FrameChannel`` frame carries."""
        return {"id": self.trace_id, "parent": self.active_span_id}

    @contextlib.contextmanager
    def span(self, name: str,
             shard: Optional[int] = None) -> Iterator[Span]:
        """Open a child span of the innermost active span."""
        record = make_span(name, self.trace_id, self._mint_id(),
                           self.active_span_id, time.time(), 0.0,
                           shard=shard)
        self._stack.append(str(record["span_id"]))
        begun = time.perf_counter()
        try:
            yield record
        finally:
            record["duration"] = time.perf_counter() - begun
            self._stack.pop()
            self.add_span(record)

    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            spans = list(self.spans)
        return {
            "trace_id": self.trace_id,
            "spans": spans,
            "duration": max(
                (float(span["duration"])  # type: ignore[arg-type]
                 for span in spans if span["parent_id"] is None),
                default=0.0),
        }


@contextlib.contextmanager
def activate(context: Optional[TraceContext]) -> Iterator[
        Optional[TraceContext]]:
    """Make ``context`` the ambient trace for the enclosed block.

    ``None`` deactivates tracing for the block, which is also the
    no-sample fast path — :func:`span` then degrades to a bare
    ``yield``.
    """
    token = _current.set(context)
    try:
        yield context
    finally:
        _current.reset(token)


def current_trace() -> Optional[TraceContext]:
    """The ambient trace of the calling context (None = unsampled)."""
    return _current.get()


@contextlib.contextmanager
def span(name: str, shard: Optional[int] = None) -> Iterator[
        Optional[Span]]:
    """Open a span on the ambient trace; no-op when unsampled."""
    context = _current.get()
    if context is None:
        yield None
        return
    with context.span(name, shard=shard) as record:
        yield record


def shard_span(trace: Optional[Dict[str, object]], name: str,
               shard_id: int, start: float,
               duration: float) -> Optional[Span]:
    """Build the span a shard worker returns for a traced op.

    ``trace`` is the ``{"id", "parent"}`` wire context from the op
    payload (``None`` = untraced request, returns ``None``).  The
    span id embeds the parent and shard, which is unique because the
    router opens a fresh parent span per scatter round.
    """
    if trace is None:
        return None
    parent = trace.get("parent")
    return make_span(
        name, str(trace["id"]),
        f"{parent or 'root'}.{name}.{shard_id}",
        None if parent is None else str(parent),
        start, duration, shard=shard_id)


class Tracer:
    """Deterministic sampler + bounded ring of finished traces."""

    def __init__(self, sample_rate: float = 0.0,
                 ring_size: int = 32) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate!r}")
        self.sample_rate = sample_rate
        self._lock = threading.Lock()
        self._accumulator = 0.0
        self.requests = 0
        self.sampled = 0
        self._ring: "deque[Dict[str, object]]" = deque(maxlen=ring_size)

    def begin(self, trace_id: str) -> Optional[TraceContext]:
        """Admit or skip one request; returns its context if sampled.

        The fractional accumulator admits exactly ``sample_rate`` of
        the request stream with no randomness: at 0.25 every fourth
        request carries a trace, at 1.0 every request does.
        """
        with self._lock:
            self.requests += 1
            if self.sample_rate <= 0.0:
                return None
            self._accumulator += self.sample_rate
            if self._accumulator < 1.0:
                return None
            self._accumulator -= 1.0
            self.sampled += 1
        return TraceContext(trace_id)

    def finish(self, context: Optional[TraceContext]) -> None:
        """Archive a finished trace into the ring buffer."""
        if context is None:
            return
        with self._lock:
            self._ring.append(context.to_dict())

    def recent(self) -> List[Dict[str, object]]:
        """Finished traces, oldest first (bounded by the ring size)."""
        with self._lock:
            return list(self._ring)

    def summary(self) -> Dict[str, object]:
        with self._lock:
            return {
                "sample_rate": self.sample_rate,
                "requests": self.requests,
                "sampled": self.sampled,
                "recent": list(self._ring),
            }
