"""End-to-end observability: metrics, request tracing, structured logs.

The serving tier spans a router, shard worker processes, WALs, a
micro-batcher, caches and a WAND pruner; the engine adds chunked and
sharded execution.  This package is the one place their runtime
behaviour becomes *observable* — and nothing more: every instrument
here records what happened without steering what happens.  Timings
observe, never steer; enabling metrics or tracing changes no float,
no iteration order, no result byte (the serve equivalence suite
enforces this).

* :mod:`repro.obs.registry` — a thread-safe metrics registry:
  counters, gauges and fixed-bucket latency histograms with p50/p99
  summaries, rendered in the Prometheus text exposition format for
  ``GET /v1/metrics``;
* :mod:`repro.obs.trace` — per-request traces: an id minted at the
  HTTP boundary (or taken from ``X-Request-Id``), span records
  (name, parent, start, duration, shard id) collected through the
  service, the cluster router and — across ``FrameChannel`` payloads
  — the shard workers, sampled into a bounded ring buffer;
* :mod:`repro.obs.log` — structured JSON line logging (one object
  per line, sorted keys) replacing silent paths and
  ``BaseHTTPRequestHandler``'s raw stderr access lines, including
  the threshold-gated slow-query log.

Everything is stdlib-only and dependency-free, like the rest of the
repository.  See ``docs/observability.md`` for the metric catalog,
the span model and the sampling semantics.
"""

from repro.obs.log import StructuredLogger, get_logger
from repro.obs.registry import (Counter, Gauge, Histogram,
                                MetricsRegistry, percentile)
from repro.obs.trace import (Span, TraceContext, Tracer, activate,
                             current_trace, span)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "StructuredLogger",
    "TraceContext",
    "Tracer",
    "activate",
    "current_trace",
    "get_logger",
    "percentile",
    "span",
]
