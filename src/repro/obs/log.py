"""Structured JSON line logging for the serving tier.

One event per line, one JSON object per event, keys sorted — so logs
are grep-able, machine-parseable and deterministic in shape.  This
replaces the two failure modes the tier had before: silent paths
(``MatchServiceHandler.log_message`` swallowed every access line)
and raw ``BaseHTTPRequestHandler`` stderr chatter (what the stdlib
does by default).

A :class:`StructuredLogger` writes to an injectable stream (stderr
by default; tests inject ``io.StringIO`` to stay silent and assert
on content) and never raises out of the logging call — an
observability failure must not fail the request being observed.

The slow-query log is just an event (``"slow_query"``) emitted by
the service when a scoring batch exceeds ``ServeConfig.
slow_query_ms``; gating lives at the call site, formatting here.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO, Optional

_LEVELS = ("debug", "info", "warning", "error")


class StructuredLogger:
    """JSON-lines logger bound to a name and an output stream."""

    def __init__(self, name: str,
                 stream: Optional[IO[str]] = None) -> None:
        self.name = name
        #: swap to redirect (tests use io.StringIO); None = stderr
        self.stream = stream
        self._lock = threading.Lock()

    def _target(self) -> IO[str]:
        return self.stream if self.stream is not None else sys.stderr

    def log(self, event: str, level: str = "info",
            **fields: object) -> None:
        """Emit one event line; never raises into the caller."""
        if level not in _LEVELS:
            level = "info"
        record = dict(fields)
        record["ts"] = round(time.time(), 6)
        record["level"] = level
        record["logger"] = self.name
        record["event"] = event
        try:
            line = json.dumps(record, sort_keys=True, default=str)
            with self._lock:
                target = self._target()
                target.write(line + "\n")
                target.flush()
        except Exception:  # pragma: no cover - logging must not fail
            pass

    # convenience levels ------------------------------------------------

    def info(self, event: str, **fields: object) -> None:
        self.log(event, level="info", **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log(event, level="warning", **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log(event, level="error", **fields)


def get_logger(name: str,
               stream: Optional[IO[str]] = None) -> StructuredLogger:
    """Build a logger; each owner holds its own (no global state)."""
    return StructuredLogger(name, stream=stream)
