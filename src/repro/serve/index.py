"""Incremental indexed reference store for the match service.

The offline engine packs both sources into vectorized kernels *per
request* — fine for batch jobs, wasteful for a standing service whose
reference barely changes between queries.  :class:`IncrementalIndex`
keeps the reference side of that packing **persistent**:

* each attribute spec owns a *packed column* — q-gram bitmaps
  (:class:`~repro.engine.vectorized.NGramBitKernel` math), CSR TF/IDF
  (:class:`~repro.engine.sparse.TfIdfKernel` math) or a memoized
  scalar fallback — whose reference side is built once and whose
  query side is bound per micro-batch in O(batch);
* mutations (``add`` / ``update`` / ``delete``) cost O(record): new
  records land in an append buffer scored through the scalar batch
  path, deletions become tombstones filtered at query time;
* when the buffer + tombstones outgrow a threshold the index
  *compacts*: live records become the new packed base, corpus
  statistics (TF/IDF document frequencies) are re-prepared, and the
  buffer drains.

Bit-exactness.  Base rows score through the very kernel expressions
the engine uses; buffer rows score through ``score_batch``, which is
bit-identical to the kernels by the engine's equivalence contract.
Query-side packing is exact as well: q-grams absent from the
reference vocabulary can never overlap a reference row, so they are
counted in the row's gram-set *size* but not its bits; TF/IDF query
entries for unseen tokens contribute exact ``+0.0`` terms to the dot
product (all weights are non-negative, so skipping them cannot flip a
``-0.0``) while the expansion tie-break still compares the *logical*
vector sizes and full lexicographic text order.  A frozen index
therefore answers exactly like the offline engine on the same pairs.

Corpus statistics are deliberately *frozen between compactions*: a
standing service must score deterministically regardless of which
queries or ingests arrived before, so document frequencies refresh
only when the base is rebuilt (``compact()`` forces one).  Scores of
corpus-independent similarities (the q-gram family, edit distances)
never depend on this; TF/IDF scores match a freshly built index after
the next compaction.

Candidate pruning.  ``_candidate_slots`` historically ran one
``bincount`` over the full concatenated posting mass — linear in
postings, so a hub token (one shared by most of the corpus) made every
query pay for the whole corpus.  The ``pruning`` knob adds a
max-score/WAND-style top-k path: postings are walked in descending
weight (impact) order, and once ``max_candidates`` slots have been
seen and the summed weight of the *unprocessed* postings provably
cannot lift an unseen slot past the current kth partial score, the
remaining (heaviest-df, lowest-weight) postings are skipped entirely.
The skipped-slot exclusion uses a relative safety slack far above
float accumulation error, and the surviving candidates are then
*rescored exactly* — per token in the original sorted-token order,
adding the token's weight or an exact ``+0.0`` — which reproduces the
``bincount`` accumulation bit-for-bit.  The pruned path is therefore
bit-identical (same slots, same float scores, same order) to the
exhaustive one; ``tests/serve/test_pruning.py`` holds the equivalence
harness.  ``pruning="auto"`` engages only when the posting-mass skew
makes it worthwhile; ``"always"``/``"never"`` force either path.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - image always has numpy
    _np = None

from repro.concurrency import requires_lock
from repro.engine import sparse, vectorized
from repro.engine.request import AttributeSpec
from repro.model.entity import ObjectInstance
from repro.model.source import LogicalSource
from repro.sim.base import SimilarityFunction
from repro.sim.ngram import NGramSimilarity
from repro.sim.registry import get_similarity
from repro.sim.tfidf import TfIdfCosineSimilarity
from repro.sim.tokenize import word_tokens

Triple = Tuple[int, str, float]


def resolve_specs(attribute: str, similarity: object,
                  specs: Optional[List[AttributeSpec]]) \
        -> List[AttributeSpec]:
    """Normalize the simple ``attribute`` + ``similarity`` pair (or an
    explicit spec list) into the spec list every index flavor takes."""
    if specs is not None:
        return list(specs)
    sim = (get_similarity(similarity)
           if isinstance(similarity, str) else similarity)
    return [AttributeSpec(attribute, attribute, sim)]


# ----------------------------------------------------------------------
# packed columns: persistent reference side, per-batch query binding
# ----------------------------------------------------------------------

class _BoundNGramKernel(vectorized.NGramBitKernel):
    """An :class:`NGramBitKernel` assembled from pre-packed halves.

    Inherits ``score_rows`` unchanged — the scoring math is literally
    the engine kernel's.
    """

    def __init__(self, method, domain_bits, domain_sizes,
                 range_bits, range_sizes) -> None:
        self.method = method
        self.domain_bits = domain_bits
        self.domain_sizes = domain_sizes
        self.range_bits = range_bits
        self.range_sizes = range_sizes


class _NGramColumn:
    """Persistent reference side of the packed q-gram bit kernel."""

    vectorized = True
    orientation_symmetric = True

    #: clear the similarity's per-string gram cache once query traffic
    #: has grown it beyond this many entries past the reference size
    QUERY_CACHE_SLACK = 65536

    def __init__(self, sim: NGramSimilarity,
                 reference_values: Sequence[object]) -> None:
        self.sim = sim
        self._reference_size = len(reference_values)
        vocabulary: Dict[str, int] = {}
        gram_sets = [self._grams(value) for value in reference_values]
        for grams in gram_sets:
            for gram in grams:
                if gram not in vocabulary:
                    vocabulary[gram] = len(vocabulary)
        self._vocabulary = vocabulary
        self._width = max(1, (len(vocabulary) + 63) // 64)
        self.range_bits, self.range_sizes = self._pack(gram_sets)

    def _grams(self, value: object):
        if value is None:
            return frozenset()
        return self.sim.grams(str(value))

    def _pack(self, gram_sets):
        """Pack gram sets over the *reference* vocabulary.

        Grams outside the vocabulary (possible only on the query side)
        set no bit but still count toward the row size — they can
        never overlap a reference row, so overlap stays exact while
        dice/jaccard denominators see the full set size.  The bit
        scatter itself is vectorized (one ``bitwise_or.at`` over all
        (row, gram) entries): this packs every query micro-batch, so
        a per-gram Python loop would eat the batching gain.
        """
        vocabulary = self._vocabulary
        width = self._width
        bits = _np.zeros((len(gram_sets), width), dtype=_np.uint64)
        sizes = _np.zeros(len(gram_sets), dtype=_np.int64)
        rows: List[int] = []
        positions: List[int] = []
        lookup = vocabulary.get
        for row, grams in enumerate(gram_sets):
            sizes[row] = len(grams)
            for gram in grams:
                position = lookup(gram)
                if position is not None:
                    rows.append(row)
                    positions.append(position)
        if rows:
            row_array = _np.asarray(rows, dtype=_np.int64)
            position_array = _np.asarray(positions, dtype=_np.int64)
            flat = bits.reshape(-1)
            cells = row_array * width + (position_array >> 6)
            masks = _np.left_shift(
                _np.uint64(1),
                (position_array & 63).astype(_np.uint64))
            _np.bitwise_or.at(flat, cells, masks)
        return bits, sizes

    def bind(self, query_values: Sequence[object]):
        """Return an engine-kernel scorer for ``query_values`` rows."""
        query_bits, query_sizes = self._pack(
            [self._grams(value) for value in query_values])
        cache = self.sim._gram_cache
        if len(cache) > self._reference_size + self.QUERY_CACHE_SLACK:
            # unbounded distinct-query traffic must not leak through
            # the similarity's per-string gram cache
            cache.clear()
        return _BoundNGramKernel(self.sim.method, query_bits, query_sizes,
                                 self.range_bits, self.range_sizes)


class _BoundTfIdfKernel(sparse.TfIdfKernel):
    """A :class:`TfIdfKernel` assembled from pre-packed halves.

    ``_dot`` is inherited — the summation is the engine kernel's.
    ``score_rows`` is re-stated here because the expansion-side
    decision must use the query rows' *logical* vector sizes (unseen
    tokens are dropped from the packed arrays but the scalar
    tie-break counts them).
    """

    def __init__(self, domain_side, domain_logical_lengths,
                 range_side, vocab_size) -> None:
        self.domain = domain_side
        self.range = range_side
        self._domain_logical = domain_logical_lengths
        self._vocab_size = vocab_size

    def score_rows(self, domain_rows, range_rows):
        rows_a = _np.asarray(domain_rows, dtype=_np.int64)
        rows_b = _np.asarray(range_rows, dtype=_np.int64)
        length_a = self._domain_logical[rows_a]
        length_b = self.range.lengths[rows_b]
        expand_domain = (length_a < length_b) | (
            (length_a == length_b)
            & (self.domain.rank[rows_a] <= self.range.rank[rows_b]))
        scores = _np.zeros(len(rows_a), dtype=_np.float64)
        subset = _np.nonzero(expand_domain)[0]
        if len(subset):
            scores[subset] = self._dot(self.domain, rows_a[subset],
                                       self.range, rows_b[subset])
        subset = _np.nonzero(~expand_domain)[0]
        if len(subset):
            scores[subset] = self._dot(self.range, rows_b[subset],
                                       self.domain, rows_a[subset])
        _np.clip(scores, 0.0, 1.0, out=scores)
        return scores


class _TfIdfColumn:
    """Persistent reference side of the sparse CSR TF/IDF kernel."""

    vectorized = True
    orientation_symmetric = True

    #: clear the similarity's per-text vector cache once query traffic
    #: has grown it beyond this many entries past the reference size
    QUERY_CACHE_SLACK = 65536

    def __init__(self, sim: TfIdfCosineSimilarity,
                 reference_values: Sequence[object]) -> None:
        self.sim = sim
        vectors = [sim.value_vector(value) for value in reference_values]
        vocabulary: Dict[str, int] = {}
        for vector in vectors:
            for token in vector:
                if token not in vocabulary:
                    vocabulary[token] = len(vocabulary)
        self._vocabulary = vocabulary
        self._vocab_size = max(1, len(vocabulary))
        self._reference_size = len(reference_values)
        texts = ["" if value is None else str(value)
                 for value in reference_values]
        self._sorted_texts = sorted(set(texts))
        ranks = [2 * bisect_left(self._sorted_texts, text) for text in texts]
        self._side = sparse._Side(vectors, vocabulary, self._vocab_size,
                                  ranks)

    def _rank(self, text: str) -> int:
        """Rank of a query text in the cross-side lexicographic order.

        Reference texts sit at even ranks; a query text absent from
        the reference slots between its neighbours at an odd rank, so
        rank comparison agrees with text comparison for every
        (query, reference) pair — including the equal-text tie, where
        the shared even rank makes the kernel's ``<=`` expand the
        query side exactly like the scalar tie-break.
        """
        position = bisect_left(self._sorted_texts, text)
        if position < len(self._sorted_texts) \
                and self._sorted_texts[position] == text:
            return 2 * position
        return 2 * position - 1

    def bind(self, query_values: Sequence[object]):
        sim = self.sim
        vectors = [sim.value_vector(value) for value in query_values]
        vocabulary = self._vocabulary
        packed = [{token: weight for token, weight in vector.items()
                   if token in vocabulary}
                  for vector in vectors]
        texts = ["" if value is None else str(value)
                 for value in query_values]
        side = sparse._Side(packed, vocabulary, self._vocab_size,
                            [self._rank(text) for text in texts])
        logical = _np.asarray([len(vector) for vector in vectors],
                              dtype=_np.int64)
        cache = sim._vector_cache
        if len(cache) > self._reference_size + self.QUERY_CACHE_SLACK:
            cache.clear()
        return _BoundTfIdfKernel(side, logical, self._side,
                                 self._vocab_size)


class _ScalarColumn:
    """Fallback column: memoized ``score_batch`` over reference texts.

    The memo persists across binds (and is shared with the composed
    multi-attribute route), so repeated query values keep their
    engine-grade caching.
    """

    vectorized = False
    orientation_symmetric = False

    def __init__(self, sim: SimilarityFunction,
                 reference_values: Sequence[object], *,
                 cache_limit: int = 1 << 20) -> None:
        self.sim = sim
        self.range_texts = [None if value is None else str(value)
                            for value in reference_values]
        self.cache_limit = cache_limit
        self.cache: dict = {}

    def bind(self, query_values: Sequence[object]):
        # range_texts are already strings, so the constructor's
        # coercion pass is identity work; the shared ``cache`` keeps
        # the memo warm across binds
        return vectorized.ScalarColumn(self.sim, query_values,
                                       self.range_texts,
                                       cache_limit=self.cache_limit,
                                       cache=self.cache)


def _build_column(sim: SimilarityFunction, values: Sequence[object]):
    """Column registry: mirrors :func:`repro.engine.vectorized.build_kernel`."""
    if vectorized.numpy_available() and isinstance(sim, NGramSimilarity) \
            and type(sim)._score is NGramSimilarity._score:
        try:
            return _NGramColumn(sim, values)
        except MemoryError:  # pragma: no cover - budget-sized references
            return _ScalarColumn(sim, values)
    if sparse.numpy_available() and isinstance(sim, TfIdfCosineSimilarity) \
            and type(sim)._score is TfIdfCosineSimilarity._score \
            and type(sim).vector is TfIdfCosineSimilarity.vector:
        try:
            return _TfIdfColumn(sim, values)
        except MemoryError:  # pragma: no cover - budget-sized references
            return _ScalarColumn(sim, values)
    return _ScalarColumn(sim, values)


# ----------------------------------------------------------------------
# packed-column export / import: the on-disk memmap layout
# ----------------------------------------------------------------------
#
# A column's packed reference side is a handful of flat numpy arrays
# plus a little JSON-serializable metadata (vocabulary order, sizes).
# ``export_column`` splits a built column into exactly that; restoring
# re-assembles the column objects around the arrays *as given* —
# including ``np.memmap`` views of the snapshot files — so a cold
# shard worker skips the entire packing pass (vocabulary construction,
# gram extraction, bit scatter, CSR packing) and starts scoring
# straight off the page cache.

def export_column(column) -> Tuple[dict, Dict[str, object]]:
    """Split a packed column into ``(JSON meta, named arrays)``."""
    if column is None:
        return {"kind": "none"}, {}
    if isinstance(column, _NGramColumn):
        vocabulary = [None] * len(column._vocabulary)
        for token, position in column._vocabulary.items():
            vocabulary[position] = token
        meta = {"kind": "ngram",
                "vocabulary": vocabulary,
                "reference_size": column._reference_size}
        return meta, {"range_bits": column.range_bits,
                      "range_sizes": column.range_sizes}
    if isinstance(column, _TfIdfColumn):
        vocabulary = [None] * len(column._vocabulary)
        for token, position in column._vocabulary.items():
            vocabulary[position] = token
        side = column._side
        meta = {"kind": "tfidf",
                "vocabulary": vocabulary,
                "reference_size": column._reference_size,
                "sorted_texts": column._sorted_texts}
        return meta, {"indptr": side.indptr, "indices": side.indices,
                      "data": side.data, "keys": side.keys,
                      "sorted_data": side.sorted_data,
                      "lengths": side.lengths, "rank": side.rank}
    if isinstance(column, _ScalarColumn):
        return {"kind": "scalar"}, {}
    raise TypeError(f"unknown column type {type(column)!r}")


def import_column(sim: SimilarityFunction, meta: dict,
                  arrays: Dict[str, object],
                  reference_values: Sequence[object]):
    """Re-assemble a packed column from :func:`export_column` output.

    ``arrays`` may hold plain ndarrays or read-only ``np.memmap``
    views — scoring only ever reads the reference side, so mapped
    snapshot files work unchanged.  Scalar (and ``None``) columns
    carry no arrays; they rebuild from ``reference_values``, which is
    O(n) string coercion.
    """
    kind = meta["kind"]
    if kind == "none":
        return None
    if kind == "scalar":
        return _ScalarColumn(sim, reference_values)
    if kind == "ngram":
        column = _NGramColumn.__new__(_NGramColumn)
        column.sim = sim
        column._reference_size = meta["reference_size"]
        column._vocabulary = {token: position for position, token
                              in enumerate(meta["vocabulary"])}
        column._width = max(1, (len(column._vocabulary) + 63) // 64)
        column.range_bits = arrays["range_bits"]
        column.range_sizes = arrays["range_sizes"]
        return column
    if kind == "tfidf":
        column = _TfIdfColumn.__new__(_TfIdfColumn)
        column.sim = sim
        column._vocabulary = {token: position for position, token
                              in enumerate(meta["vocabulary"])}
        column._vocab_size = max(1, len(column._vocabulary))
        column._reference_size = meta["reference_size"]
        column._sorted_texts = list(meta["sorted_texts"])
        side = object.__new__(sparse._Side)
        side.indptr = arrays["indptr"]
        side.indices = arrays["indices"]
        side.data = arrays["data"]
        side.keys = arrays["keys"]
        side.sorted_data = arrays["sorted_data"]
        side.lengths = arrays["lengths"]
        side.rank = arrays["rank"]
        column._side = side
        return column
    raise ValueError(f"unknown packed column kind {kind!r}")


# ----------------------------------------------------------------------
# the incremental index
# ----------------------------------------------------------------------

class IncrementalIndex:
    """A mutable reference source behind persistent packed kernel state.

    ``reference`` is snapshotted at construction; afterwards the index
    owns the data — mutate through :meth:`add` / :meth:`update` /
    :meth:`delete`, each O(record).  ``specs`` (or the simple
    ``attribute`` + ``similarity`` pair) define the scored columns;
    multiple specs require a ``combiner`` exactly like a
    :class:`~repro.engine.request.MatchRequest`.  Candidate generation
    runs over an inverted word-token index of the *first* spec's
    reference attribute.
    """

    def __init__(self, reference: LogicalSource,
                 attribute: str = "title",
                 similarity: object = "trigram", *,
                 specs: Optional[List[AttributeSpec]] = None,
                 combiner=None,
                 missing: str = "skip",
                 compact_ratio: float = 0.25,
                 compact_min: int = 64,
                 build_kernels: bool = True,
                 pruning: str = "auto",
                 _column_states=None) -> None:
        specs = resolve_specs(attribute, similarity, specs)
        if not specs:
            raise ValueError("index needs at least one attribute spec")
        if combiner is None and len(specs) != 1:
            raise ValueError("multiple attribute specs require a combiner")
        if missing not in ("skip", "zero"):
            raise ValueError(f"missing must be 'skip' or 'zero', got {missing!r}")
        if compact_ratio <= 0:
            raise ValueError("compact_ratio must be positive")
        if compact_min < 1:
            raise ValueError("compact_min must be >= 1")
        if pruning not in ("auto", "always", "never"):
            raise ValueError(
                f"pruning must be 'auto', 'always' or 'never', got {pruning!r}")
        self.specs = list(specs)
        self.combiner = combiner
        self.missing = missing
        self.compact_ratio = compact_ratio
        self.compact_min = compact_min
        self.build_kernels = build_kernels
        self.pruning = pruning
        self._pruning_counters: Dict[str, int] = {
            "queries": 0, "pruned_queries": 0,
            "postings_touched": 0, "postings_skipped": 0,
            "membership_probes": 0, "prefilter_skipped": 0,
        }
        #: cumulative scoring-call timings (repro.obs pulls these at
        #: scrape time; pure observation, results are unaffected)
        self._timing_counters: Dict[str, float] = {
            "match_calls": 0, "match_seconds": 0.0,
        }
        self._physical = reference.physical
        self._object_type = reference.object_type
        self.name = reference.name

        self._buffer: Dict[str, ObjectInstance] = {}
        self._tombstones: set = set()
        self._scalar_caches: List[dict] = [{} for _ in self.specs]
        self._compaction_listeners: List[Callable[[], None]] = []
        self.version = 0
        self.compactions = 0
        self._pending_column_states = _column_states
        self._rebuild(list(reference))

    # -- construction / compaction -------------------------------------

    def _rebuild(self, instances: List[ObjectInstance]) -> None:
        base = LogicalSource(self._physical, self._object_type)
        for instance in instances:
            base.add(instance)
        self._base = base
        self._base_rows = {id: row for row, id in enumerate(base.ids())}
        # slot space: every record gets an integer slot; base rows own
        # slots [0, len(base)) aligned with the packed kernel rows,
        # buffer records append after.  The hot paths (candidate
        # generation, kernel scoring) work entirely in slots and only
        # materialize id strings for surviving correspondences.
        self._slot_ids: List[str] = list(base.ids())
        self._id_slots: Dict[str, int] = {
            id: slot for slot, id in enumerate(self._slot_ids)}
        restored = getattr(self, "_pending_column_states", None)
        self._pending_column_states = None
        # corpus statistics (gram caches, TF/IDF document frequencies)
        # refresh here and freeze until the next rebuild
        for spec in self.specs:
            if restored is not None and isinstance(spec.similarity,
                                                   NGramSimilarity):
                # gram caches refill lazily; skipping the warm-up keeps
                # restore O(mmap) for the q-gram family
                continue
            spec.similarity.prepare(
                base.attribute_values(spec.range_attribute))
        self._base_values = [
            [instance.get(spec.range_attribute) for instance in base]
            for spec in self.specs
        ]
        if restored is not None:
            # snapshot restore: re-assemble packed columns around the
            # exported (possibly memmapped) arrays instead of repacking
            self._columns = [
                import_column(spec.similarity, meta, arrays, values)
                for spec, (meta, arrays), values
                in zip(self.specs, restored, self._base_values)
            ]
        else:
            use_kernels = self.build_kernels and _np is not None
            self._columns = [
                _build_column(spec.similarity, values) if use_kernels else None
                for spec, values in zip(self.specs, self._base_values)
            ]
            if use_kernels and not any(
                    column is not None and column.vectorized
                    for column in self._columns):
                # all-scalar compositions gain nothing over the plain
                # scalar route; skip the per-batch binding machinery
                self._columns = [None for _ in self.specs]
        if _np is not None:
            self._base_missing = [vectorized.missing_mask(values)
                                  for values in self._base_values]
        else:  # pragma: no cover - numpy always present in the image
            self._base_missing = None
        self._token_index: Dict[str, List[int]] = {}
        self._posting_arrays: Dict[str, object] = {}
        first = self.specs[0].range_attribute
        for slot, instance in enumerate(base):
            self._index_tokens(slot, instance.get(first))

    @requires_lock("_lock")
    def compact(self) -> None:
        """Rebuild packed columns and corpus statistics from live records.

        The index itself holds no lock; the ``requires_lock`` marker
        documents that a concurrently-shared index must be mutated
        under its owner's ``_lock`` (``MatchService`` wraps every
        mutation that way).  The runtime assert is a no-op here.
        """
        self._rebuild(self.instances())
        self._buffer.clear()
        self._tombstones.clear()
        self.compactions += 1
        for listener in self._compaction_listeners:
            listener()

    @requires_lock("_lock")
    def _maybe_compact(self) -> None:
        pending = len(self._buffer) + len(self._tombstones)
        if pending >= max(self.compact_min,
                          int(self.compact_ratio * len(self._base))):
            self.compact()

    def on_compact(self, listener: Callable[[], None]) -> None:
        """Register a callback fired after every compaction."""
        self._compaction_listeners.append(listener)

    # -- token index ---------------------------------------------------

    @staticmethod
    def _tokens(value: object):
        """Distinct word tokens of a value in *sorted* order.

        Sorted, not set, order: candidate weights accumulate one
        float per token, and the partitioned serving tier recomputes
        the same sums inside shard worker processes whose string hash
        seeds differ from the router's — set iteration order would
        make the accumulation order (and thus the last bits of tied
        sums) process-dependent.
        """
        if value is None:
            return ()
        return tuple(sorted(set(word_tokens(str(value)))))

    def _index_tokens(self, slot: int, value: object) -> None:
        # posting lists stay sorted ascending by construction: slots
        # are handed out monotonically (rebuild enumerates the base in
        # slot order; add/update always append the next slot) and
        # ``list.remove`` preserves order — the pruned rescore's
        # binary-search membership probes depend on this invariant
        for token in self._tokens(value):
            self._token_index.setdefault(token, []).append(slot)
            self._posting_arrays.pop(token, None)

    def _unindex_tokens(self, slot: int, value: object) -> None:
        for token in self._tokens(value):
            posting = self._token_index.get(token)
            if posting is None:
                continue
            try:
                posting.remove(slot)
            except ValueError:  # pragma: no cover - defensive
                continue
            self._posting_arrays.pop(token, None)
            if not posting:
                del self._token_index[token]

    # -- mutation ------------------------------------------------------

    @requires_lock("_lock")
    def add(self, instance: ObjectInstance) -> None:
        """Add a new record; a live duplicate id is rejected."""
        if instance.id in self:
            raise ValueError(
                f"duplicate instance id {instance.id!r} in {self.name}")
        slot = len(self._slot_ids)
        self._slot_ids.append(instance.id)
        self._id_slots[instance.id] = slot
        self._buffer[instance.id] = instance
        self._index_tokens(slot,
                           instance.get(self.specs[0].range_attribute))
        self.version += 1
        self._maybe_compact()

    @requires_lock("_lock")
    def add_record(self, id: str, **attributes) -> ObjectInstance:
        """Convenience: build and add an instance from keyword attributes."""
        instance = ObjectInstance(id, attributes)
        self.add(instance)
        return instance

    @requires_lock("_lock")
    def update(self, instance: ObjectInstance) -> None:
        """Replace a live record (KeyError when the id is not live)."""
        old = self.get(instance.id)
        if old is None:
            raise KeyError(f"no instance {instance.id!r} in {self.name}")
        first = self.specs[0].range_attribute
        old_slot = self._id_slots[instance.id]
        self._unindex_tokens(old_slot, old.get(first))
        # an update always reslots the record to the end, whether the
        # old version lived in the base or the buffer.  Insertion
        # order is the candidate-ranking tie-break, and "where does
        # this record rank after an update" must not depend on
        # compaction timing — the partitioned cluster's shards compact
        # on their own schedules and still have to order records
        # exactly like the single index (and a rebuilt one) would.
        if instance.id in self._base_rows:
            self._tombstones.add(instance.id)
        slot = len(self._slot_ids)
        self._slot_ids.append(instance.id)
        self._id_slots[instance.id] = slot
        self._buffer.pop(instance.id, None)
        self._buffer[instance.id] = instance
        self._index_tokens(slot, instance.get(first))
        self.version += 1
        self._maybe_compact()

    @requires_lock("_lock")
    def delete(self, id: str) -> bool:
        """Remove a live record; returns whether it existed."""
        old = self.get(id)
        if old is None:
            return False
        slot = self._id_slots.pop(id)
        self._unindex_tokens(slot, old.get(self.specs[0].range_attribute))
        if id in self._buffer:
            del self._buffer[id]
        if id in self._base_rows:
            self._tombstones.add(id)
        self.version += 1
        self._maybe_compact()
        return True

    # -- lookup --------------------------------------------------------

    def get(self, id: str) -> Optional[ObjectInstance]:
        instance = self._buffer.get(id)
        if instance is not None:
            return instance
        if id in self._tombstones:
            return None
        return self._base.get(id)

    def __contains__(self, id: str) -> bool:
        return self.get(id) is not None

    def __len__(self) -> int:
        return len(self._base) - len(self._tombstones) + len(self._buffer)

    def ids(self) -> List[str]:
        """Live ids: base order (minus tombstones) then buffer order."""
        live = [id for id in self._base.ids() if id not in self._tombstones]
        live.extend(self._buffer)
        return live

    def instances(self) -> List[ObjectInstance]:
        return [self.get(id) for id in self.ids()]

    def snapshot(self) -> LogicalSource:
        """The live records as a plain :class:`LogicalSource`."""
        source = LogicalSource(self._physical, self._object_type)
        for instance in self.instances():
            source.add(instance)
        return source

    def stats(self) -> dict:
        return {
            "records": len(self),
            "base": len(self._base),
            "buffer": len(self._buffer),
            "tombstones": len(self._tombstones),
            "tokens": len(self._token_index),
            "version": self.version,
            "compactions": self.compactions,
            "vectorized_columns": sum(
                1 for column in self._columns
                if column is not None and column.vectorized),
            "pruning": self.pruning_counters(),
        }

    def pruning_counters(self) -> Dict[str, int]:
        """Cumulative candidate-pruning counters (the test/bench hook).

        ``queries`` counts candidate retrievals, ``pruned_queries``
        those answered by the impact-ordered path; ``postings_touched``
        / ``postings_skipped`` split the posting mass between expanded
        and provably-skippable postings (the sublinearity
        regression-guard); ``membership_probes`` counts the exact
        rescore's binary-search probes and ``prefilter_skipped`` the
        candidate pairs dropped by score upper bounds before kernel
        scoring.
        """
        return dict(self._pruning_counters)

    def timing_counters(self) -> Dict[str, float]:
        """Cumulative scoring-call timings for the metrics registry.

        Kept out of :meth:`stats` deliberately: stats snapshots must
        be byte-stable across snapshot/restore, and wall-clock totals
        are not.
        """
        return dict(self._timing_counters)

    # -- snapshot export / import --------------------------------------

    def export_columns(self) -> List[Tuple[dict, Dict[str, object]]]:
        """Packed-column states of the current base, one per spec.

        Each entry is ``(meta, arrays)`` as produced by
        :func:`export_column`; the partition store writes the arrays as
        raw files a restoring worker memory-maps straight back in.
        """
        return [export_column(column) for column in self._columns]

    def base_instances(self) -> List[ObjectInstance]:
        """The packed base's records in slot order (excludes buffer)."""
        return list(self._base)

    @classmethod
    def from_snapshot(cls, reference: LogicalSource, *,
                      specs: List[AttributeSpec],
                      combiner=None,
                      missing: str = "skip",
                      compact_ratio: float = 0.25,
                      compact_min: int = 64,
                      pruning: str = "auto",
                      column_states: List[Tuple[dict, Dict[str, object]]],
                      version: int = 0,
                      compactions: int = 0) -> "IncrementalIndex":
        """Rebuild an index around previously exported column state.

        ``reference`` must hold exactly the base records the columns
        were exported from, in the same order.  Packed columns are
        re-assembled from ``column_states`` (memmap arrays welcome)
        instead of repacked, and corpus-independent similarities skip
        ``prepare`` — so the heavy O(n · tokens) work left is only the
        inverted token index.  ``version`` / ``compactions`` restore
        the counters the index carried when the base was written; WAL
        replay on top reproduces the exact state trajectory.
        """
        index = cls(reference, specs=specs, combiner=combiner,
                    missing=missing, compact_ratio=compact_ratio,
                    compact_min=compact_min, pruning=pruning,
                    _column_states=column_states)
        index.version = version
        index.compactions = compactions
        return index

    # -- candidate generation ------------------------------------------

    def candidate_ids(self, value: object,
                      max_candidates: Optional[int] = 50) -> List[str]:
        """Reference ids worth scoring against ``value``.

        ``None`` disables pruning (every live id, deterministic
        order).  Otherwise candidates sharing a word token are ranked
        by summed inverse document frequency, ``1 / df`` — the
        continuous form of the old online matcher's ``1000 // df``
        rarity rank — with ties broken by insertion order (which a
        rebuilt index reproduces).  The weight deliberately depends on
        *nothing but the query's own postings*: mutations that share
        no token with a query can then never change its candidate set
        or ranking, which is what makes the service's token-keyed
        cache invalidation exact.
        """
        if max_candidates is None:
            return self.ids()
        slot_ids = self._slot_ids
        return [slot_ids[slot]
                for slot in self._candidate_slots(value, max_candidates)]

    def _posting_weights(self, value: object, weights=None):
        """Live posting (token → slots) arrays and rarity weights.

        ``weights`` (token → weight) overrides the local ``1/df``
        rarity: the cluster router passes *global* document
        frequencies so every shard ranks its local postings with the
        same weights the single-index service would use.  Tokens
        absent from ``weights`` are skipped — they have no live
        posting anywhere, so they could never contribute.
        """
        postings = []
        for token in self._tokens(value):
            posting = self._token_index.get(token)
            if not posting:
                continue
            if weights is None:
                weight = 1.0 / len(posting)
            else:
                weight = weights.get(token)
                if weight is None:
                    continue
            postings.append((token, posting, weight))
        return postings

    def token_frequencies(self) -> Dict[str, int]:
        """Live document frequency of every indexed token."""
        return {token: len(posting)
                for token, posting in self._token_index.items()}

    def ranked_candidates(self, value: object, max_candidates: int, *,
                          weights=None) -> List[Tuple[int, float]]:
        """Ranked ``(slot, summed weight)`` candidates for ``value``.

        Same ranking as :meth:`_candidate_slots` (which callers that
        only need the slots keep using), but the weight sums travel
        with the slots — the cluster router merges per-shard rankings
        into a global top-k on exactly these ``(weight, insertion
        order)`` keys.
        """
        slots, scores = self._candidate_slots(value, max_candidates,
                                              weights=weights,
                                              return_scores=True)
        return list(zip(
            slots if isinstance(slots, list) else slots.tolist(),
            scores if isinstance(scores, list) else scores.tolist()))

    def _candidate_slots(self, value: object, max_candidates: int, *,
                         weights=None, return_scores: bool = False):
        """Candidate slots ranked by summed token rarity.

        One ``bincount`` over the concatenated posting arrays replaces
        the per-id dict accumulation — this runs once per query record
        and dominated the old online loop.  Weight sums accumulate in
        token order on both the numpy and the fallback path, so the
        ranking is identical (bit-for-bit) across them and across an
        index rebuild.  When posting skew warrants it (see
        :meth:`_should_prune`) the impact-ordered pruned path answers
        instead — bit-identical by the module-docstring argument — and
        falls back here whenever its stop rule never fires.
        """
        if value is None:
            return ([], []) if return_scores else []
        postings = self._posting_weights(value, weights)
        if not postings:
            return ([], []) if return_scores else []
        counters = self._pruning_counters
        counters["queries"] += 1
        if _np is None:
            counters["postings_touched"] += sum(
                len(posting) for _, posting, _ in postings)
            scores: Dict[int, float] = {}
            for _, posting, weight in postings:
                for slot in posting:
                    scores[slot] = scores.get(slot, 0.0) + weight
            ranked = sorted(scores.items(),
                            key=lambda item: (-item[1], item[0]))
            ranked = ranked[:max_candidates]
            if return_scores:
                return ([slot for slot, _ in ranked],
                        [score for _, score in ranked])
            return [slot for slot, _ in ranked]
        if self._should_prune(postings, max_candidates):
            pruned = self._pruned_slots(postings, max_candidates,
                                        return_scores)
            if pruned is not None:
                counters["pruned_queries"] += 1
                return pruned
        counters["postings_touched"] += sum(
            len(posting) for _, posting, _ in postings)
        arrays = []
        weight_arrays = []
        for token, posting, weight in postings:
            array = self._posting_arrays.get(token)
            if array is None:
                array = _np.asarray(posting, dtype=_np.int64)
                self._posting_arrays[token] = array
            arrays.append(array)
            weight_arrays.append(
                _np.full(len(array), weight, dtype=_np.float64))
        slots = _np.concatenate(arrays)
        totals = _np.bincount(slots, weights=_np.concatenate(weight_arrays),
                              minlength=len(self._slot_ids))
        candidates = _np.nonzero(totals)[0]
        scores = totals[candidates]
        if len(candidates) > max_candidates:
            # partial selection first: ranking every token-sharing
            # record just to keep the top k dominated the query cost
            # on large references.  Boundary ties resolve to the
            # smallest slots, matching the full sort's tie-break.
            top = _np.argpartition(-scores, max_candidates - 1)
            boundary = scores[top[:max_candidates]].min()
            above = candidates[scores > boundary]
            ties = _np.sort(candidates[scores == boundary])
            candidates = _np.concatenate(
                [above, ties[:max_candidates - len(above)]])
            scores = totals[candidates]
        order = _np.lexsort((candidates, -scores))
        selected = candidates[order[:max_candidates]]
        if return_scores:
            return selected, totals[selected]
        return selected

    #: auto-gate: prune only past this much total posting mass ...
    PRUNE_MIN_MASS = 512
    #: ... and when the longest posting is at least this many times
    #: the mean length of the *other* postings (hub-token skew; the
    #: hub must not inflate its own baseline)
    PRUNE_SKEW_FACTOR = 4.0
    #: relative safety slack for the stop rule.  Partial sums and the
    #: remaining-weight bound carry float accumulation error of at
    #: most a few hundred ulps (~1e-13 relative); 1e-9 dwarfs it, so
    #: rounding can never wrongly exclude a true top-k member, while
    #: the final scores are recomputed exactly anyway.
    PRUNE_SLACK = 1e-9

    def _should_prune(self, postings, max_candidates: int) -> bool:
        """Engage the impact-ordered path for this query's postings?

        ``auto`` requires enough posting mass to amortize the rescore
        and real hub-token skew; with near-uniform document
        frequencies the stop rule cannot fire early and the exhaustive
        ``bincount`` is cheaper.  Non-positive weights (possible only
        through a caller-supplied override map) disable pruning — the
        stop-rule proof needs strictly positive impacts.
        """
        if self.pruning == "never" or len(postings) < 2:
            return False
        if any(weight <= 0.0 for _, _, weight in postings):
            return False
        if self.pruning == "always":
            return True
        mass = sum(len(posting) for _, posting, _ in postings)
        if mass < self.PRUNE_MIN_MASS:
            return False
        longest = max(len(posting) for _, posting, _ in postings)
        rest = (mass - longest) / (len(postings) - 1)
        return longest >= self.PRUNE_SKEW_FACTOR * max(rest, 1.0)

    def _pruned_slots(self, postings, max_candidates: int,
                      return_scores: bool):
        """Impact-ordered (max-score/WAND-style) top-k candidates.

        Phase 1 expands postings in descending weight order — rarest
        (highest-impact) tokens first — accumulating approximate
        partial sums, and stops once ``max_candidates`` slots are seen
        and the summed weight of the unprocessed postings (the best
        any *unseen* slot could ever reach) falls below the kth
        partial score by the safety slack.  Phase 2 then rescores the
        seen slots exactly: per token in the original sorted-token
        order, membership-probing the posting and adding the token's
        weight or an exact ``+0.0`` — the very accumulation order (and
        hence bit pattern) of the exhaustive ``bincount`` — and
        replays the exhaustive selection verbatim.  Returns ``None``
        when the stop rule never fires (every posting was expanded, so
        the exhaustive path is at least as cheap).
        """
        counters = self._pruning_counters
        slack = self.PRUNE_SLACK
        order = sorted(range(len(postings)),
                       key=lambda i: (-postings[i][2], i))
        # remaining[j]: summed weight of the postings after impact
        # rank j — an upper bound on any unseen slot's final score
        remaining = [0.0] * len(order)
        acc = 0.0
        for j in range(len(order) - 1, 0, -1):
            acc += postings[order[j]][2]
            remaining[j - 1] = acc
        totals = _np.zeros(len(self._slot_ids), dtype=_np.float64)
        seen_arrays: List[object] = []
        seen = 0
        prefix = 0
        for rank, position in enumerate(order):
            token, posting, weight = postings[position]
            array = self._posting_arrays.get(token)
            if array is None:
                array = _np.asarray(posting, dtype=_np.int64)
                self._posting_arrays[token] = array
            partial = totals[array]
            fresh = array[partial == 0.0]
            if len(fresh):
                seen_arrays.append(fresh)
                seen += len(fresh)
            # slots are distinct within one posting, so the fancy-index
            # add cannot lose contributions to duplicate indices
            totals[array] = partial + weight
            prefix = rank + 1
            if seen < max_candidates or remaining[rank] <= 0.0:
                continue
            partials = totals[_np.concatenate(seen_arrays)]
            cut = len(partials) - max_candidates
            kth = _np.partition(partials, cut)[cut]
            if remaining[rank] * (1.0 + slack) < kth * (1.0 - slack):
                break
        else:
            return None
        counters["postings_touched"] += sum(
            len(postings[order[j]][1]) for j in range(prefix))
        counters["postings_skipped"] += sum(
            len(postings[order[j]][1]) for j in range(prefix, len(order)))
        candidates = _np.sort(_np.concatenate(seen_arrays))
        scores = self._rescore_candidates(postings, candidates)
        if len(candidates) > max_candidates:
            # the exhaustive selection, verbatim, over the seen
            # superset: every unseen slot scores strictly below the
            # boundary, so neither the boundary nor the above/ties
            # split can differ from the full candidate set's
            top = _np.argpartition(-scores, max_candidates - 1)
            boundary = scores[top[:max_candidates]].min()
            above = candidates[scores > boundary]
            ties = _np.sort(candidates[scores == boundary])
            chosen = _np.concatenate(
                [above, ties[:max_candidates - len(above)]])
            chosen_scores = scores[_np.searchsorted(candidates, chosen)]
        else:
            chosen = candidates
            chosen_scores = scores
        final = _np.lexsort((chosen, -chosen_scores))
        selected = chosen[final[:max_candidates]]
        if return_scores:
            return selected, scores[_np.searchsorted(candidates, selected)]
        return selected

    def _rescore_candidates(self, postings, candidates):
        """Exact rarity scores for sorted ``candidates`` slots.

        Bit-identical to ``bincount`` over the concatenated postings:
        per slot, ``bincount`` adds each containing token's weight in
        token order; this loop walks the same token order adding the
        weight on membership and an exact ``+0.0`` otherwise (an IEEE
        identity on the non-negative accumulator).  Membership is a
        binary search per candidate — postings are sorted ascending by
        the ``_index_tokens`` invariant — so a skipped hub posting is
        probed in O(k log df) without ever being expanded.
        """
        counters = self._pruning_counters
        totals = _np.zeros(len(candidates), dtype=_np.float64)
        for token, posting, weight in postings:
            array = self._posting_arrays.get(token)
            if array is not None:
                positions = _np.searchsorted(array, candidates)
                hit = positions < len(array)
                member = hit.copy()
                member[hit] = array[positions[hit]] == candidates[hit]
            else:
                member = _np.empty(len(candidates), dtype=bool)
                for where, slot in enumerate(candidates.tolist()):
                    position = bisect_left(posting, slot)
                    member[where] = (position < len(posting)
                                     and posting[position] == slot)
            counters["membership_probes"] += len(candidates)
            totals = totals + _np.where(member, weight, 0.0)
        return totals

    # -- scoring -------------------------------------------------------

    def score_pairs(self, records: Sequence[ObjectInstance],
                    pairs: Iterable[Tuple[int, str]], *,
                    threshold: float) -> List[Triple]:
        """Score ``(record index, reference id)`` pairs in one batch.

        Returns surviving ``(record index, reference id, score)``
        triples under the engine's filter (``score >= threshold`` and
        ``score > 0``; single-attribute ``missing='zero'`` pairs
        surface as 0.0 at threshold 0).  Base rows go through one
        bound-kernel ``score_rows`` call; buffer rows go through the
        scalar batch path — both bit-identical to the offline engine.
        """
        base_queries: List[int] = []
        base_rows: List[int] = []
        base_ids: List[str] = []
        scalar_pairs: List[Tuple[int, str]] = []
        kernelized = any(column is not None for column in self._columns)
        for query, reference_id in pairs:
            row = self._base_rows.get(reference_id)
            if kernelized and row is not None \
                    and reference_id not in self._tombstones:
                base_queries.append(query)
                base_rows.append(row)
                base_ids.append(reference_id)
            else:
                scalar_pairs.append((query, reference_id))
        out: List[Triple] = []
        if base_queries:
            rows_a, rows_b, scores = self._score_kernel_rows(
                records, _np.asarray(base_queries, dtype=_np.int64),
                _np.asarray(base_rows, dtype=_np.int64), threshold)
            lookup = {row: id for row, id in zip(base_rows, base_ids)}
            out.extend(
                (query, lookup[row], score)
                for query, row, score in zip(rows_a.tolist(),
                                             rows_b.tolist(),
                                             scores.tolist()))
        if scalar_pairs:
            out.extend(self._score_scalar(records, scalar_pairs, threshold))
        return out

    def _score_kernel_rows(self, records, rows_a, rows_b, threshold: float):
        """One bound-kernel call; returns surviving row/score arrays.

        ``rows_a`` index into ``records``, ``rows_b`` into the packed
        base.  Mirrors :meth:`IndexedScorer.score_rows` exactly: the
        ``score >= threshold and score > 0`` filter plus the
        single-attribute ``missing='zero'`` surfacing at threshold 0.

        Unless ``pruning="never"``, pairs no kernel could lift over a
        positive ``threshold`` are dropped *before* scoring: the
        single-attribute path asks the bound kernel for per-pair score
        upper bounds (the q-gram gram-count/length bound — exact by
        float monotonicity, so survivors and scores are unchanged),
        and the multi-attribute path hands the threshold to
        :class:`~repro.engine.vectorized.MultiSpecKernel`, whose
        per-combiner progressive prefilter carries the same guarantee.
        """
        query_values = [
            [record.get(spec.attribute) for record in records]
            for spec in self.specs
        ]
        prefilter = threshold > 0.0 and self.pruning != "never"
        if self.combiner is None:
            kernel = self._columns[0].bind(query_values[0])
            query_missing = vectorized.missing_mask(query_values[0])
            bound_rows = (getattr(kernel, "score_bound_rows", None)
                          if prefilter else None)
            if bound_rows is not None and len(rows_a):
                bounds = bound_rows(rows_a, rows_b)
                keep = bounds >= threshold
                dropped = len(keep) - int(_np.count_nonzero(keep))
                if dropped:
                    self._pruning_counters["prefilter_skipped"] += dropped
                    rows_a = rows_a[keep]
                    rows_b = rows_b[keep]
        else:
            columns = [column.bind(values) for column, values
                       in zip(self._columns, query_values)]
            query_masks = [vectorized.missing_mask(values)
                           for values in query_values]
            kernel = vectorized.MultiSpecKernel(
                columns, query_masks, self._base_missing, self.combiner,
                threshold=threshold if prefilter else None)
            query_missing = None
        scores = kernel.score_rows(rows_a, rows_b)
        if self.combiner is not None:
            self._pruning_counters["prefilter_skipped"] += kernel.prefiltered
        mask = (scores >= threshold) & (scores > 0.0)
        if self.combiner is None and self.missing == "zero" \
                and threshold <= 0.0 and len(rows_a):
            mask = mask | (query_missing[rows_a]
                           | self._base_missing[0][rows_b])
        return rows_a[mask], rows_b[mask], scores[mask]

    def match_records(self, records: Sequence[ObjectInstance], *,
                      threshold: float,
                      max_candidates: Optional[int] = 50) \
            -> List[List[Tuple[str, float]]]:
        """Candidate generation + scoring for a query micro-batch.

        Returns one ``[(reference id, score), ...]`` list per record,
        each sorted by descending score (ties by id).  This is the
        service's hot path: candidate slots, kernel rows and the
        threshold filter all stay in integer arrays; id strings are
        materialized only for surviving correspondences.
        """
        begun = time.perf_counter()
        attribute = self.specs[0].attribute
        results: List[List[Tuple[str, float]]] = [[] for _ in records]
        kernelized = _np is not None and any(
            column is not None for column in self._columns)
        if not kernelized:
            pairs: List[Tuple[int, str]] = []
            for position, record in enumerate(records):
                value = record.get(attribute)
                if value is None:
                    continue
                for id in self.candidate_ids(str(value), max_candidates):
                    pairs.append((position, id))
            triples = self.score_pairs(records, pairs, threshold=threshold)
        else:
            triples = self._match_records_kernel(records, threshold,
                                                 max_candidates)
        for position, reference_id, score in triples:
            results[position].append((reference_id, score))
        for result in results:
            result.sort(key=lambda item: (-item[1], item[0]))
        self._timing_counters["match_calls"] += 1
        self._timing_counters["match_seconds"] += \
            time.perf_counter() - begun
        return results

    def _match_records_kernel(self, records, threshold: float,
                              max_candidates: Optional[int]) -> List[Triple]:
        attribute = self.specs[0].attribute
        n_base = len(self._base)
        query_arrays = []
        slot_arrays = []
        scalar_pairs: List[Tuple[int, str]] = []
        slot_ids = self._slot_ids
        all_slots = None
        if max_candidates is None:
            # one shared live-slot array: identical for every record
            all_slots = _np.asarray(
                [self._id_slots[id] for id in self.ids()],
                dtype=_np.int64)
        for position, record in enumerate(records):
            value = record.get(attribute)
            if value is None:
                continue
            if all_slots is not None:
                slots = all_slots
            else:
                slots = self._candidate_slots(str(value), max_candidates)
            if not len(slots):
                continue
            slots = _np.asarray(slots, dtype=_np.int64)
            base_slots = slots[slots < n_base]
            if len(base_slots):
                slot_arrays.append(base_slots)
                query_arrays.append(_np.full(len(base_slots), position,
                                             dtype=_np.int64))
            for slot in slots[slots >= n_base].tolist():
                scalar_pairs.append((position, slot_ids[slot]))
        out: List[Triple] = []
        if slot_arrays:
            rows_a, rows_b, scores = self._score_kernel_rows(
                records, _np.concatenate(query_arrays),
                _np.concatenate(slot_arrays), threshold)
            out.extend(zip(rows_a.tolist(),
                           (slot_ids[row] for row in rows_b.tolist()),
                           scores.tolist()))
        if scalar_pairs:
            out.extend(self._score_scalar(records, scalar_pairs, threshold))
        return out

    def _score_scalar(self, records, pairs, threshold: float) -> List[Triple]:
        if self.combiner is None:
            return self._score_scalar_single(records, pairs, threshold)
        return self._score_scalar_multi(records, pairs, threshold)

    def _score_scalar_single(self, records, pairs,
                             threshold: float) -> List[Triple]:
        """Replicates :meth:`ChunkScorer._score_single` semantics."""
        spec = self.specs[0]
        cache = self._scalar_caches[0]
        missing_zero = self.missing == "zero"
        keyed: List[Tuple[int, str, Optional[Tuple[str, str]]]] = []
        pending: dict = {}
        for query, reference_id in pairs:
            instance = self.get(reference_id)
            if instance is None:
                continue
            value_a = records[query].get(spec.attribute)
            value_b = instance.get(spec.range_attribute)
            if value_a is None or value_b is None:
                if missing_zero:
                    keyed.append((query, reference_id, None))
                continue
            key = (str(value_a), str(value_b))
            keyed.append((query, reference_id, key))
            if key not in cache and key not in pending:
                pending[key] = None
        fresh = self._score_pending(0, list(pending))
        out: List[Triple] = []
        for query, reference_id, key in keyed:
            if key is None:
                if threshold <= 0.0:
                    out.append((query, reference_id, 0.0))
                continue
            score = fresh.get(key)
            if score is None:
                score = cache[key]
            if score >= threshold and score > 0.0:
                out.append((query, reference_id, score))
        self._merge_cache(0, fresh)
        return out

    def _score_scalar_multi(self, records, pairs,
                            threshold: float) -> List[Triple]:
        """Replicates :meth:`ChunkScorer._score_multi` semantics."""
        specs = self.specs
        caches = self._scalar_caches
        keyed = []
        pending: List[dict] = [{} for _ in specs]
        for query, reference_id in pairs:
            instance = self.get(reference_id)
            if instance is None:
                continue
            keys: List[Optional[Tuple[str, str]]] = []
            for index, spec in enumerate(specs):
                value_a = records[query].get(spec.attribute)
                value_b = instance.get(spec.range_attribute)
                if value_a is None or value_b is None:
                    keys.append(None)
                else:
                    key = (str(value_a), str(value_b))
                    keys.append(key)
                    if key not in caches[index] and key not in pending[index]:
                        pending[index][key] = None
            keyed.append((query, reference_id, keys))
        fresh = [self._score_pending(index, list(pending[index]))
                 for index in range(len(specs))]
        combine = self.combiner.combine
        out: List[Triple] = []
        for query, reference_id, keys in keyed:
            values: List[Optional[float]] = []
            for index, key in enumerate(keys):
                if key is None:
                    values.append(None)
                    continue
                score = fresh[index].get(key)
                if score is None:
                    score = caches[index][key]
                values.append(score)
            score = combine(values)
            if score is not None and score >= threshold and score > 0.0:
                out.append((query, reference_id, score))
        for index, chunk_fresh in enumerate(fresh):
            self._merge_cache(index, chunk_fresh)
        return out

    #: bound on each spec's scalar memo (entries, mirroring ChunkScorer)
    CACHE_LIMIT = 1 << 20

    def _score_pending(self, index: int, work: List[Tuple[str, str]]) -> dict:
        if not work:
            return {}
        scores = self.specs[index].similarity.score_batch(work)
        return dict(zip(work, scores))

    def _merge_cache(self, index: int, fresh: dict) -> None:
        if not fresh:
            return
        cache = self._scalar_caches[index]
        if len(cache) + len(fresh) > self.CACHE_LIMIT:
            cache.clear()
        if len(fresh) <= self.CACHE_LIMIT:
            cache.update(fresh)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IncrementalIndex({self.name!r}, {len(self)} live, "
                f"{len(self._buffer)} buffered, "
                f"{len(self._tombstones)} tombstoned)")
