"""Typed exception hierarchy for the serving tier.

The v1 API surfaces every failure as a JSON error envelope
``{"error": {"code": ..., "message": ...}}``; the exception classes
here carry the machine-readable ``code`` and the HTTP status the
front end maps them to, so programmatic callers, the HTTP handler and
:class:`repro.serve.client.Client` all speak the same vocabulary.

``InvalidRequest`` subclasses :class:`ValueError` so pre-v1 callers
that caught ``ValueError`` from constructor validation keep working.
"""

from __future__ import annotations


class ServeError(Exception):
    """Base class of all serving-tier errors.

    ``code`` is the stable machine-readable identifier used in the
    v1 JSON error envelope; ``http_status`` is the status the HTTP
    front end responds with.
    """

    code: str = "serve_error"
    http_status: int = 500

    def to_payload(self) -> dict[str, dict[str, str]]:
        """The v1 error envelope body for this error."""
        return {"error": {"code": self.code, "message": str(self)}}


class InvalidRequest(ServeError, ValueError):
    """A client-supplied request or configuration value is malformed."""

    code: str = "invalid_request"
    http_status: int = 400


class ConflictError(ServeError):
    """A mutation conflicts with live state (duplicate or missing id)."""

    code: str = "conflict"
    http_status: int = 409


class ShardUnavailable(ServeError):
    """A shard worker died, hung or returned a corrupt response."""

    code: str = "shard_unavailable"
    http_status: int = 503

    def __init__(self, shard: int, message: str) -> None:
        super().__init__(f"shard {shard}: {message}")
        self.shard = shard
        self.message = message

    def __reduce__(self) -> tuple[type, tuple[int, str]]:
        # Exception.__reduce__ would replay self.args (the single
        # formatted string) into the two-argument __init__ and make
        # unpickling raise TypeError — and this error crosses the
        # shard FrameChannel inside ("error", exc) frames
        return (type(self), (self.shard, self.message))


class SnapshotUnavailable(ServeError):
    """Snapshotting was requested on a service without a data dir."""

    code: str = "snapshot_unavailable"
    http_status: int = 409


def error_code_for(error: BaseException) -> tuple[int, str]:
    """Map an arbitrary exception to ``(http status, envelope code)``.

    :class:`ServeError` instances carry their own mapping; the
    mutation errors the index raises (``ValueError`` for duplicate
    ids, ``KeyError`` for missing ones) map to 409/conflict like the
    pre-v1 API did.
    """
    if isinstance(error, ServeError):
        return error.http_status, error.code
    if isinstance(error, (ValueError, KeyError)):
        return ConflictError.http_status, ConflictError.code
    return ServeError.http_status, ServeError.code
