"""One configuration object for the whole serving tier.

PR 5 grew its knobs organically: :class:`MatchService` took nine
keyword arguments, :class:`IncrementalIndex` another four, and the
CLI duplicated both lists.  :class:`ServeConfig` is the single place
those knobs live now — the service, the cluster router and ``repro
serve`` all build from one validated instance, and the old scattered
keyword arguments survive only as a deprecated compatibility layer
(:meth:`MatchService.__init__` converts them into a config and warns).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import List, Optional

from repro.engine.request import AttributeSpec
from repro.serve.errors import InvalidRequest


@dataclass
class ServeConfig:
    """Every tunable of the serving tier in one validated dataclass.

    Matching
        ``attribute`` / ``similarity`` configure the simple
        single-attribute case (``similarity`` is a registry name or a
        :class:`~repro.sim.base.SimilarityFunction` instance);
        ``specs`` + ``combiner`` override them for multi-attribute
        scoring; ``missing`` is the single-attribute missing-value
        policy; ``threshold`` filters correspondences and
        ``max_candidates`` bounds candidate generation (``None`` =
        exhaustive scoring, the engine-bit-identical mode).

    Service
        ``cache_size`` bounds the reuse cache; ``source_name`` and
        ``mapping_name`` name persisted same-mappings.

    Index
        ``compact_ratio`` / ``compact_min`` trigger compaction;
        ``pruning`` gates the impact-ordered candidate pruning
        (``"auto"`` engages it when posting skew warrants, ``"always"``
        forces it, ``"never"`` keeps the exhaustive ``bincount`` path
        — results are bit-identical either way, this is a pure
        performance knob).

    Cluster
        ``shards`` > 0 partitions the reference across that many shard
        workers behind a scatter-gather router (0 = classic in-heap
        single index); ``shard_processes`` runs each shard in its own
        worker process (``False`` keeps them in-process — same
        partitioned code paths, no parallelism); ``data_dir`` backs
        every shard with on-disk packed columns + a mutation WAL and
        enables ``snapshot()`` / restore (implies at least 1 shard).

    HTTP
        ``host`` / ``port`` for ``repro serve``.

    Observability
        ``metrics`` switches the whole subsystem on (registry +
        ``/v1/metrics``, tracing, structured logs — all pure
        observation, match results stay bit-identical);
        ``trace_sample_rate`` admits that fraction of requests to
        per-request tracing (deterministic accumulator, no
        randomness); ``slow_query_ms`` > 0 logs a ``slow_query``
        event for scoring batches slower than the threshold.
    """

    attribute: str = "title"
    # repro: allow-cfg001 -- resolved through the sim registry at build
    # time; an unknown name raises InvalidRequest there
    similarity: object = "trigram"
    # repro: allow-cfg002 -- programmatic multi-attribute surface (JSON
    # request specs); no single CLI flag can express it
    specs: Optional[List[AttributeSpec]] = None
    # repro: allow-cfg002 -- programmatic companion of specs
    combiner: object = None
    missing: str = "skip"
    threshold: float = 0.7
    max_candidates: Optional[int] = 50
    cache_size: int = 1024
    # repro: allow-config -- free-form label recorded on persisted
    # mappings; any string is valid and the CLI derives it from
    # --reference
    source_name: str = "query.Results"
    # repro: allow-cfg001 -- free-form repository key; any string (or
    # None = no persistence) is valid
    mapping_name: Optional[str] = None
    compact_ratio: float = 0.25
    compact_min: int = 64
    pruning: str = "auto"
    shards: int = 0
    # repro: allow-cfg002 -- in-process shards exist for tests and
    # embedding; the CLI always runs worker processes
    shard_processes: bool = True
    data_dir: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 8765
    metrics: bool = False
    trace_sample_rate: float = 0.0
    slow_query_ms: float = 0.0
    #: metadata, not a knob: set by validate() so downstream code can
    #: tell an explicit shards=0 from "data_dir implied one shard"
    _implied_shard: bool = field(default=False, repr=False, compare=False)

    def validate(self) -> "ServeConfig":
        """Return a validated (possibly adjusted) copy of this config.

        Raises :class:`InvalidRequest` (a ``ValueError``) on bad
        values.  ``data_dir`` without ``shards`` implies a one-shard
        cluster, since persistence lives in the partition stores.
        """
        if not self.attribute:
            raise InvalidRequest("attribute must be a non-empty string")
        if not self.host:
            raise InvalidRequest("host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise InvalidRequest(
                f"port must be in [0, 65535] (0 = ephemeral), "
                f"got {self.port!r}")
        if not 0.0 <= self.threshold <= 1.0:
            raise InvalidRequest(
                f"threshold must be in [0, 1], got {self.threshold!r}")
        if self.max_candidates is not None and self.max_candidates < 1:
            raise InvalidRequest("max_candidates must be >= 1 (or None "
                                 "for exhaustive scoring)")
        if self.cache_size < 0:
            raise InvalidRequest("cache_size must be >= 0")
        if self.missing not in ("skip", "zero"):
            raise InvalidRequest(
                f"missing must be 'skip' or 'zero', got {self.missing!r}")
        if self.compact_ratio <= 0:
            raise InvalidRequest("compact_ratio must be positive")
        if self.compact_min < 1:
            raise InvalidRequest("compact_min must be >= 1")
        if self.pruning not in ("auto", "always", "never"):
            raise InvalidRequest(
                f"pruning must be 'auto', 'always' or 'never', "
                f"got {self.pruning!r}")
        if self.shards < 0:
            raise InvalidRequest("shards must be >= 0")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise InvalidRequest(
                f"trace_sample_rate must be in [0, 1], "
                f"got {self.trace_sample_rate!r}")
        if self.slow_query_ms < 0:
            raise InvalidRequest("slow_query_ms must be >= 0 "
                                 "(0 disables the slow-query log)")
        if self.specs is not None and not self.specs:
            raise InvalidRequest("specs must be a non-empty list")
        if self.specs is not None and len(self.specs) > 1 \
                and self.combiner is None:
            raise InvalidRequest("multiple attribute specs require a "
                                 "combiner")
        config = self
        if config.data_dir is not None and config.shards == 0:
            config = replace(config, shards=1, _implied_shard=True)
        return config

    @property
    def clustered(self) -> bool:
        """Whether this config runs the partitioned serving tier."""
        return self.shards > 0

    def merged(self, **overrides: object) -> "ServeConfig":
        """A copy with the given non-``None`` fields replaced."""
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise InvalidRequest(f"unknown config fields: {sorted(unknown)}")
        changes = {key: value for key, value in overrides.items()
                   if value is not None}
        return replace(self, **changes) if changes else self
