"""Stdlib HTTP client for the v1 match service API.

Examples and tests talk to the service through this class instead of
hand-rolling ``urllib`` requests.  The client speaks exactly the v1
wire protocol of :mod:`repro.serve.http`: records as ``{"id",
"attributes"}`` objects, failures as the JSON error envelope, which
it converts back into the typed exceptions of
:mod:`repro.serve.errors` — so a caller sees the *same* exception
types whether it drives a :class:`~repro.serve.MatchService` in
process or over HTTP.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Iterable, List, Optional, Tuple

from repro.model.entity import ObjectInstance
from repro.serve.errors import (ConflictError, InvalidRequest, ServeError,
                                ShardUnavailable, SnapshotUnavailable)

#: envelope code → exception class raised by the client
_CODE_ERRORS = {
    "invalid_request": InvalidRequest,
    "conflict": ConflictError,
    "snapshot_unavailable": SnapshotUnavailable,
}


def _record_payload(record: ObjectInstance) -> dict:
    return {"id": record.id, "attributes": dict(record.attributes)}


class Client:
    """Minimal v1 API client (``urllib``-based, no dependencies).

    >>> client = Client("http://127.0.0.1:8765")
    >>> client.match([ObjectInstance("q1", {"title": "data fusion"})])
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _url(self, path: str) -> str:
        return f"{self.base_url}/v1/{path.lstrip('/')}"

    def _raise_envelope(self, status: int, raw: bytes) -> None:
        try:
            envelope = json.loads(raw)["error"]
            code, message = envelope["code"], envelope["message"]
        except (ValueError, KeyError, TypeError):
            code, message = "serve_error", raw.decode("utf-8", "replace")
        if code == "shard_unavailable":
            raise ShardUnavailable(-1, message)
        error_type = _CODE_ERRORS.get(code)
        if error_type is not None:
            raise error_type(message)
        error = ServeError(message)
        error.http_status = status
        error.code = code
        raise error

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> dict:
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self._url(path), data=data,
                                         headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            self._raise_envelope(error.code, error.read())

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "healthz")

    def stats(self) -> dict:
        return self._request("GET", "stats")

    def match(self, records: Iterable[ObjectInstance], *,
              source: Optional[str] = None) -> dict:
        """POST ``/v1/match``; returns the full response body."""
        body = {"records": [_record_payload(record) for record in records]}
        if source is not None:
            body["source"] = source
        return self._request("POST", "match", body)

    def match_record(self, record: ObjectInstance) \
            -> List[Tuple[str, float]]:
        """Match one record; ``[(reference id, score), ...]``."""
        response = self.match([record])
        return [(reference_id, score) for reference_id, score
                in response["matches"][record.id]]

    def ingest(self, records: Iterable[ObjectInstance]) -> Dict[str, int]:
        """POST ``/v1/ingest``; returns ``{"added", "updated"}``."""
        return self._request("POST", "ingest", {
            "records": [_record_payload(record) for record in records]})

    def delete(self, ids: Iterable[str]) -> Dict[str, List[str]]:
        """POST ``/v1/delete``; returns ``{"deleted", "missing"}``."""
        return self._request("POST", "delete", {"ids": list(ids)})

    def snapshot(self) -> dict:
        """POST ``/v1/snapshot``; returns the written manifest."""
        return self._request("POST", "snapshot", {})
