"""Partitioned scatter-gather serving tier.

:class:`ClusterIndex` presents the same surface
:class:`~repro.serve.MatchService` drives on a single
:class:`~repro.serve.index.IncrementalIndex`, but the reference lives
split across shard workers:

* the initial bulk load carves the reference into contiguous slot
  tiles (``PairGenerator.shards`` semantics via
  :func:`~repro.serve.partition.initial_partition`); later ingests
  route by a stable id hash;
* each shard worker holds a full ``IncrementalIndex`` over its slice
  — packed kernel columns, token postings, append buffer — and runs
  either in-process (``processes=False``) or as a forked worker
  process speaking a length-prefixed pickle frame protocol over a
  socket pair;
* queries scatter to every shard and gather through a deterministic
  merge that is **bit-identical** to the single index (see below);
  mutations route to the owning shard only;
* with a data dir, every shard persists packed base columns
  (memmapped back on restore) plus a mutation WAL, and
  :meth:`ClusterIndex.checkpoint` is an fsync-and-manifest write.

Bit-identity of the merge.  Candidate pruning in the single index
takes the top-k ids by (summed token weight desc, insertion order)
and scores only those.  The router reproduces this exactly:

* it maintains **global** document frequencies and hands every shard
  the same ``{token: 1/df}`` weight map, so a shard's weight sum for
  a record accumulates *the same float terms in the same sorted-token
  order* as the single index would — each live record lives in
  exactly one shard, so no term is split or duplicated;
* each shard returns its local top-k ranked by (weight desc, local
  slot asc) — computed through the index's impact-ordered pruned
  path when posting skew warrants (bit-identical to the exhaustive
  ranking by :mod:`repro.serve.index`'s contract); local slot order
  is monotone in the router's global insertion sequence (``gseq``),
  so merging shard rankings by (weight desc, gseq asc) and cutting
  to k yields exactly the single index's top-k — any candidate
  ranked out locally is outranked by k records that also outrank it
  globally;
* the cut fixes the global kth weight bound; a second ``score``
  round ships each shard only its own surviving ``(record, id)``
  pairs, and shards score them through their own packed kernels
  (bit-identical to the engine by the index's contract).  Scoring is
  elementwise per pair, so scoring the global survivors instead of
  every local top-k changes no float.

Corpus-*aware* similarities (TF/IDF) are the one relaxation: each
shard freezes document frequencies over its own slice, so scores
match the single index only for corpus-independent similarities (the
q-gram family, edit distances) — the same class of relaxation the
index already applies by freezing statistics between compactions.
"""

from __future__ import annotations

import io
import multiprocessing
import os
import pickle
import signal
import socket
import struct
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.request import AttributeSpec
from repro.model.entity import ObjectInstance
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.obs import trace as obs_trace
from repro.serve import partition as partition_layout
from repro.serve.errors import ShardUnavailable, SnapshotUnavailable
from repro.serve.index import IncrementalIndex
from repro.serve.wal import WriteAheadLog

Result = List[Tuple[str, float]]


# ----------------------------------------------------------------------
# frame protocol: length-prefixed pickles over a socket pair
# ----------------------------------------------------------------------

class FrameChannel:
    """Length-prefixed pickle frames over a connected socket."""

    _HEADER = struct.Struct(">I")

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock

    def send(self, message: object) -> None:
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        self._sock.sendall(self._HEADER.pack(len(payload)) + payload)

    def recv(self) -> object:
        header = self._recv_exact(self._HEADER.size)
        (length,) = self._HEADER.unpack(header)
        return pickle.loads(self._recv_exact(length))

    def _recv_exact(self, n: int) -> bytes:
        buffer = io.BytesIO()
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise EOFError("shard channel closed")
            buffer.write(chunk)
            remaining -= len(chunk)
        return buffer.getvalue()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - teardown best effort
            pass


# ----------------------------------------------------------------------
# shard backend: one IncrementalIndex slice + WAL + packed base store
# ----------------------------------------------------------------------

class ShardBackend:
    """One shard's state and operation handlers.

    Runs identically in-process or inside a worker process — the
    process mode merely moves :meth:`handle` behind a
    :class:`FrameChannel`.  The backend keeps, next to the index:

    * ``gseq`` — the router's global insertion sequence number per
      live id (the cross-shard ranking tie-break, persisted in base
      records and WAL entries);
    * ``_entries`` — mutations applied since the index's last
      compaction; exactly the WAL suffix a fresh base write must
      carry over;
    * ``_base_gseq`` — the gseq map as of the last compaction, i.e.
      the values the *base* records must persist with (later updates
      may have reassigned a live id's gseq).
    """

    def __init__(self, shard_id: int, index: IncrementalIndex,
                 gseq: Dict[str, int], *,
                 store=None, wal: Optional[WriteAheadLog] = None,
                 base_counters: Optional[dict] = None) -> None:
        self.shard_id = shard_id
        self.index = index
        self.gseq = gseq
        self.store = store
        self.wal = wal
        self._entries: List[dict] = []
        self._base_gseq: Dict[str, int] = dict(gseq)
        self._base_counters = base_counters or {"version": index.version,
                                                "compactions":
                                                    index.compactions}
        self._wal_total = 0
        self._compaction_fired = False
        index.on_compact(self._on_compact)

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, shard_id: int,
              records: Sequence[Tuple[ObjectInstance, int]],
              *, specs: List[AttributeSpec], combiner, missing: str,
              compact_ratio: float, compact_min: int,
              physical: PhysicalSource, object_type: ObjectType,
              data_dir: Optional[str] = None,
              pruning: str = "auto") -> "ShardBackend":
        """Build a fresh shard over ``(instance, gseq)`` records."""
        source = LogicalSource(physical, object_type)
        for instance, _ in records:
            source.add(instance)
        index = IncrementalIndex(source, specs=specs, combiner=combiner,
                                 missing=missing,
                                 compact_ratio=compact_ratio,
                                 compact_min=compact_min,
                                 pruning=pruning)
        gseq = {instance.id: g for instance, g in records}
        backend = cls(shard_id, index, gseq)
        if data_dir is not None:
            backend.store = partition_layout.PartitionStore(
                partition_layout.shard_dir(data_dir, shard_id))
            backend.wal = WriteAheadLog(
                partition_layout.wal_path(data_dir, shard_id))
            backend.write_base()
        return backend

    @classmethod
    def restore(cls, shard_id: int, data_dir: str, *,
                specs: List[AttributeSpec], combiner, missing: str,
                compact_ratio: float, compact_min: int,
                physical: PhysicalSource, object_type: ObjectType,
                wal_entries: int, pruning: str = "auto") -> "ShardBackend":
        """Restart warm: memmap the packed base, replay the WAL tail.

        Replays exactly ``wal_entries`` frames (the manifest's
        point-in-time count) through the normal mutation handlers and
        truncates anything after — re-applying mutations from the
        same base state re-triggers auto-compactions at the same
        points, so the restored index walks the identical state
        trajectory (same slots, counters, buffer contents).
        """
        store = partition_layout.PartitionStore(
            partition_layout.shard_dir(data_dir, shard_id))
        base_id = store.latest_base()
        if base_id is None:
            raise FileNotFoundError(
                f"shard {shard_id}: no packed base under {store.path}")
        records, column_states, counters = store.load_base(base_id)
        source = LogicalSource(physical, object_type)
        for instance, _ in records:
            source.add(instance)
        index = IncrementalIndex.from_snapshot(
            source, specs=specs, combiner=combiner, missing=missing,
            compact_ratio=compact_ratio, compact_min=compact_min,
            column_states=column_states,
            version=counters["version"],
            compactions=counters["compactions"],
            pruning=pruning)
        gseq = {instance.id: g for instance, g in records}
        wal = WriteAheadLog(partition_layout.wal_path(data_dir, shard_id))
        entries = wal.replay(wal_entries)
        if len(entries) < wal_entries:
            raise ValueError(
                f"shard {shard_id}: WAL holds {len(entries)} intact "
                f"frames, manifest expects {wal_entries}")
        wal.truncate_to(wal_entries)
        backend = cls(shard_id, index, gseq, store=store, wal=wal,
                      base_counters=counters)
        backend._wal_total = wal_entries
        for entry in entries:
            backend._replay(entry)
        return backend

    # -- mutation ------------------------------------------------------

    def _on_compact(self) -> None:
        # the new base absorbs everything applied so far, including
        # the mutation whose _maybe_compact triggered this
        self._compaction_fired = True
        self._entries = []
        self._base_gseq = dict(self.gseq)

    def _apply(self, entry: dict, operation: Callable[[], object],
               log: bool = True) -> object:
        """Run a mutation; track the compaction-relative WAL suffix.

        The WAL *file* always receives the entry (it holds every
        mutation since the on-disk base); ``_entries`` receives it
        only when no compaction fired, since a compaction folds all
        prior mutations into the in-memory base.  ``log=False`` is
        the replay path: frames are already on disk.
        """
        self._compaction_fired = False
        result = operation()
        if not self._compaction_fired:
            self._entries.append(entry)
        if log and self.wal is not None:
            self.wal.append(entry)
            self._wal_total += 1
        return result

    def add(self, instance: ObjectInstance, gseq: int,
            log: bool = True) -> dict:
        entry = {"op": "add", "id": instance.id,
                 "attributes": dict(instance.attributes), "gseq": gseq}
        self.gseq[instance.id] = gseq
        try:
            self._apply(entry, lambda: self.index.add(instance), log)
        except BaseException:
            self.gseq.pop(instance.id, None)
            raise
        return {"gseq": gseq, "old_value": None,
                "compacted": self._compaction_fired}

    def update(self, instance: ObjectInstance, gseq: int,
               log: bool = True) -> dict:
        old = self.index.get(instance.id)
        if old is None:
            raise KeyError(
                f"no instance {instance.id!r} in {self.index.name}")
        # updates always reslot to the end (see IncrementalIndex.update),
        # so the record takes the fresh global sequence number
        entry = {"op": "update", "id": instance.id,
                 "attributes": dict(instance.attributes), "gseq": gseq}
        previous = self.gseq[instance.id]
        self.gseq[instance.id] = gseq
        try:
            self._apply(entry, lambda: self.index.update(instance), log)
        except BaseException:
            self.gseq[instance.id] = previous
            raise
        attribute = self.index.specs[0].range_attribute
        return {"gseq": gseq, "old_value": old.get(attribute),
                "compacted": self._compaction_fired}

    def delete(self, id: str, log: bool = True) -> dict:
        old = self.index.get(id)
        if old is None:
            return {"removed": False, "old_value": None,
                    "compacted": False}
        entry = {"op": "delete", "id": id}
        previous = self.gseq.pop(id)
        try:
            self._apply(entry, lambda: self.index.delete(id), log)
        except BaseException:  # pragma: no cover - defensive
            self.gseq[id] = previous
            raise
        attribute = self.index.specs[0].range_attribute
        return {"removed": True, "old_value": old.get(attribute),
                "compacted": self._compaction_fired}

    def _replay(self, entry: dict) -> None:
        op = entry["op"]
        if op == "add":
            self.add(ObjectInstance(entry["id"], entry["attributes"]),
                     entry["gseq"], log=False)
        elif op == "update":
            self.update(ObjectInstance(entry["id"], entry["attributes"]),
                        entry["gseq"], log=False)
        elif op == "delete":
            self.delete(entry["id"], log=False)
        else:  # pragma: no cover - forward-compat guard
            raise ValueError(f"unknown WAL op {op!r}")

    # -- matching ------------------------------------------------------

    def match(self, records: Sequence[ObjectInstance],
              threshold: float) -> dict:
        """Exhaustive local scoring (the ``max_candidates=None`` mode)."""
        return {"results": self.index.match_records(
            records, threshold=threshold, max_candidates=None)}

    def candidates(self, records: Sequence[ObjectInstance],
                   max_candidates: int,
                   weights: Optional[Sequence[Optional[dict]]]) -> dict:
        """Round 1 of the pruned scatter: local candidate rankings.

        Returns, per record, the shard's top-k candidates as ``(id,
        gseq, weight)`` — ranked with the router's *global* weights,
        through the index's impact-ordered pruned path when skew
        warrants.  No scoring happens here: the router merges the
        shard rankings, cuts to the global top-k (establishing the
        global kth weight bound), and ships only the survivors back
        in a ``score`` round — exactly like the single index scores
        only its own top-k candidates.
        """
        attribute = self.index.specs[0].attribute
        candidates: List[List[Tuple[str, int, float]]] = []
        slot_ids = self.index._slot_ids
        for position, record in enumerate(records):
            value = record.get(attribute)
            weight_map = weights[position] if weights else None
            if value is None or not weight_map:
                candidates.append([])
                continue
            ranked = self.index.ranked_candidates(
                str(value), max_candidates, weights=weight_map)
            local: List[Tuple[str, int, float]] = []
            for slot, weight in ranked:
                id = slot_ids[slot]
                local.append((id, self.gseq[id], weight))
            candidates.append(local)
        return {"candidates": candidates}

    def score(self, records: Sequence[ObjectInstance],
              pairs: Sequence[Tuple[int, str]],
              threshold: float) -> dict:
        """Round 2: kernel scores for the globally surviving pairs.

        Every pair is local to this shard; scoring a subset of the
        local top-k is elementwise, so each survivor's float equals
        what the single-round protocol (and the single index) would
        produce.
        """
        return {"triples": self.index.score_pairs(
            records, list(pairs), threshold=threshold)}

    def _observed(self, name: str, trace: Optional[dict],
                  operation: Callable[[], dict]) -> dict:
        """Run a scoring handler; attach a span when the op is traced.

        The handler runs identically either way — timing is pure
        observation — and untraced responses carry no extra keys, so
        response frames stay byte-identical with tracing off.
        """
        start = time.time()
        begun = time.perf_counter()
        response = operation()
        if trace is not None:
            response["span"] = obs_trace.shard_span(
                trace, f"shard.{name}", self.shard_id, start,
                time.perf_counter() - begun)
        return response

    def metrics(self) -> dict:
        """Cumulative per-shard timing counters (registry pull)."""
        return {
            "shard": self.shard_id,
            "index": self.index.timing_counters(),
            "pruning": self.index.pruning_counters(),
            "wal": (self.wal.timing_counters()
                    if self.wal is not None else None),
        }

    # -- persistence ---------------------------------------------------

    def write_base(self) -> int:
        """Write the current in-memory base as a fresh packed base.

        The base is the index's *internal* base (the state of the
        last compaction); mutations applied since (``_entries``)
        become the new WAL content, so base + WAL always reconstruct
        the live state.
        """
        records = [(instance, self._base_gseq[instance.id])
                   for instance in self.index.base_instances()]
        counters = {"version": self.index.version - len(self._entries),
                    "compactions": self.index.compactions}
        base_id = self.store.write_base(records,
                                        self.index.export_columns(),
                                        counters)
        self.wal.reset()
        for entry in self._entries:
            self.wal.append(entry)
        self.wal.sync()
        self._wal_total = len(self._entries)
        self._base_counters = counters
        return base_id

    def checkpoint(self) -> dict:
        """Make the on-disk state a point-in-time image of now.

        Writes a fresh base only when a compaction changed the packed
        columns since the last base write; otherwise an fsync of the
        WAL suffices.  Returns what the manifest must record.
        """
        if self.store is None:
            raise SnapshotUnavailable(
                "shard has no data dir; configure data_dir to snapshot")
        if self.index.compactions != self._base_counters["compactions"]:
            self.write_base()
        else:
            self.wal.sync()
        return {"base": self.store.latest_base(),
                "wal_entries": self._wal_total}

    # -- dispatch ------------------------------------------------------

    def state(self) -> dict:
        """Router bootstrap payload: live ids + local token df."""
        return {"ids": sorted(self.gseq.items(),
                              key=lambda kv: (kv[1], kv[0])),
                "token_df": self.index.token_frequencies()}

    def records(self) -> List[Tuple[ObjectInstance, int]]:
        return [(self.index.get(id), self.gseq[id])
                for id in self.index.ids()]

    def handle(self, op: str, payload: dict):
        if op == "match":
            return self._observed(
                "match", payload.get("trace"),
                lambda: self.match(payload["records"],
                                   payload["threshold"]))
        if op == "candidates":
            return self._observed(
                "candidates", payload.get("trace"),
                lambda: self.candidates(payload["records"],
                                        payload["max_candidates"],
                                        payload.get("weights")))
        if op == "score":
            return self._observed(
                "score", payload.get("trace"),
                lambda: self.score(payload["records"], payload["pairs"],
                                   payload["threshold"]))
        if op == "mutate":
            kind = payload["kind"]
            if kind == "add":
                return self.add(payload["instance"], payload["gseq"])
            if kind == "update":
                return self.update(payload["instance"], payload["gseq"])
            return self.delete(payload["id"])
        if op == "get":
            return self.index.get(payload["id"])
        if op == "stats":
            return self.index.stats()
        if op == "state":
            return self.state()
        if op == "records":
            return self.records()
        if op == "compact":
            self.index.compact()
            return None
        if op == "checkpoint":
            return self.checkpoint()
        if op == "metrics":
            return self.metrics()
        raise ValueError(f"unknown shard op {op!r}")

    def close(self) -> None:
        if self.wal is not None:
            self.wal.sync()
            self.wal.close()


# ----------------------------------------------------------------------
# shard transports
# ----------------------------------------------------------------------

def _shard_worker(sock: socket.socket, mode: str, kwargs: dict) -> None:
    """Worker process entry: build/restore a backend, serve the loop."""
    # A terminal Ctrl-C signals the whole foreground process group;
    # shutdown is the router's job (explicit op or channel EOF), so the
    # worker must not die mid-frame with a KeyboardInterrupt traceback.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    channel = FrameChannel(sock)
    try:
        if mode == "build":
            backend = ShardBackend.build(**kwargs)
        else:
            backend = ShardBackend.restore(**kwargs)
        channel.send(("ok", len(backend.index)))
    except BaseException as error:  # surface the build failure
        channel.send(("error", error))
        return
    while True:
        try:
            op, payload = channel.recv()
        except EOFError:
            break
        if op == "shutdown":
            try:
                backend.close()
            finally:
                channel.send(("ok", None))
            break
        try:
            channel.send(("ok", backend.handle(op, payload)))
        except Exception as error:
            channel.send(("error", error))


class LocalShard:
    """In-process shard transport — same code paths, no parallelism."""

    def __init__(self, shard_id: int, mode: str, kwargs: dict) -> None:
        self.shard_id = shard_id
        if mode == "build":
            self.backend = ShardBackend.build(**kwargs)
        else:
            self.backend = ShardBackend.restore(**kwargs)
        self._pending = None

    def call(self, op: str, payload: dict):
        return self.backend.handle(op, payload)

    def send(self, op: str, payload: dict) -> None:
        try:
            self._pending = ("ok", self.call(op, payload))
        except Exception as error:
            self._pending = ("error", error)

    def receive(self):
        status, result = self._pending
        self._pending = None
        if status == "error":
            raise result
        return result

    def close(self) -> None:
        self.backend.close()


class ProcessShard:
    """Forked worker process behind a :class:`FrameChannel`."""

    def __init__(self, shard_id: int, mode: str, kwargs: dict,
                 context) -> None:
        self.shard_id = shard_id
        parent, child = socket.socketpair()
        self.process = context.Process(
            target=_shard_worker, args=(child, mode, kwargs), daemon=True)
        self.process.start()
        child.close()
        self.channel = FrameChannel(parent)
        status, result = self._receive_raw()
        if status == "error":
            raise result

    def _receive_raw(self):
        try:
            return self.channel.recv()
        except (OSError, EOFError) as error:
            raise ShardUnavailable(self.shard_id, str(error)) from error

    def send(self, op: str, payload: dict) -> None:
        try:
            self.channel.send((op, payload))
        except (OSError, BrokenPipeError) as error:
            raise ShardUnavailable(self.shard_id, str(error)) from error

    def receive(self):
        status, result = self._receive_raw()
        if status == "error":
            raise result
        return result

    def call(self, op: str, payload: dict):
        self.send(op, payload)
        return self.receive()

    def close(self) -> None:
        try:
            self.call("shutdown", {})
        except ShardUnavailable:  # pragma: no cover - already gone
            pass
        self.channel.close()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=1.0)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods() \
        and hasattr(os, "fork")


# ----------------------------------------------------------------------
# the router
# ----------------------------------------------------------------------

class ClusterIndex:
    """Scatter-gather router over shard workers.

    Drop-in for :class:`~repro.serve.index.IncrementalIndex` as far
    as :class:`~repro.serve.MatchService` is concerned: same
    mutation / lookup / ``match_records`` / ``stats`` surface, plus
    :meth:`checkpoint` (persist a point-in-time image) and
    :meth:`close`.  Construct via :meth:`build` or :meth:`restore`.
    """

    _tokens = staticmethod(IncrementalIndex._tokens)

    def __init__(self, shards: List[object], *,
                 specs: List[AttributeSpec], combiner, missing: str,
                 physical: PhysicalSource, object_type: ObjectType,
                 data_dir: Optional[str], seq: int) -> None:
        self._shards = shards
        self.specs = list(specs)
        self.combiner = combiner
        self.missing = missing
        self._physical = physical
        self._object_type = object_type
        self.name = f"{physical.name}.{object_type.name}"
        self.data_dir = data_dir
        self._seq = seq
        self._id_shard: Dict[str, int] = {}
        self._id_gseq: Dict[str, int] = {}
        self._token_df: Dict[str, int] = {}
        self._compaction_listeners: List[Callable[[], None]] = []
        #: repro.obs registry for per-shard round latencies (optional)
        self._metrics = None
        for shard_id, shard in enumerate(self._shards):
            state = shard.call("state", {})
            for id, gseq in state["ids"]:
                self._id_shard[id] = shard_id
                self._id_gseq[id] = gseq
            for token, count in state["token_df"].items():
                self._token_df[token] = self._token_df.get(token, 0) + count

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, reference: LogicalSource, *,
              specs: List[AttributeSpec], combiner=None,
              missing: str = "skip", compact_ratio: float = 0.25,
              compact_min: int = 64, shards: int = 1,
              processes: bool = True,
              data_dir: Optional[str] = None,
              pruning: str = "auto") -> "ClusterIndex":
        """Partition ``reference`` across ``shards`` fresh workers."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        instances = list(reference)
        spans = partition_layout.initial_partition(len(instances), shards)
        while len(spans) < shards:
            spans.append((len(instances), len(instances)))
        numbered = list(enumerate(instances))
        shard_kwargs = dict(specs=list(specs), combiner=combiner,
                            missing=missing, compact_ratio=compact_ratio,
                            compact_min=compact_min,
                            physical=reference.physical,
                            object_type=reference.object_type,
                            data_dir=data_dir, pruning=pruning)
        if data_dir is not None:
            os.makedirs(data_dir, exist_ok=True)
            partition_layout.write_specs(data_dir, dict(
                shard_kwargs, data_dir=None, shards=shards))
        transports = cls._spawn(
            [("build", dict(shard_kwargs, shard_id=shard_id,
                            records=[(instance, gseq) for gseq, instance
                                     in numbered[start:end]]))
             for shard_id, (start, end) in enumerate(spans)],
            processes)
        cluster = cls(transports, specs=specs, combiner=combiner,
                      missing=missing, physical=reference.physical,
                      object_type=reference.object_type,
                      data_dir=data_dir, seq=len(instances))
        if data_dir is not None:
            cluster.checkpoint()
        return cluster

    @classmethod
    def restore(cls, data_dir: str, *,
                processes: bool = True,
                pruning: Optional[str] = None) -> "ClusterIndex":
        """Restart every shard warm from ``data_dir``'s manifest.

        ``pruning=None`` keeps the snapshot's persisted mode (older
        snapshots without one restore as ``"auto"``); passing a mode
        overrides it — pruning is a pure performance knob, so the
        runtime config always wins over the persisted value.
        """
        manifest = partition_layout.read_manifest(data_dir)
        if manifest is None:
            raise FileNotFoundError(f"no cluster manifest in {data_dir}")
        payload = partition_layout.read_specs(data_dir)
        shard_kwargs = dict(specs=payload["specs"],
                            combiner=payload["combiner"],
                            missing=payload["missing"],
                            compact_ratio=payload["compact_ratio"],
                            compact_min=payload["compact_min"],
                            physical=payload["physical"],
                            object_type=payload["object_type"],
                            pruning=pruning if pruning is not None
                            else payload.get("pruning", "auto"))
        transports = cls._spawn(
            [("restore", dict(shard_kwargs, shard_id=shard_id,
                              data_dir=data_dir,
                              wal_entries=entry["wal_entries"]))
             for shard_id, entry in enumerate(manifest["shards"])],
            processes)
        return cls(transports, specs=payload["specs"],
                   combiner=payload["combiner"],
                   missing=payload["missing"],
                   physical=payload["physical"],
                   object_type=payload["object_type"],
                   data_dir=data_dir, seq=manifest["seq"])

    @staticmethod
    def _spawn(plans: List[Tuple[str, dict]],
               processes: bool) -> List[object]:
        if processes and _fork_available():
            context = multiprocessing.get_context("fork")
            return [ProcessShard(plan[1]["shard_id"], plan[0], plan[1],
                                 context)
                    for plan in plans]
        return [LocalShard(plan[1]["shard_id"], plan[0], plan[1])
                for plan in plans]

    # -- document frequencies ------------------------------------------

    def _df_add(self, value: object) -> None:
        for token in self._tokens(value):
            self._token_df[token] = self._token_df.get(token, 0) + 1

    def _df_remove(self, value: object) -> None:
        for token in self._tokens(value):
            count = self._token_df.get(token, 0) - 1
            if count > 0:
                self._token_df[token] = count
            else:
                self._token_df.pop(token, None)

    def _weight_map(self, value: object) -> Optional[dict]:
        weights = {}
        for token in self._tokens(value):
            df = self._token_df.get(token)
            if df:
                weights[token] = 1.0 / df
        return weights or None

    # -- mutation ------------------------------------------------------

    def _after_mutation(self, response: dict) -> None:
        if response.get("compacted"):
            for listener in self._compaction_listeners:
                listener()

    def add(self, instance: ObjectInstance) -> None:
        """Add a reference record (ValueError on a live duplicate id)."""
        if instance.id in self._id_shard:
            raise ValueError(
                f"duplicate instance id {instance.id!r} in {self.name}")
        shard_id = partition_layout.shard_for_id(instance.id,
                                                 len(self._shards))
        gseq = self._seq
        self._seq += 1
        response = self._shards[shard_id].call(
            "mutate", {"kind": "add", "instance": instance, "gseq": gseq})
        self._id_shard[instance.id] = shard_id
        self._id_gseq[instance.id] = gseq
        self._df_add(instance.get(self.specs[0].range_attribute))
        self._after_mutation(response)

    def update(self, instance: ObjectInstance) -> None:
        """Replace a live record (KeyError when the id is not live)."""
        shard_id = self._id_shard.get(instance.id)
        if shard_id is None:
            raise KeyError(f"no instance {instance.id!r} in {self.name}")
        gseq = self._seq
        self._seq += 1
        response = self._shards[shard_id].call(
            "mutate",
            {"kind": "update", "instance": instance, "gseq": gseq})
        self._id_gseq[instance.id] = response["gseq"]
        self._df_remove(response["old_value"])
        self._df_add(instance.get(self.specs[0].range_attribute))
        self._after_mutation(response)

    def delete(self, id: str) -> bool:
        """Remove a live record; returns whether it existed."""
        shard_id = self._id_shard.get(id)
        if shard_id is None:
            return False
        response = self._shards[shard_id].call(
            "mutate", {"kind": "delete", "id": id})
        if response["removed"]:
            del self._id_shard[id]
            del self._id_gseq[id]
            self._df_remove(response["old_value"])
        self._after_mutation(response)
        return response["removed"]

    # -- lookup --------------------------------------------------------

    def get(self, id: str) -> Optional[ObjectInstance]:
        shard_id = self._id_shard.get(id)
        if shard_id is None:
            return None
        return self._shards[shard_id].call("get", {"id": id})

    def __contains__(self, id: str) -> bool:
        return id in self._id_shard

    def __len__(self) -> int:
        return len(self._id_shard)

    def ids(self) -> List[str]:
        """Live ids in global insertion order (the single index's)."""
        return sorted(self._id_gseq, key=self._id_gseq.get)

    def instances(self) -> List[ObjectInstance]:
        by_gseq = []
        for shard in self._shards:
            by_gseq.extend(shard.call("records", {}))
        by_gseq.sort(key=lambda pair: pair[1])
        return [instance for instance, _ in by_gseq]

    def snapshot(self) -> LogicalSource:
        """The live records as a plain :class:`LogicalSource`."""
        source = LogicalSource(self._physical, self._object_type)
        for instance in self.instances():
            source.add(instance)
        return source

    # -- observability -------------------------------------------------

    def set_metrics(self, registry) -> None:
        """Attach a :class:`repro.obs.MetricsRegistry` for round
        latencies; ``None`` (the default) keeps matching unobserved."""
        self._metrics = registry

    def _observe_round(self, round_name: str, shard_id: int,
                       seconds: float) -> None:
        if self._metrics is None:
            return
        self._metrics.histogram(
            "repro_cluster_round_seconds",
            "Per-shard scatter-gather round latency (scatter start to "
            "shard response).",
            labels={"round": round_name, "shard": shard_id},
        ).observe(seconds)

    def shard_metrics(self) -> List[dict]:
        """Per-shard timing counters (the registry's collector pull).

        Callers must hold whatever lock serializes matching on this
        cluster — :class:`FrameChannel` transports are not
        thread-safe.
        """
        for shard in self._shards:
            shard.send("metrics", {})
        return [shard.receive() for shard in self._shards]

    # -- matching ------------------------------------------------------

    def match_records(self, records: Sequence[ObjectInstance], *,
                      threshold: float,
                      max_candidates: Optional[int] = 50) \
            -> List[Result]:
        """Scatter a micro-batch to every shard, gather + merge top-k.

        Pruned mode runs two scatter rounds: a ``candidates`` round
        collecting per-shard rankings, then — after the router merges
        them and cuts to the global top-k, which fixes the global kth
        weight bound — a ``score`` round shipping each shard only its
        own surviving pairs.  Shards that rank no survivor skip round
        two entirely.  See the module docstring for why the merge is
        bit-identical to the single index on corpus-independent
        similarities.
        """
        records = list(records)
        attribute = self.specs[0].attribute
        results: List[Result] = []
        trace = obs_trace.current_trace()
        if max_candidates is None:
            with obs_trace.span("cluster.match"):
                wire = trace.wire_context() if trace is not None else None
                payload = {"records": records, "threshold": threshold,
                           "trace": wire}
                begun = time.perf_counter()
                for shard in self._shards:
                    shard.send("match", payload)
                responses = self._gather("match", begun, trace)
            for position in range(len(records)):
                merged: Result = []
                for response in responses:
                    merged.extend(response["results"][position])
                merged.sort(key=lambda item: (-item[1], item[0]))
                results.append(merged)
            return results
        weights = [self._weight_map(str(record.get(attribute)))
                   if record.get(attribute) is not None else None
                   for record in records]
        with obs_trace.span("cluster.candidates"):
            wire = trace.wire_context() if trace is not None else None
            payload = {"records": records,
                       "max_candidates": max_candidates,
                       "weights": weights, "trace": wire}
            begun = time.perf_counter()
            for shard in self._shards:
                shard.send("candidates", payload)
            responses = self._gather("candidates", begun, trace)
        shard_pairs: List[List[Tuple[int, str]]] = [
            [] for _ in self._shards]
        for position in range(len(records)):
            ranked: List[Tuple[float, int, str, int]] = []
            for shard_id, response in enumerate(responses):
                for id, gseq, weight in response["candidates"][position]:
                    ranked.append((-weight, gseq, id, shard_id))
            ranked.sort()
            for _, _, id, shard_id in ranked[:max_candidates]:
                shard_pairs[shard_id].append((position, id))
        active = [shard_id for shard_id, pairs in enumerate(shard_pairs)
                  if pairs]
        results = [[] for _ in records]
        with obs_trace.span("cluster.score"):
            wire = trace.wire_context() if trace is not None else None
            begun = time.perf_counter()
            for shard_id in active:
                self._shards[shard_id].send(
                    "score", {"records": records,
                              "pairs": shard_pairs[shard_id],
                              "threshold": threshold, "trace": wire})
            for response in self._gather("score", begun, trace,
                                         shard_ids=active):
                for position, reference_id, score in response["triples"]:
                    results[position].append((reference_id, score))
        for matched in results:
            matched.sort(key=lambda item: (-item[1], item[0]))
        return results

    def _gather(self, round_name: str, begun: float,
                trace: Optional[obs_trace.TraceContext],
                shard_ids: Optional[Sequence[int]] = None) -> List[dict]:
        """Collect one scatter round's responses in shard order.

        Observes each shard's elapsed time since the scatter began and
        folds shard-returned spans into the active trace; both are
        pure observation — responses come back in the same
        deterministic shard order as before.
        """
        if shard_ids is None:
            shard_ids = range(len(self._shards))
        responses = []
        for shard_id in shard_ids:
            response = self._shards[shard_id].receive()
            self._observe_round(round_name, shard_id,
                                time.perf_counter() - begun)
            if trace is not None:
                trace.add_span(response.get("span"))
            responses.append(response)
        return responses

    # -- maintenance ---------------------------------------------------

    def on_compact(self, listener: Callable[[], None]) -> None:
        self._compaction_listeners.append(listener)

    def compact(self) -> None:
        """Force every shard to rebuild its packed base."""
        for shard in self._shards:
            shard.send("compact", {})
        for shard in self._shards:
            shard.receive()
        for listener in self._compaction_listeners:
            listener()

    def stats(self) -> dict:
        """Aggregated cluster stats plus per-shard index stats."""
        shard_stats = []
        for shard in self._shards:
            shard.send("stats", {})
        for shard in self._shards:
            shard_stats.append(shard.receive())
        totals = {key: sum(stats[key] for stats in shard_stats)
                  for key in ("records", "base", "buffer", "tombstones",
                              "version", "compactions",
                              "vectorized_columns")}
        totals["pruning"] = {
            key: sum(stats["pruning"][key] for stats in shard_stats)
            for key in ("queries", "pruned_queries", "postings_touched",
                        "postings_skipped", "membership_probes",
                        "prefilter_skipped")}
        totals["tokens"] = len(self._token_df)
        totals["shards"] = len(self._shards)
        totals["shard_stats"] = shard_stats
        return totals

    @property
    def compactions(self) -> int:
        return self.stats()["compactions"]

    @property
    def version(self) -> int:
        return self.stats()["version"]

    # -- persistence ---------------------------------------------------

    def checkpoint(self) -> dict:
        """Persist a point-in-time image: shard bases/WALs + manifest."""
        if self.data_dir is None:
            raise SnapshotUnavailable(
                "cluster has no data dir; configure data_dir to snapshot")
        entries = []
        for shard in self._shards:
            shard.send("checkpoint", {})
        for shard in self._shards:
            entries.append(shard.receive())
        manifest = {"seq": self._seq, "shards": entries,
                    "source": self.name}
        partition_layout.write_manifest(self.data_dir, manifest)
        return manifest

    def close(self) -> None:
        """Shut down every shard transport (workers exit)."""
        for shard in self._shards:
            shard.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ClusterIndex({self.name!r}, {len(self)} records, "
                f"{len(self._shards)} shards)")
