"""Length-prefixed mutation write-ahead log for shard partitions.

Each shard of the partitioned serving tier persists its packed base
columns rarely (initial build and snapshot-after-compaction) and logs
every mutation in between to an append-only WAL.  A cold worker then
restarts warm: memory-map the packed base, replay the WAL tail.

This extends the repository's WAL precedent
(:class:`~repro.model.repository.MappingRepository` runs SQLite in
WAL mode) down to the serving tier's own file format:

* one frame per mutation: a 4-byte big-endian payload length, a
  4-byte CRC32 of the payload, then the UTF-8 JSON payload;
* appends are buffered; :meth:`sync` flushes and ``fsync``\\ s — the
  cluster's ``snapshot()`` is exactly "sync every shard WAL, then
  write the manifest", so a snapshot is cheap and crash-consistent;
* reads tolerate a torn tail: a truncated or checksum-failing frame
  ends the replay (everything before it is intact by construction),
  so a crash mid-append never poisons a restart.

The manifest records how many frames each snapshot covers; restore
replays exactly that many and truncates the rest, which is what makes
a snapshot a *point-in-time* image rather than "whatever survived".
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from typing import Dict, Iterator, List, Optional, Tuple

_HEADER = struct.Struct(">II")  # payload length, CRC32


class WriteAheadLog:
    """Append-only frame log at ``path`` (created on first append)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None
        #: frames written through this object (not the on-disk total)
        self.appended = 0
        #: observability counters (repro.obs pulls these at scrape
        #: time; they observe durability work, they never gate it)
        self.sync_count = 0
        self.sync_seconds = 0.0
        self.replay_count = 0
        self.replay_seconds = 0.0
        self.replayed_entries = 0

    # -- writing -------------------------------------------------------

    def _open(self):
        if self._handle is None:
            self._handle = open(self.path, "ab")  # repro: allow-unpicklable -- a WAL lives inside one shard worker; handles never cross the channel
        return self._handle

    def append(self, entry: dict) -> None:
        """Append one mutation entry (buffered; see :meth:`sync`)."""
        payload = json.dumps(entry, separators=(",", ":")).encode("utf-8")
        handle = self._open()
        handle.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
        handle.write(payload)
        self.appended += 1

    def sync(self) -> None:
        """Flush buffered frames and ``fsync`` the log to disk."""
        if self._handle is not None:
            start = time.perf_counter()
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self.sync_seconds += time.perf_counter() - start
            self.sync_count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def reset(self) -> None:
        """Truncate the log to empty (after a fresh base write)."""
        self.close()
        with open(self.path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self.appended = 0

    # -- reading -------------------------------------------------------

    def replay(self, limit: Optional[int] = None) -> List[dict]:
        """Read up to ``limit`` entries (all by default).

        Stops cleanly at a torn tail: an incomplete header, a
        truncated payload or a CRC mismatch ends the scan without
        raising — frames are written append-only, so everything before
        the tear is intact.
        """
        start = time.perf_counter()
        entries: List[dict] = []
        for entry, _ in self._frames(limit):
            entries.append(entry)
        self.replay_seconds += time.perf_counter() - start
        self.replay_count += 1
        self.replayed_entries += len(entries)
        return entries

    def timing_counters(self) -> Dict[str, float]:
        """Cumulative durability timings for the metrics registry."""
        return {
            "appends": self.appended,
            "syncs": self.sync_count,
            "sync_seconds": self.sync_seconds,
            "replays": self.replay_count,
            "replay_seconds": self.replay_seconds,
            "replayed_entries": self.replayed_entries,
        }

    def entry_count(self) -> int:
        """Number of intact frames currently on disk."""
        return sum(1 for _ in self._frames(None))

    def truncate_to(self, count: int) -> None:
        """Drop every frame after the first ``count`` (restore path)."""
        offset = 0
        kept = 0
        for _, end in self._frames(count):
            offset = end
            kept += 1
        self.close()
        if not os.path.exists(self.path):
            if count > 0:  # pragma: no cover - defensive
                raise ValueError(f"WAL {self.path} has no frames to keep")
            return
        with open(self.path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())
        if kept < count:
            raise ValueError(
                f"WAL {self.path} holds only {kept} intact frames, "
                f"snapshot manifest expects {count}")

    def _frames(self, limit: Optional[int]) -> Iterator[Tuple[dict, int]]:
        """Yield ``(entry, end offset)`` for intact frames."""
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            offset = 0
            produced = 0
            while limit is None or produced < limit:
                header = handle.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    return
                length, checksum = _HEADER.unpack(header)
                payload = handle.read(length)
                if len(payload) < length or zlib.crc32(payload) != checksum:
                    return
                try:
                    entry = json.loads(payload)
                except ValueError:  # pragma: no cover - crc makes this rare
                    return
                offset += _HEADER.size + length
                produced += 1
                yield entry, offset
