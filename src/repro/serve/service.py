"""The standing match service: MOMA's online use case as a subsystem.

The paper targets "small-sized online matching (e.g. during query
processing in virtual data integration scenarios)" (§2.1) and builds
its whole architecture around *reusing* materialized mappings (§2.2).
:class:`MatchService` is that combination as a long-lived object:

* queries — single records or batches — are matched against an
  :class:`~repro.serve.index.IncrementalIndex`, whose packed kernel
  state scores each micro-batch in one vectorized call instead of the
  old per-pair ``similarity()`` loop;
* concurrent :meth:`match_record` callers (e.g. the HTTP threads in
  :mod:`repro.serve.http`) are **micro-batched**: while one thread
  drives a kernel call, arriving requests queue up and the next free
  thread scores them all together — batch aggregation instead of
  per-request scoring;
* results are reused MOMA-style: a bounded LRU keyed by the query's
  attribute values answers repeats without rescoring, and when a
  :class:`~repro.model.repository.MappingRepository` is attached every
  freshly scored correspondence is appended to a named same-mapping;
* reference mutations invalidate exactly the affected cache entries:
  a record can only enter or leave a query's candidate set when it
  shares a word token with it, so the token-keyed reverse map drops
  precisely those queries (exhaustive mode and compactions, which
  refresh corpus statistics, clear the whole cache).
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.concurrency import requires_lock
from repro.core.mapping import Mapping, MappingKind
from repro.model.entity import ObjectInstance
from repro.model.repository import MappingRepository
from repro.model.source import LogicalSource
from repro.obs import trace as obs_trace
from repro.obs.log import StructuredLogger, get_logger
from repro.obs.registry import DEFAULT_SIZE_BUCKETS, MetricsRegistry
from repro.serve.cluster import ClusterIndex
from repro.serve.config import ServeConfig
from repro.serve.errors import InvalidRequest, SnapshotUnavailable
from repro.serve.index import IncrementalIndex, resolve_specs

Result = List[Tuple[str, float]]

#: sentinel distinguishing "not passed" from any real value in the
#: deprecated keyword-argument compatibility layer
_UNSET = object()


class _PendingRequest:
    __slots__ = ("record", "event", "result", "error")

    def __init__(self, record: ObjectInstance) -> None:
        self.record = record
        self.event = threading.Event()  # repro: allow-unpicklable -- pending requests are in-process only and never cross a FrameChannel
        self.result: Optional[Result] = None
        self.error: Optional[BaseException] = None


class MatchService:
    """Match incoming records against a mutable, indexed reference.

    Construct from a reference source (plus the single-attribute
    ``attribute`` / ``similarity`` configuration the old
    :class:`~repro.core.online.OnlineMatcher` used, or ``specs`` +
    ``combiner`` for multi-attribute scoring), or inject a prebuilt
    ``index``.  ``max_candidates=None`` disables candidate pruning —
    every query scores against the full reference, which is the
    configuration whose results are bit-identical to the offline
    engine's cross-product run on the same snapshot.
    """

    def __init__(self, reference: Optional[LogicalSource] = None,
                 attribute: object = _UNSET,
                 similarity: object = _UNSET, *,
                 config: Optional[ServeConfig] = None,
                 index: Optional[IncrementalIndex] = None,
                 specs=_UNSET, combiner=_UNSET, missing=_UNSET,
                 threshold=_UNSET,
                 max_candidates=_UNSET,
                 cache_size=_UNSET,
                 repository: Optional[MappingRepository] = None,
                 mapping_name=_UNSET,
                 source_name=_UNSET,
                 compact_ratio=_UNSET,
                 compact_min=_UNSET) -> None:
        legacy = {name: value for name, value in (
            ("attribute", attribute), ("similarity", similarity),
            ("specs", specs), ("combiner", combiner),
            ("missing", missing), ("threshold", threshold),
            ("max_candidates", max_candidates),
            ("cache_size", cache_size), ("mapping_name", mapping_name),
            ("source_name", source_name),
            ("compact_ratio", compact_ratio),
            ("compact_min", compact_min),
        ) if value is not _UNSET}
        if legacy:
            if config is not None:
                raise InvalidRequest(
                    "pass config= or individual keyword arguments, "
                    f"not both (got {sorted(legacy)})")
            warnings.warn(
                "MatchService's scattered keyword arguments are "
                "deprecated; build a repro.serve.ServeConfig and pass "
                "config= instead", DeprecationWarning, stacklevel=2)
            config = ServeConfig(**legacy)
        elif config is None:
            config = ServeConfig()
        config = config.validate()
        if repository is not None and not config.mapping_name:
            raise InvalidRequest(
                "repository persistence needs a mapping_name")
        if index is None:
            index = self._build_index(reference, config)
        self.config = config
        self.index = index
        self.threshold = config.threshold
        self.max_candidates = config.max_candidates
        self.source_name = config.source_name
        self.repository = repository
        self.mapping_name = config.mapping_name

        #: serializes index access (scoring and mutation)
        self._lock = threading.RLock()  # repro: allow-unpicklable -- the service is a process-local front end; shards get records, not the service
        self._queue_lock = threading.Lock()  # repro: allow-unpicklable -- process-local, see _lock
        self._queue: List[_PendingRequest] = []
        self._cache_lock = threading.Lock()  # repro: allow-unpicklable -- process-local, see _lock
        self._cache: "OrderedDict[tuple, Result]" = OrderedDict()
        self._cache_size = config.cache_size
        self._cache_tokens: Dict[str, Set[tuple]] = {}
        self._key_tokens: Dict[tuple, frozenset] = {}
        self.hits = 0
        self.misses = 0
        self.queries = 0
        self.batches = 0
        self.batched_records = 0
        self.max_batch = 0
        self.persisted = 0
        #: observability (None = off; every hot-path hook no-ops)
        self.metrics: Optional[MetricsRegistry] = None
        self.tracer: Optional[obs_trace.Tracer] = None
        self.logger: Optional[StructuredLogger] = None
        if config.metrics:
            self._init_observability()
        self.index.on_compact(self._clear_cache)
        if self.repository is not None:
            # materialize the mapping header so incremental appends of
            # raw triples always have a home
            header = Mapping(self.source_name, self.index.name,
                             kind=MappingKind.SAME)
            self.repository.append(self.mapping_name, header)

    @staticmethod
    def _build_index(reference: Optional[LogicalSource],
                     config: ServeConfig):
        """Pick the backend the config describes.

        ``shards > 0`` (or a data dir) builds the partitioned
        :class:`~repro.serve.cluster.ClusterIndex`; with a data dir
        and *no* reference, the cluster restores warm from its last
        checkpoint instead of building fresh.
        """
        if config.clustered:
            if reference is None:
                if config.data_dir is None:
                    raise InvalidRequest(
                        "pass a reference source or an index")
                return ClusterIndex.restore(
                    config.data_dir, processes=config.shard_processes,
                    pruning=config.pruning)
            return ClusterIndex.build(
                reference,
                specs=resolve_specs(config.attribute, config.similarity,
                                    config.specs),
                combiner=config.combiner, missing=config.missing,
                compact_ratio=config.compact_ratio,
                compact_min=config.compact_min, shards=config.shards,
                processes=config.shard_processes,
                data_dir=config.data_dir, pruning=config.pruning)
        if reference is None:
            raise InvalidRequest("pass a reference source or an index")
        return IncrementalIndex(reference, config.attribute,
                                config.similarity, specs=config.specs,
                                combiner=config.combiner,
                                missing=config.missing,
                                compact_ratio=config.compact_ratio,
                                compact_min=config.compact_min,
                                pruning=config.pruning)

    # -- observability -------------------------------------------------

    def _init_observability(self) -> None:
        """Build the registry/tracer/logger and register collectors.

        Everything here *observes*: collectors pull the existing
        counters at scrape time, histograms record durations the hot
        path already spends — no instrument feeds back into scoring,
        so results are bit-identical with metrics on or off.
        """
        registry = MetricsRegistry()
        self.metrics = registry
        self.tracer = obs_trace.Tracer(
            sample_rate=self.config.trace_sample_rate)
        self.logger = get_logger("repro.serve")
        self._batch_sizes = registry.histogram(
            "repro_service_batch_size",
            "Micro-batch sizes (records per kernel call).",
            buckets=DEFAULT_SIZE_BUCKETS)
        self._match_seconds = registry.histogram(
            "repro_service_match_seconds",
            "Service-side scoring latency per micro-batch (seconds).")
        set_metrics = getattr(self.index, "set_metrics", None)
        if set_metrics is not None:
            set_metrics(registry)
        registry.register_collector(self._collect_service_metrics)
        registry.register_collector(self._collect_index_metrics)

    def _collect_service_metrics(self) -> None:
        """Sync the service's own counters into the registry."""
        registry = self.metrics
        for name, help, value in (
            ("repro_service_queries_total",
             "Match queries served (records).", self.queries),
            ("repro_service_cache_hits_total",
             "Queries answered from the reuse cache.", self.hits),
            ("repro_service_cache_misses_total",
             "Queries that needed kernel scoring.", self.misses),
            ("repro_service_batches_total",
             "Micro-batches driven through the kernel.", self.batches),
            ("repro_service_batched_records_total",
             "Records scored inside micro-batches.",
             self.batched_records),
            ("repro_service_persisted_total",
             "Correspondences appended to the repository.",
             self.persisted),
        ):
            registry.counter(name, help).set_total(value)
        registry.gauge("repro_service_cache_entries",
                       "Entries in the reuse cache.").set(len(self._cache))
        registry.gauge("repro_service_reference_records",
                       "Live reference records.").set(len(self.index))
        registry.gauge("repro_service_max_batch",
                       "Largest micro-batch so far.").set(self.max_batch)

    def _collect_index_metrics(self) -> None:
        """Pull pruning / timing / WAL counters from the backend.

        Takes the service lock: cluster backends answer over
        FrameChannels, which are not thread-safe, so the pull must
        not overlap a scoring scatter.
        """
        with self._lock:
            shard_metrics = getattr(self.index, "shard_metrics", None)
            if shard_metrics is None:
                self._sync_backend_counters(
                    self.index.pruning_counters(),
                    self.index.timing_counters(), None, labels=None)
                return
            for entry in shard_metrics():
                self._sync_backend_counters(
                    entry["pruning"], entry["index"], entry["wal"],
                    labels={"shard": entry["shard"]})

    def _sync_backend_counters(self, pruning: dict, timings: dict,
                               wal: Optional[dict],
                               labels: Optional[dict]) -> None:
        registry = self.metrics
        for key, value in sorted(pruning.items()):
            registry.counter(
                f"repro_index_pruning_{key}_total",
                "Candidate-pruning counter (see docs/serving.md).",
                labels=labels).set_total(value)
        registry.counter(
            "repro_index_match_calls_total",
            "match_records invocations on the index.",
            labels=labels).set_total(timings["match_calls"])
        registry.counter(
            "repro_index_match_seconds_total",
            "Cumulative seconds inside index scoring calls.",
            labels=labels).set_total(timings["match_seconds"])
        if wal is None:
            return
        for key, value in sorted(wal.items()):
            registry.counter(
                f"repro_wal_{key}_total",
                "Write-ahead-log durability counter.",
                labels=labels).set_total(value)

    def _observe_batch(self, size: int, elapsed: float) -> None:
        """Record one scored micro-batch (no-op with metrics off)."""
        if self.metrics is not None:
            self._batch_sizes.observe(size)
            self._match_seconds.observe(elapsed)
        if (self.logger is not None and self.config.slow_query_ms > 0
                and elapsed * 1000.0 >= self.config.slow_query_ms):
            trace = obs_trace.current_trace()
            self.logger.warning(
                "slow_query", batch=size,
                elapsed_ms=round(elapsed * 1000.0, 3),
                threshold_ms=self.config.slow_query_ms,
                trace_id=None if trace is None else trace.trace_id)

    # -- persistence ---------------------------------------------------

    def snapshot(self) -> dict:
        """Persist a point-in-time image of the reference (cluster
        backends with a data dir only); returns the written manifest."""
        checkpoint = getattr(self.index, "checkpoint", None)
        if checkpoint is None:
            raise SnapshotUnavailable(
                "snapshotting needs a clustered backend with a data "
                "dir (ServeConfig.data_dir)")
        with self._lock:
            return checkpoint()

    def close(self) -> None:
        """Release backend resources (cluster shard workers, WALs)."""
        close = getattr(self.index, "close", None)
        if close is not None:
            close()

    # -- cache ---------------------------------------------------------

    @property
    def _primary_attribute(self) -> str:
        return self.index.specs[0].attribute

    def _cache_key(self, record: ObjectInstance) -> Optional[tuple]:
        values = tuple(
            None if record.get(spec.attribute) is None
            else str(record.get(spec.attribute))
            for spec in self.index.specs
        )
        if values[0] is None:
            return None
        return values

    @requires_lock("_cache_lock")
    def _cache_get(self, key: tuple) -> Optional[Result]:
        cached = self._cache.get(key)
        if cached is None:
            return None
        self._cache.move_to_end(key)
        return cached

    @requires_lock("_cache_lock")
    def _cache_put(self, key: tuple, result: Result) -> None:
        if self._cache_size == 0:
            return
        if key not in self._cache:
            tokens = frozenset(self.index._tokens(key[0]))
            self._key_tokens[key] = tokens
            for token in tokens:  # repro: allow-unordered -- reverse-index bookkeeping; per-token set inserts commute
                self._cache_tokens.setdefault(token, set()).add(key)
        self._cache[key] = result
        self._cache.move_to_end(key)
        while len(self._cache) > self._cache_size:
            evicted, _ = self._cache.popitem(last=False)
            self._drop_key_tokens(evicted)

    @requires_lock("_cache_lock")
    def _drop_key_tokens(self, key: tuple) -> None:
        for token in self._key_tokens.pop(key, ()):
            keys = self._cache_tokens.get(token)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._cache_tokens[token]

    def _clear_cache(self) -> None:
        with self._cache_lock:
            self._cache.clear()
            self._cache_tokens.clear()
            self._key_tokens.clear()

    def _invalidate(self, *values: object) -> None:
        """Drop cache entries a mutation of ``values`` could affect.

        With candidate pruning, a reference record only influences
        queries sharing a word token with its (old or new) match
        attribute value; without pruning every query is exposed.
        """
        if self.max_candidates is None:
            self._clear_cache()
            return
        tokens: Set[str] = set()
        for value in values:
            tokens.update(self.index._tokens(value))
        if not tokens:
            return
        with self._cache_lock:
            stale: Set[tuple] = set()
            for token in tokens:  # repro: allow-unordered -- set-union accumulation commutes
                stale.update(self._cache_tokens.get(token, ()))
            for key in stale:  # repro: allow-unordered -- each stale key is dropped independently; eviction order is unobservable
                self._cache.pop(key, None)
                self._drop_key_tokens(key)

    # -- mutation ------------------------------------------------------

    def add(self, instance: ObjectInstance) -> None:
        """Add a reference record (ValueError on a live duplicate id)."""
        attribute = self.index.specs[0].range_attribute
        with self._lock:
            self.index.add(instance)
            self._invalidate(instance.get(attribute))

    def update(self, instance: ObjectInstance) -> None:
        """Replace a live reference record (KeyError when absent)."""
        attribute = self.index.specs[0].range_attribute
        with self._lock:
            old = self.index.get(instance.id)
            old_value = None if old is None else old.get(attribute)
            self.index.update(instance)
            self._invalidate(old_value, instance.get(attribute))

    def delete(self, id: str) -> bool:
        """Remove a live reference record; returns whether it existed."""
        attribute = self.index.specs[0].range_attribute
        with self._lock:
            old = self.index.get(id)
            removed = self.index.delete(id)
            if removed:
                self._invalidate(old.get(attribute))
            return removed

    def ingest(self, records: Iterable[ObjectInstance]) -> dict:
        """Upsert a batch of reference records; returns counts."""
        added = updated = 0
        for record in records:
            with self._lock:
                if record.id in self.index:
                    self.update(record)
                    updated += 1
                else:
                    self.add(record)
                    added += 1
        return {"added": added, "updated": updated}

    # -- matching ------------------------------------------------------

    def match_record(self, record: ObjectInstance) -> Result:
        """Match one record; ``[(reference id, similarity), ...]``
        sorted by descending similarity.

        Concurrent callers are micro-batched: requests arriving while
        another thread drives the kernel are scored together in the
        next call.
        """
        key = self._cache_key(record)
        if key is None:
            self.queries += 1
            return []
        with self._cache_lock:
            cached = self._cache_get(key)
        if cached is not None:
            self.hits += 1
            self.queries += 1
            return list(cached)
        request = _PendingRequest(record)
        with self._queue_lock:
            self._queue.append(request)
        while not request.event.is_set():
            if not self._lock.acquire(timeout=0.01):
                request.event.wait(0.01)
                continue
            try:
                if request.event.is_set():
                    break
                with self._queue_lock:
                    batch, self._queue = self._queue, []
                if batch:
                    # _lock is held via the timed acquire() above; the
                    # interprocedural lock analysis (LCK002) tracks the
                    # acquire()/release() span, so no suppression needed
                    self._run_batch(batch)
            finally:
                self._lock.release()
        if request.error is not None:
            raise request.error
        return list(request.result)

    @requires_lock("_lock")
    def _run_batch(self, batch: List[_PendingRequest]) -> None:
        """Score queued requests in one kernel call.

        Every request's event is set no matter what fails — a batch
        drained from the queue is never re-queued, so an unwoken
        follower would spin in :meth:`match_record` forever.
        """
        try:
            records = [request.record for request in batch]
            begun = time.perf_counter()
            with obs_trace.span("service.batch"):
                results = self._score_records(records)
            self._observe_batch(len(batch), time.perf_counter() - begun)
            self.batches += 1
            self.batched_records += len(batch)
            self.max_batch = max(self.max_batch, len(batch))
            triples = []
            with self._cache_lock:
                for request, result in zip(batch, results):
                    key = self._cache_key(request.record)
                    if key is not None:
                        self._cache_put(key, result)
                    self.misses += 1
                    self.queries += 1
                    for reference_id, score in result:
                        triples.append(
                            (request.record.id, reference_id, score))
            self._persist(triples)
            for request, result in zip(batch, results):
                request.result = result
        except BaseException as error:  # propagate to every waiter
            for request in batch:
                if request.result is None:
                    request.error = error
            raise
        finally:
            for request in batch:
                request.event.set()

    def match_batch(self, records: Iterable[ObjectInstance], *,
                    source_name: Optional[str] = None) -> Mapping:
        """Match a batch of records into a same-mapping.

        Cache misses are scored in one kernel call; hits are served
        from the reuse cache.
        """
        records = list(records)
        domain = source_name if source_name else self.source_name
        mapping = Mapping(domain, self.index.name, kind=MappingKind.SAME)
        misses: List[Tuple[int, ObjectInstance]] = []
        results: List[Optional[Result]] = [None] * len(records)
        for position, record in enumerate(records):
            key = self._cache_key(record)
            self.queries += 1
            if key is None:
                results[position] = []
                continue
            with self._cache_lock:
                cached = self._cache_get(key)
            if cached is not None:
                self.hits += 1
                results[position] = list(cached)
            else:
                self.misses += 1
                misses.append((position, record))
        if misses:
            with self._lock:
                begun = time.perf_counter()
                with obs_trace.span("service.batch"):
                    fresh = self._score_records(
                        [record for _, record in misses])
                self._observe_batch(len(misses),
                                    time.perf_counter() - begun)
                self.batches += 1
                self.batched_records += len(misses)
                self.max_batch = max(self.max_batch, len(misses))
                triples = []
                with self._cache_lock:
                    for (position, record), result in zip(misses, fresh):
                        results[position] = result
                        key = self._cache_key(record)
                        if key is not None:
                            self._cache_put(key, result)
                        for reference_id, score in result:
                            triples.append((record.id, reference_id, score))
                self._persist(triples)
        for record, result in zip(records, results):
            for reference_id, score in result:
                mapping.add(record.id, reference_id, score)
        return mapping

    @requires_lock("_lock")
    def _score_records(self, records: Sequence[ObjectInstance]) \
            -> List[Result]:
        """Score records in one index batch."""
        return self.index.match_records(records, threshold=self.threshold,
                                        max_candidates=self.max_candidates)

    def _persist(self, triples: List[Tuple[str, str, float]]) -> None:
        if self.repository is None or not triples:
            return
        self.repository.append(self.mapping_name, triples)
        self.persisted += len(triples)

    # -- introspection -------------------------------------------------

    def cache_stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._cache)}

    def stats(self) -> dict:
        stats = {
            "records": len(self.index),
            "queries": self.queries,
            "batches": self.batches,
            "batched_records": self.batched_records,
            "max_batch": self.max_batch,
            "persisted": self.persisted,
            "threshold": self.threshold,
            "max_candidates": self.max_candidates,
            "cache": self.cache_stats(),
            "index": self.index.stats(),
        }
        if self.tracer is not None:
            stats["trace"] = self.tracer.summary()
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MatchService({self.index.name!r}, "
                f"{len(self.index)} reference records, "
                f"threshold={self.threshold})")


def match_query_results(results: Iterable[ObjectInstance],
                        reference: LogicalSource,
                        attribute: str = "title",
                        *, threshold: float = 0.7,
                        source_name: Optional[str] = None) -> Mapping:
    """One-shot online matching of query results against a reference.

    Builds a transient :class:`MatchService`; for repeated batches
    against the same reference, construct the service once instead.
    """
    service = MatchService(reference, config=ServeConfig(
        attribute=attribute, threshold=threshold))
    return service.match_batch(results, source_name=source_name)
