"""JSON-over-HTTP front end for :class:`~repro.serve.service.MatchService`.

Stdlib only (``http.server``), threaded so concurrent clients exercise
the service's micro-batcher.  Endpoints:

========  ======  ====================================================
path      method  body / response
========  ======  ====================================================
/match    POST    ``{"records": [{"id": ..., "attributes": {...}}],``
                  ``"source": optional}`` → per-record matches plus
                  the flat correspondence triples
/ingest   POST    ``{"records": [...]}`` → ``{"added", "updated"}``
/delete   POST    ``{"ids": [...]}`` → ``{"deleted", "missing"}``
/stats    GET     full service statistics
/healthz  GET     liveness probe with the live record count
========  ======  ====================================================

Records travel as ``{"id": str, "attributes": {name: value}}``;
a single record may be passed as ``{"record": {...}}``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Tuple

from repro.model.entity import ObjectInstance
from repro.serve.service import MatchService


class ServiceError(ValueError):
    """A client error with an HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _parse_record(payload: object) -> ObjectInstance:
    if not isinstance(payload, dict):
        raise ServiceError(400, "record must be an object")
    id = payload.get("id")
    if not isinstance(id, str) or not id:
        raise ServiceError(400, "record needs a non-empty string 'id'")
    attributes = payload.get("attributes", {})
    if not isinstance(attributes, dict):
        raise ServiceError(400, "'attributes' must be an object")
    return ObjectInstance(id, attributes)


def _parse_records(body: dict) -> List[ObjectInstance]:
    if "record" in body:
        return [_parse_record(body["record"])]
    records = body.get("records")
    if not isinstance(records, list) or not records:
        raise ServiceError(400, "body needs 'records' (non-empty list) "
                                "or 'record'")
    return [_parse_record(entry) for entry in records]


class MatchServiceHandler(BaseHTTPRequestHandler):
    """One request handler class per server (see :func:`build_server`)."""

    service: MatchService = None  # injected by build_server
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        """Silence the default stderr chatter (tests and CLI both)."""

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError(400, "empty request body")
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ServiceError(400, f"invalid JSON: {error}") from error
        if not isinstance(body, dict):
            raise ServiceError(400, "request body must be a JSON object")
        return body

    # -- endpoints -----------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.service
        if self.path == "/healthz":
            self._respond(200, {"status": "ok",
                                "records": len(service.index)})
        elif self.path == "/stats":
            self._respond(200, service.stats())
        else:
            self._respond(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/match":
                self._respond(200, self._handle_match(self._read_body()))
            elif self.path == "/ingest":
                self._respond(200, self._handle_ingest(self._read_body()))
            elif self.path == "/delete":
                self._respond(200, self._handle_delete(self._read_body()))
            else:
                self._respond(404, {"error": f"unknown path {self.path!r}"})
        except ServiceError as error:
            self._respond(error.status, {"error": str(error)})
        except (ValueError, KeyError) as error:
            self._respond(409, {"error": str(error)})

    def _handle_match(self, body: dict) -> dict:
        records = _parse_records(body)
        source = body.get("source")
        if source is not None and not isinstance(source, str):
            raise ServiceError(400, "'source' must be a string")
        mapping = self.service.match_batch(records, source_name=source)
        matches = {
            record.id: [
                [reference_id, score] for reference_id, score
                in sorted(mapping.range_ids_of(record.id).items(),
                          key=lambda item: (-item[1], item[0]))
            ]
            for record in records
        }
        return {
            "domain": mapping.domain,
            "range": mapping.range,
            "matches": matches,
            "correspondences": mapping.to_rows(),
        }

    def _handle_ingest(self, body: dict) -> dict:
        return self.service.ingest(_parse_records(body))

    def _handle_delete(self, body: dict) -> dict:
        ids = body.get("ids")
        if ids is None and isinstance(body.get("id"), str):
            ids = [body["id"]]
        if not isinstance(ids, list) or not ids \
                or not all(isinstance(id, str) for id in ids):
            raise ServiceError(400, "body needs 'ids' (list of strings)")
        deleted, missing = [], []
        for id in ids:
            (deleted if self.service.delete(id) else missing).append(id)
        return {"deleted": deleted, "missing": missing}


def build_server(service: MatchService, host: str = "127.0.0.1",
                 port: int = 8765) -> ThreadingHTTPServer:
    """Build a threaded HTTP server bound to ``host:port`` (0 = ephemeral)."""

    class _Handler(MatchServiceHandler):
        pass

    _Handler.service = service
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    return server


def serve(service: MatchService, host: str = "127.0.0.1",
          port: int = 8765,
          ready: Optional[callable] = None) -> Tuple[str, int]:
    """Serve until interrupted; returns the bound address afterwards.

    ``ready`` (if given) is called with the server once it is bound —
    the CLI uses it to print the address before blocking.
    """
    server = build_server(service, host, port)
    address = server.server_address[:2]
    if ready is not None:
        ready(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return address
