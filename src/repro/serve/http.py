"""Versioned JSON-over-HTTP front end for the match service.

Stdlib only (``http.server``), threaded so concurrent clients exercise
the service's micro-batcher.  All endpoints live under ``/v1/``:

============  ======  ================================================
path          method  body / response
============  ======  ================================================
/v1/match     POST    ``{"records": [{"id": ..., "attributes":
                      {...}}], "source": optional}`` → per-record
                      matches plus the flat correspondence triples
/v1/ingest    POST    ``{"records": [...]}`` → ``{"added",
                      "updated"}``
/v1/delete    POST    ``{"ids": [...]}`` → ``{"deleted", "missing"}``
/v1/snapshot  POST    persist a point-in-time image (clustered
                      backends with a data dir) → the manifest
/v1/stats     GET     full service statistics
/v1/healthz   GET     liveness probe with the live record count
/v1/metrics   GET     Prometheus text exposition (404 when the
                      service runs with ``metrics=False``)
============  ======  ================================================

Every response carries an ``X-Request-Id`` header — the client's own
header echoed back, or a server-minted id — and error envelopes
repeat it as ``error.request_id``.  With ``ServeConfig(metrics=True)``
the id doubles as the trace id for request tracing.

Records travel as ``{"id": str, "attributes": {name: value}}``; a
single record may be passed as ``{"record": {...}}``.

Every failure returns the v1 error envelope
``{"error": {"code": ..., "message": ...}}``; status and code come
from :func:`repro.serve.errors.error_code_for`, so the typed
exception hierarchy (:class:`~repro.serve.errors.InvalidRequest`,
:class:`~repro.serve.errors.ShardUnavailable`, ...) maps onto the
wire the same way everywhere.  The unversioned pre-v1 paths
(``/match``, ``/stats``, ...) answer ``301 Moved Permanently`` with a
``Location`` header pointing at their ``/v1/`` successor for one
release.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator, List, Optional, Tuple

from repro.model.entity import ObjectInstance
from repro.obs import trace as obs_trace
from repro.serve.errors import InvalidRequest, error_code_for
from repro.serve.service import MatchService

API_PREFIX = "/v1"

#: pre-v1 paths that 301 to their versioned successor for one release
_LEGACY_PATHS = {"/match", "/ingest", "/delete", "/stats", "/healthz"}

#: endpoints that may label metrics (bounds label cardinality)
_KNOWN_PATHS = {f"{API_PREFIX}/{name}" for name in
                ("match", "ingest", "delete", "snapshot", "stats",
                 "healthz", "metrics")}

#: deterministic request-id mint (no randomness; unique per process)
_request_ids = itertools.count(1)


def _parse_record(payload: object) -> ObjectInstance:
    if not isinstance(payload, dict):
        raise InvalidRequest("record must be an object")
    id = payload.get("id")
    if not isinstance(id, str) or not id:
        raise InvalidRequest("record needs a non-empty string 'id'")
    attributes = payload.get("attributes", {})
    if not isinstance(attributes, dict):
        raise InvalidRequest("'attributes' must be an object")
    return ObjectInstance(id, attributes)


def _parse_records(body: dict) -> List[ObjectInstance]:
    if "record" in body:
        return [_parse_record(body["record"])]
    records = body.get("records")
    if not isinstance(records, list) or not records:
        raise InvalidRequest("body needs 'records' (non-empty list) "
                             "or 'record'")
    return [_parse_record(entry) for entry in records]


class MatchServiceHandler(BaseHTTPRequestHandler):
    """One request handler class per server (see :func:`build_server`)."""

    service: MatchService = None  # injected by build_server
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        """Route access lines through the structured logger.

        Silent when observability is off (the pre-obs behaviour tests
        rely on); either way the stdlib's raw stderr chatter is gone.
        """
        logger = getattr(self.service, "logger", None)
        if logger is not None:
            logger.info("http_access", client=self.client_address[0],
                        request_id=getattr(self, "request_id", None),
                        line=format % args)

    def _begin_request(self) -> None:
        """Adopt the client's ``X-Request-Id`` or mint one.

        The id doubles as the trace id and is echoed on every
        response, so a client can correlate its call with server-side
        logs, traces and error envelopes.
        """
        supplied = self.headers.get("X-Request-Id")
        self.request_id = supplied or f"req-{next(_request_ids)}"

    @contextlib.contextmanager
    def _observed_request(self) -> Iterator[None]:
        """Trace + time one request (no-op when observability is off)."""
        tracer = getattr(self.service, "tracer", None)
        metrics = getattr(self.service, "metrics", None)
        if tracer is None and metrics is None:
            yield
            return
        context = tracer.begin(self.request_id) if tracer else None
        begun = time.perf_counter()
        try:
            with obs_trace.activate(context):
                with obs_trace.span(f"http.{self.command.lower()}"):
                    yield
        finally:
            elapsed = time.perf_counter() - begun
            if tracer is not None:
                tracer.finish(context)
            if metrics is not None:
                path = self.path if self.path in _KNOWN_PATHS else "other"
                metrics.counter(
                    "repro_http_requests_total",
                    "HTTP requests by endpoint and method.",
                    labels={"path": path, "method": self.command}).inc()
                metrics.histogram(
                    "repro_http_request_seconds",
                    "HTTP request latency by endpoint (seconds).",
                    labels={"path": path, "method": self.command},
                ).observe(elapsed)

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "request_id", None)
        if request_id:
            self.send_header("X-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(body)

    def _respond_error(self, error: BaseException) -> None:
        status, code = error_code_for(error)
        message = str(error)
        if isinstance(error, KeyError) and message.startswith("'"):
            # KeyError reprs its argument; unwrap for the envelope
            message = message.strip("'")
        envelope = {"code": code, "message": message}
        request_id = getattr(self, "request_id", None)
        if request_id:
            envelope["request_id"] = request_id
        self._respond(status, {"error": envelope})

    def _respond_metrics(self) -> None:
        """Serve the Prometheus text exposition (``/v1/metrics``)."""
        metrics = getattr(self.service, "metrics", None)
        if metrics is None:
            self._respond(404, {"error": {
                "code": "not_found",
                "message": "metrics disabled; start the service with "
                           "ServeConfig(metrics=True)",
                "request_id": getattr(self, "request_id", None)}})
            return
        body = metrics.render().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "request_id", None)
        if request_id:
            self.send_header("X-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(body)

    def _redirect_legacy(self, path: str) -> None:
        target = API_PREFIX + path
        body = json.dumps({"error": {
            "code": "moved_permanently",
            "message": f"unversioned paths moved; use {target}"}}) \
            .encode("utf-8")
        self.send_response(301)
        self.send_header("Location", target)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise InvalidRequest("empty request body")
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise InvalidRequest(f"invalid JSON: {error}") from error
        if not isinstance(body, dict):
            raise InvalidRequest("request body must be a JSON object")
        return body

    def _not_found(self) -> None:
        self._respond(404, {"error": {
            "code": "not_found",
            "message": f"unknown path {self.path!r}"}})

    # -- endpoints -----------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._begin_request()
        if self.path in _LEGACY_PATHS:
            self._redirect_legacy(self.path)
            return
        with self._observed_request():
            try:
                if self.path == f"{API_PREFIX}/healthz":
                    self._respond(
                        200, {"status": "ok",
                              "records": len(self.service.index)})
                elif self.path == f"{API_PREFIX}/stats":
                    self._respond(200, self.service.stats())
                elif self.path == f"{API_PREFIX}/metrics":
                    self._respond_metrics()
                else:
                    self._not_found()
            except Exception as error:  # envelope every failure
                self._respond_error(error)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._begin_request()
        if self.path in _LEGACY_PATHS:
            self._redirect_legacy(self.path)
            return
        with self._observed_request():
            try:
                if self.path == f"{API_PREFIX}/match":
                    self._respond(200,
                                  self._handle_match(self._read_body()))
                elif self.path == f"{API_PREFIX}/ingest":
                    self._respond(200,
                                  self._handle_ingest(self._read_body()))
                elif self.path == f"{API_PREFIX}/delete":
                    self._respond(200,
                                  self._handle_delete(self._read_body()))
                elif self.path == f"{API_PREFIX}/snapshot":
                    self._respond(200, self.service.snapshot())
                else:
                    self._not_found()
            except Exception as error:
                self._respond_error(error)

    def _handle_match(self, body: dict) -> dict:
        records = _parse_records(body)
        source = body.get("source")
        if source is not None and not isinstance(source, str):
            raise InvalidRequest("'source' must be a string")
        mapping = self.service.match_batch(records, source_name=source)
        matches = {
            record.id: [
                [reference_id, score] for reference_id, score
                in sorted(mapping.range_ids_of(record.id).items(),
                          key=lambda item: (-item[1], item[0]))
            ]
            for record in records
        }
        return {
            "domain": mapping.domain,
            "range": mapping.range,
            "matches": matches,
            "correspondences": mapping.to_rows(),
        }

    def _handle_ingest(self, body: dict) -> dict:
        return self.service.ingest(_parse_records(body))

    def _handle_delete(self, body: dict) -> dict:
        ids = body.get("ids")
        if ids is None and isinstance(body.get("id"), str):
            ids = [body["id"]]
        if not isinstance(ids, list) or not ids \
                or not all(isinstance(id, str) for id in ids):
            raise InvalidRequest("body needs 'ids' (list of strings)")
        deleted, missing = [], []
        for id in ids:
            (deleted if self.service.delete(id) else missing).append(id)
        return {"deleted": deleted, "missing": missing}


def build_server(service: MatchService, host: str = "127.0.0.1",
                 port: int = 8765) -> ThreadingHTTPServer:
    """Build a threaded HTTP server bound to ``host:port`` (0 = ephemeral)."""

    class _Handler(MatchServiceHandler):
        pass

    _Handler.service = service
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    return server


def serve(service: MatchService, host: str = "127.0.0.1",
          port: int = 8765,
          ready: Optional[callable] = None) -> Tuple[str, int]:
    """Serve until interrupted; returns the bound address afterwards.

    ``ready`` (if given) is called with the server once it is bound —
    the CLI uses it to print the address before blocking.
    """
    server = build_server(service, host, port)
    address = server.server_address[:2]
    if ready is not None:
        ready(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return address
