"""The serving subsystem: query-time matching as a standing service.

PRs 1–4 built an offline batch engine — chunked streaming, vectorized
kernels, sharded multi-process execution.  This package turns that
machinery into the paper's *other* use case, "small-sized online
matching (e.g. during query processing in virtual data integration
scenarios)" (§2.1), as a long-lived service:

* :class:`~repro.serve.index.IncrementalIndex` — a mutable reference
  source whose packed kernel state (q-gram bitmaps, CSR TF/IDF,
  composed multi-attribute columns) persists across queries; adds,
  updates and deletes cost O(record) via an append buffer and
  tombstones, with threshold-triggered compaction rebuilding the
  packed base and refreshing corpus statistics;
* :class:`~repro.serve.cluster.ClusterIndex` — the same surface
  partitioned across shard workers (one process per shard) behind a
  scatter-gather router whose top-k merge is bit-identical to the
  single index; with a data dir every shard persists memmapped packed
  columns plus a mutation WAL, so snapshots are fsync-and-manifest
  writes and restarts are warm;
* :class:`~repro.serve.service.MatchService` — micro-batches
  concurrent match requests into single kernel calls, reuses results
  through a mutation-aware cache and persists same-mappings through
  the :class:`~repro.model.repository.MappingRepository`; configured
  by one :class:`~repro.serve.config.ServeConfig`;
* :mod:`repro.serve.http` + :class:`~repro.serve.client.Client` — the
  versioned v1 JSON API (``/v1/match``, ``/v1/ingest``,
  ``/v1/delete``, ``/v1/stats``, ``/v1/snapshot``, ``/v1/healthz``)
  with a typed error envelope (:mod:`repro.serve.errors`), exposed as
  the ``repro serve`` CLI subcommand.

See ``docs/serving.md`` for architecture, cluster topology,
snapshot/restore semantics and the v1 API reference.
"""

from repro.serve.client import Client
from repro.serve.cluster import ClusterIndex
from repro.serve.config import ServeConfig
from repro.serve.errors import (ConflictError, InvalidRequest, ServeError,
                                ShardUnavailable, SnapshotUnavailable)
from repro.serve.index import IncrementalIndex
from repro.serve.service import MatchService, match_query_results

__all__ = [
    "Client",
    "ClusterIndex",
    "ConflictError",
    "IncrementalIndex",
    "InvalidRequest",
    "MatchService",
    "ServeConfig",
    "ServeError",
    "ShardUnavailable",
    "SnapshotUnavailable",
    "match_query_results",
]
