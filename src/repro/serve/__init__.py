"""The serving subsystem: query-time matching as a standing service.

PRs 1–4 built an offline batch engine — chunked streaming, vectorized
kernels, sharded multi-process execution.  This package turns that
machinery into the paper's *other* use case, "small-sized online
matching (e.g. during query processing in virtual data integration
scenarios)" (§2.1), as a long-lived service:

* :class:`~repro.serve.index.IncrementalIndex` — a mutable reference
  source whose packed kernel state (q-gram bitmaps, CSR TF/IDF,
  composed multi-attribute columns) persists across queries; adds,
  updates and deletes cost O(record) via an append buffer and
  tombstones, with threshold-triggered compaction rebuilding the
  packed base and refreshing corpus statistics;
* :class:`~repro.serve.service.MatchService` — micro-batches
  concurrent match requests into single kernel calls, reuses results
  through a mutation-aware cache and persists same-mappings through
  the :class:`~repro.model.repository.MappingRepository`;
* :mod:`repro.serve.http` — a stdlib ``ThreadingHTTPServer`` JSON API
  (``/match``, ``/ingest``, ``/delete``, ``/stats``, ``/healthz``),
  exposed as the ``repro serve`` CLI subcommand.

See ``docs/serving.md`` for architecture, mutation/compaction
semantics and the reuse guarantees.
"""

from repro.serve.index import IncrementalIndex
from repro.serve.service import MatchService, match_query_results

__all__ = [
    "IncrementalIndex",
    "MatchService",
    "match_query_results",
]
