"""On-disk shard partitions for the clustered serving tier.

The cluster splits the reference across shards two ways, both reusing
:func:`repro.blocking.pair_generator.partition_spans` semantics:

* the **initial bulk load** carves the reference's slot space into
  contiguous cost-balanced tiles — exactly how the pair generator
  shards an index block across engine workers;
* **subsequent ingests** route by a stable FNV-1a hash of the record
  id (:func:`shard_for_id`), which keeps placement deterministic
  across processes and restarts (Python's own ``hash`` is salted per
  process and would scatter records differently every run).

Each shard owns one directory under the cluster data dir::

    data_dir/
      manifest.json        router state: seq counter, shard bases
      specs.pkl            pickled AttributeSpecs + combiner + knobs
      shard-00/
        wal.log            mutation WAL (serve.wal frame format)
        base-3/            packed base, versioned by write count
          meta.json        counters, record/column metadata
          records.jsonl    base records in slot order, with gseq
          col0.range_bits.bin   raw arrays, memmapped on restore
          ...

A base write goes to a temp directory first and is renamed into
place, so a crash mid-write leaves the previous base intact; the
manifest is replaced atomically last and is the single source of
truth for which base + how many WAL frames constitute the snapshot.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
from typing import Dict, List, Optional, Sequence, Tuple

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - image always has numpy
    _np = None

from repro.blocking.pair_generator import partition_spans
from repro.model.entity import ObjectInstance

MANIFEST_FILE = "manifest.json"
SPECS_FILE = "specs.pkl"

# FNV-1a, 64-bit
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_FNV_MASK = (1 << 64) - 1


def shard_for_id(id: str, n_shards: int) -> int:
    """Owning shard of a record id — stable FNV-1a hash placement."""
    value = _FNV_OFFSET
    for byte in id.encode("utf-8"):
        value = ((value ^ byte) * _FNV_PRIME) & _FNV_MASK
    return value % n_shards


def initial_partition(n_records: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous slot tiles for the initial bulk load.

    Uses the pair generator's :func:`partition_spans` with unit costs,
    so the reference splits exactly like an index block splits across
    engine shard workers: ``n_shards`` contiguous, balanced spans.
    """
    return partition_spans([1] * n_records, n_shards)


def shard_dir(data_dir: str, shard: int) -> str:
    return os.path.join(data_dir, f"shard-{shard:02d}")


def wal_path(data_dir: str, shard: int) -> str:
    return os.path.join(shard_dir(data_dir, shard), "wal.log")


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write_json(path: str, payload: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(path))


class PartitionStore:
    """Versioned packed-base storage for one shard directory."""

    def __init__(self, path: str) -> None:
        self.path = path
        os.makedirs(path, exist_ok=True)

    # -- base writing --------------------------------------------------

    def _base_versions(self) -> List[int]:
        versions = []
        for entry in sorted(os.listdir(self.path)):
            if entry.startswith("base-"):
                try:
                    versions.append(int(entry[5:]))
                except ValueError:
                    continue
        return sorted(versions)

    def base_path(self, base_id: int) -> str:
        return os.path.join(self.path, f"base-{base_id}")

    def write_base(self,
                   records: Sequence[Tuple[ObjectInstance, int]],
                   column_states: Sequence[Tuple[dict, Dict[str, object]]],
                   counters: dict) -> int:
        """Write a new packed base; returns its base id.

        ``records`` are ``(instance, gseq)`` pairs in slot order;
        ``column_states`` come from
        :meth:`~repro.serve.index.IncrementalIndex.export_columns`;
        ``counters`` carries the index/shard counters the restore path
        resumes from (``version``, ``compactions``, ``seq`` floor).
        The write is atomic: temp directory, fsync, rename.
        """
        versions = self._base_versions()
        base_id = (versions[-1] + 1) if versions else 0
        tmp = os.path.join(self.path, f".base-{base_id}.tmp")
        if os.path.exists(tmp):  # pragma: no cover - stale crash debris
            shutil.rmtree(tmp)
        os.makedirs(tmp)

        with open(os.path.join(tmp, "records.jsonl"), "w",
                  encoding="utf-8") as handle:
            for instance, gseq in records:
                handle.write(json.dumps(
                    {"id": instance.id, "gseq": gseq,
                     "attributes": dict(instance.attributes)},
                    separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

        columns_meta = []
        for position, (meta, arrays) in enumerate(column_states):
            array_specs = []
            for name, array in arrays.items():
                filename = f"col{position}.{name}.bin"
                array = _np.ascontiguousarray(array)
                with open(os.path.join(tmp, filename), "wb") as handle:
                    array.tofile(handle)
                    handle.flush()
                    os.fsync(handle.fileno())
                array_specs.append({"name": name, "file": filename,
                                    "dtype": str(array.dtype),
                                    "shape": list(array.shape)})
            columns_meta.append({"meta": meta, "arrays": array_specs})

        _atomic_write_json(os.path.join(tmp, "meta.json"),
                           {"counters": counters,
                            "records": len(records),
                            "columns": columns_meta})
        _fsync_dir(tmp)
        final = self.base_path(base_id)
        os.replace(tmp, final)
        _fsync_dir(self.path)
        for stale in versions:
            shutil.rmtree(self.base_path(stale), ignore_errors=True)
        return base_id

    # -- base loading --------------------------------------------------

    def latest_base(self) -> Optional[int]:
        versions = self._base_versions()
        return versions[-1] if versions else None

    def load_base(self, base_id: int):
        """Load a packed base written by :meth:`write_base`.

        Returns ``(records, column_states, counters)`` where
        ``records`` is ``[(ObjectInstance, gseq), ...]`` in slot order
        and the column-state arrays are read-only ``np.memmap`` views
        of the base files — restoring costs page-table setup, not a
        repack.
        """
        base = self.base_path(base_id)
        with open(os.path.join(base, "meta.json"), encoding="utf-8") as handle:
            meta = json.load(handle)
        records: List[Tuple[ObjectInstance, int]] = []
        with open(os.path.join(base, "records.jsonl"),
                  encoding="utf-8") as handle:
            for line in handle:
                entry = json.loads(line)
                records.append((ObjectInstance(entry["id"],
                                               entry["attributes"]),
                                entry["gseq"]))
        column_states = []
        for column in meta["columns"]:
            arrays: Dict[str, object] = {}
            for spec in column["arrays"]:
                arrays[spec["name"]] = _np.memmap(
                    os.path.join(base, spec["file"]),
                    dtype=_np.dtype(spec["dtype"]), mode="r",
                    shape=tuple(spec["shape"]))
            column_states.append((column["meta"], arrays))
        return records, column_states, meta["counters"]


# -- cluster-level manifest / specs ------------------------------------

def write_manifest(data_dir: str, manifest: dict) -> None:
    """Atomically replace the cluster manifest (fsync'd)."""
    _atomic_write_json(os.path.join(data_dir, MANIFEST_FILE), manifest)


def read_manifest(data_dir: str) -> Optional[dict]:
    path = os.path.join(data_dir, MANIFEST_FILE)
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def write_specs(data_dir: str, payload: dict) -> None:
    """Pickle the matching configuration (specs, combiner, knobs)."""
    path = os.path.join(data_dir, SPECS_FILE)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(data_dir)


def read_specs(data_dir: str) -> dict:
    with open(os.path.join(data_dir, SPECS_FILE), "rb") as handle:
        return pickle.load(handle)
