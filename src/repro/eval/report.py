"""Plain-text table rendering for experiment results.

Benchmarks print a "paper vs measured" table per experiment; keeping
the renderer dependency-free makes it usable from tests, examples and
the pytest terminal-summary hook alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


def format_percent(value: Optional[float], *, digits: int = 1) -> str:
    """Render a ratio as a percentage string; ``None`` renders as ``-``."""
    if value is None:
        return "-"
    return f"{value * 100:.{digits}f}%"


@dataclass
class Table:
    """A titled grid of stringifiable cells."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        return render_table(self)


def render_table(table: Table) -> str:
    """Render a fixed-width table with title and footnotes."""
    cells = [[str(cell) for cell in row] for row in table.rows]
    headers = [str(column) for column in table.columns]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width)
                          for cell, width in zip(row, widths))

    separator = "-+-".join("-" * width for width in widths)
    lines = [table.title, "=" * max(len(table.title), len(separator))]
    lines.append(render_row(headers))
    lines.append(separator)
    lines.extend(render_row(row) for row in cells)
    for note in table.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
