"""Mapping diagnostics: structure and agreement analysis.

Match quality metrics (precision/recall/F) need a gold standard;
these diagnostics do not.  They answer the questions an engineer asks
*before* trusting a mapping: does it look 1:1 like a same-mapping
should (Definition 2 expects one counterpart per real-world entity)?
How are similarities distributed — is there a clean threshold valley?
And when two matchers disagree, where exactly?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.mapping import Mapping


@dataclass(frozen=True)
class CardinalityProfile:
    """Degree structure of a mapping."""

    correspondences: int
    domain_objects: int
    range_objects: int
    #: domain objects with exactly one correspondence
    unique_domain: int
    #: range objects with exactly one correspondence
    unique_range: int
    max_out_degree: int
    max_in_degree: int

    @property
    def one_to_one_ratio(self) -> float:
        """Fraction of correspondences that are 1:1 on both sides."""
        if self.correspondences == 0:
            return 1.0
        return self._one_to_one / self.correspondences

    # populated by the factory below; dataclass(frozen) needs the slot
    _one_to_one: int = 0


def cardinality_profile(mapping: Mapping) -> CardinalityProfile:
    """Profile the degree structure of ``mapping``.

    A same-mapping between clean sources should be dominated by 1:1
    correspondences; a high share of 1:n rows signals duplicates in the
    range source (exactly the Google Scholar situation of §2.1).
    """
    one_to_one = sum(
        1 for domain_id, range_id, _ in mapping
        if mapping.out_degree(domain_id) == 1
        and mapping.in_degree(range_id) == 1
    )
    out_degrees = [mapping.out_degree(d) for d in mapping.domain_ids()]
    in_degrees = [mapping.in_degree(r) for r in mapping.range_ids()]
    return CardinalityProfile(
        correspondences=len(mapping),
        domain_objects=len(out_degrees),
        range_objects=len(in_degrees),
        unique_domain=sum(1 for degree in out_degrees if degree == 1),
        unique_range=sum(1 for degree in in_degrees if degree == 1),
        max_out_degree=max(out_degrees, default=0),
        max_in_degree=max(in_degrees, default=0),
        _one_to_one=one_to_one,
    )


def similarity_histogram(mapping: Mapping, *, bins: int = 10
                         ) -> List[Tuple[float, float, int]]:
    """Histogram of correspondence similarities.

    Returns ``[(low, high, count), ...]`` over equal-width bins of
    [0, 1]; the final bin is inclusive on both ends.  A bimodal
    histogram (mass near 1 and mass near the floor) indicates a clean
    threshold exists; a flat one warns that threshold selection will be
    fragile — worth checking before trusting Table-2-style thresholds.
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    counts = [0] * bins
    for _, _, similarity in mapping:
        index = min(int(similarity * bins), bins - 1)
        counts[index] += 1
    width = 1.0 / bins
    return [(round(i * width, 10), round((i + 1) * width, 10), count)
            for i, count in enumerate(counts)]


@dataclass
class AgreementReport:
    """Where two mappings over the same sources agree and differ."""

    both: int
    only_left: int
    only_right: int
    #: pairs present in both but with |Δsim| above the tolerance
    similarity_conflicts: int
    examples_only_left: List[Tuple[str, str]] = field(default_factory=list)
    examples_only_right: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def jaccard(self) -> float:
        """Pair-set Jaccard agreement of the two mappings."""
        union = self.both + self.only_left + self.only_right
        return self.both / union if union else 1.0


def agreement(left: Mapping, right: Mapping, *,
              similarity_tolerance: float = 0.1,
              max_examples: int = 5) -> AgreementReport:
    """Compare two mappings between the same source pair.

    This is the diagnostic behind §4.1.1's merge rationale: merging
    helps exactly when the matchers' disagreement (``only_left`` /
    ``only_right``) is substantial but complementary.
    """
    if left.domain != right.domain or left.range != right.range:
        raise ValueError("agreement requires mappings between the same "
                         "sources")
    left_pairs = left.pairs()
    right_pairs = right.pairs()
    both_pairs = left_pairs & right_pairs
    conflicts = sum(
        1 for domain_id, range_id in both_pairs
        if abs(left.get(domain_id, range_id)
               - right.get(domain_id, range_id)) > similarity_tolerance
    )
    only_left = sorted(left_pairs - right_pairs)
    only_right = sorted(right_pairs - left_pairs)
    return AgreementReport(
        both=len(both_pairs),
        only_left=len(only_left),
        only_right=len(only_right),
        similarity_conflicts=conflicts,
        examples_only_left=only_left[:max_examples],
        examples_only_right=only_right[:max_examples],
    )


def describe(mapping: Mapping) -> Dict[str, object]:
    """One-call structural summary (repr-friendly dict)."""
    profile = cardinality_profile(mapping)
    sims = [similarity for _, _, similarity in mapping]
    return {
        "domain": mapping.domain,
        "range": mapping.range,
        "kind": mapping.kind.value,
        "correspondences": profile.correspondences,
        "domain_objects": profile.domain_objects,
        "range_objects": profile.range_objects,
        "one_to_one_ratio": round(profile.one_to_one_ratio, 4),
        "max_out_degree": profile.max_out_degree,
        "max_in_degree": profile.max_in_degree,
        "min_similarity": min(sims) if sims else None,
        "mean_similarity": (sum(sims) / len(sims)) if sims else None,
        "max_similarity": max(sims) if sims else None,
    }
