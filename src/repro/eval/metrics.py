"""Precision / recall / F-measure against a perfect mapping.

Correspondences count as unordered facts: a predicted pair is a true
positive iff it appears in the gold mapping (similarities are ignored
— selection has already happened by the time a mapping is evaluated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Set, Tuple

from repro.core.mapping import Mapping

Pair = Tuple[str, str]


@dataclass(frozen=True)
class MatchQuality:
    """One evaluation outcome."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    predicted: int
    gold: int

    def as_row(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "tp": self.true_positives,
            "predicted": self.predicted,
            "gold": self.gold,
        }


def f_measure(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def precision_recall_f1(predicted: Set[Pair],
                        gold: Set[Pair]) -> Tuple[float, float, float]:
    """Plain set-based P/R/F over pair sets."""
    if not predicted:
        return 0.0, 0.0, 0.0
    true_positives = len(predicted & gold)
    precision = true_positives / len(predicted)
    recall = true_positives / len(gold) if gold else 0.0
    return precision, recall, f_measure(precision, recall)


def evaluate_pairs(predicted: Set[Pair], gold: Set[Pair]) -> MatchQuality:
    """Evaluate explicit pair sets."""
    precision, recall, f1 = precision_recall_f1(predicted, gold)
    return MatchQuality(
        precision=precision, recall=recall, f1=f1,
        true_positives=len(predicted & gold),
        predicted=len(predicted), gold=len(gold),
    )


def evaluate(predicted: Mapping, gold: Mapping,
             *, restrict: Optional[Callable[[Pair], bool]] = None
             ) -> MatchQuality:
    """Evaluate a predicted mapping against the perfect mapping.

    ``restrict`` optionally limits the evaluation universe — e.g. to
    conference publications only, for the per-group rows of Tables 4
    and 5.  The filter applies to both predicted and gold pairs.
    """
    predicted_pairs = predicted.pairs()
    gold_pairs = gold.pairs()
    if restrict is not None:
        predicted_pairs = {pair for pair in predicted_pairs if restrict(pair)}
        gold_pairs = {pair for pair in gold_pairs if restrict(pair)}
    return evaluate_pairs(predicted_pairs, gold_pairs)
