"""Evaluation framework: metrics, reporting and per-table experiments.

Match quality is measured "with the standard metrics precision, recall
and F-measure with respect to manually determined 'perfect' mappings"
(§5.1).  Every table and worked figure of the paper's evaluation has a
driver in :mod:`repro.eval.experiments`; benchmarks and examples call
those drivers and render the results with :mod:`repro.eval.report`.
"""

from repro.eval.diagnostics import (
    AgreementReport,
    CardinalityProfile,
    agreement,
    cardinality_profile,
    describe,
    similarity_histogram,
)
from repro.eval.metrics import (
    MatchQuality,
    evaluate,
    evaluate_pairs,
    f_measure,
    precision_recall_f1,
)
from repro.eval.report import Table, format_percent, render_table

__all__ = [
    "AgreementReport",
    "CardinalityProfile",
    "MatchQuality",
    "Table",
    "agreement",
    "cardinality_profile",
    "describe",
    "evaluate",
    "evaluate_pairs",
    "f_measure",
    "format_percent",
    "precision_recall_f1",
    "render_table",
    "similarity_histogram",
]
