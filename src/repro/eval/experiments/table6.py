"""Table 6 — DBLP-ACM authors via the n:m neighborhood matcher.

The author-publication association is n:m with small, highly variable
neighborhoods.  Attribute matching on author names is already decent;
the neighborhood matcher alone is weak (it matches any two authors
sharing a matched publication) but merging both lifts recall for the
authors whose names differ across sources (initials, dropped middle
names).

Paper reference (P / R / F):
  Attribute(name)          99.3 / 81.3 / 89.4
  Neighborhood(publication) 24.8 / 99.3 / 39.7
  Merge                     99.9 / 94.0 / 96.9
"""

from __future__ import annotations

from repro.core.matchers.neighborhood import neighborhood_match
from repro.core.operators.merge import merge
from repro.core.operators.selection import BestNSelection, ThresholdSelection
from repro.eval.experiments.common import (
    ExperimentResult,
    Workbench,
    ensure_workbench,
    percent_cell,
)
from repro.eval.report import Table

PAPER = {
    "attribute": (0.993, 0.813, 0.894),
    "neighborhood": (0.248, 0.993, 0.397),
    "merge": (0.999, 0.940, 0.969),
}


def run_table6(source) -> ExperimentResult:
    workbench: Workbench = ensure_workbench(source)
    dblp = workbench.bundle("DBLP")
    acm = workbench.bundle("ACM")

    attribute = ThresholdSelection(workbench.THRESHOLD).apply(
        workbench.fuzzy_author_names("DBLP", "ACM")
    )
    neighborhood = neighborhood_match(
        dblp.author_pub, workbench.pub_same("DBLP", "ACM"), acm.pub_author,
    )
    merged = BestNSelection(1, side="both").apply(
        merge([attribute, neighborhood], "max")
    )

    results = {
        "attribute": workbench.score(attribute, "authors", "DBLP", "ACM"),
        "neighborhood": workbench.score(neighborhood, "authors",
                                        "DBLP", "ACM"),
        "merge": workbench.score(merged, "authors", "DBLP", "ACM"),
    }

    table = Table(
        "Table 6: matching DBLP-ACM authors via n:m neighborhood matcher",
        ["matcher", "precision (paper/ours)", "recall (paper/ours)",
         "f-measure (paper/ours)"],
    )
    for key in ("attribute", "neighborhood", "merge"):
        paper_p, paper_r, paper_f = PAPER[key]
        quality = results[key]
        table.add_row(
            key,
            f"{percent_cell(paper_p)} / {percent_cell(quality.precision)}",
            f"{percent_cell(paper_r)} / {percent_cell(quality.recall)}",
            f"{percent_cell(paper_f)} / {percent_cell(quality.f1)}",
        )
    table.add_note("merge = Max combination + Best-1 on both sides")
    return ExperimentResult(
        "table6", "author matching via n:m neighborhood", table,
        data={key: quality.as_row() for key, quality in results.items()},
    )
