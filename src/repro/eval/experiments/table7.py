"""Table 7 — DBLP-GS publications helped by the author neighborhood.

Google Scholar entries carry noisy, extraction-mangled titles, so the
title matcher misses many true entries.  The repair (§5.4.3 / Figure
11): build an author same-mapping DBLP-GS with an initials-tolerant
name matcher, run the n:m neighborhood matcher over author-publication
associations (using RelativeLeft because GS author lists are
incomplete), and *refine* its candidates with a permissive title
matcher before merging with the direct result.  The improvement is
recall-driven: title-mangled entries are recovered through their
author lists.

Paper reference (P / R / F):
  Attribute(title)      81.1 / 81.6 / 81.3
  Neighborhood(author)  15.2 / 76.0 / 25.4
  Merge                 85.1 / 92.9 / 88.9
"""

from __future__ import annotations

from repro.core.matchers.attribute import AttributeMatcher
from repro.core.matchers.neighborhood import neighborhood_match
from repro.core.operators.merge import merge
from repro.core.operators.selection import BestNSelection
from repro.eval.experiments.common import (
    ExperimentResult,
    Workbench,
    ensure_workbench,
    percent_cell,
)
from repro.eval.report import Table

PAPER = {
    "attribute": (0.811, 0.816, 0.813),
    "neighborhood": (0.152, 0.760, 0.254),
    "merge": (0.851, 0.929, 0.889),
}


def run_gs_publication_experiment(workbench: Workbench, other: str,
                                  paper: dict, experiment_id: str,
                                  table_number: int) -> ExperimentResult:
    """Shared driver for Tables 7 (DBLP-GS) and 8 (ACM-GS)."""
    bundle = workbench.bundle(other)
    gs = workbench.bundle("GS")

    attribute = workbench.pub_same(other, "GS")
    author_same = workbench.gs_author_same(other)
    neighborhood = neighborhood_match(
        bundle.pub_author, author_same, gs.author_pub,
        g2="relative_left",
    )
    # Figure 11: the neighborhood result confines candidates for an
    # additional (permissive) title match on small input data.
    refine = AttributeMatcher("title", "title", "trigram", 0.5)
    refined = refine.match(bundle.publications, gs.publications,
                           candidates=list(neighborhood.pairs()))
    merged = BestNSelection(1, side="range").apply(
        merge([attribute, refined], "max")
    )

    results = {
        "attribute": workbench.score(attribute, "publications", other, "GS"),
        "neighborhood": workbench.score(neighborhood, "publications",
                                        other, "GS"),
        "merge": workbench.score(merged, "publications", other, "GS"),
    }

    table = Table(
        f"Table {table_number}: matching {other}-GS publications via "
        "author neighborhood (n:m)",
        ["matcher", "precision (paper/ours)", "recall (paper/ours)",
         "f-measure (paper/ours)"],
    )
    for key in ("attribute", "neighborhood", "merge"):
        paper_p, paper_r, paper_f = paper[key]
        quality = results[key]
        table.add_row(
            key,
            f"{percent_cell(paper_p)} / {percent_cell(quality.precision)}",
            f"{percent_cell(paper_r)} / {percent_cell(quality.recall)}",
            f"{percent_cell(paper_f)} / {percent_cell(quality.f1)}",
        )
    table.add_note("neighborhood uses RelativeLeft (incomplete GS author "
                   "lists); merge refines neighborhood candidates with a "
                   "permissive title match (Figure 11), Best-1 per GS entry")
    return ExperimentResult(
        experiment_id, f"{other}-GS publication matching", table,
        data={key: quality.as_row() for key, quality in results.items()},
    )


def run_table7(source) -> ExperimentResult:
    workbench = ensure_workbench(source)
    return run_gs_publication_experiment(workbench, "DBLP", PAPER,
                                         "table7", 7)
