"""Table 5 — DBLP-ACM publications via the n:1 neighborhood matcher.

The venue same-mapping from Table 4 (Best-1 selection) feeds a
publication-venue neighborhood matcher.  Alone it merely confines
candidates ("on average we achieve a recall of 100 % and precision of
2 %"), but intersected with the title matcher it eliminates exactly
the recurring-journal-title false positives string matching cannot.

Paper reference (P / R / F):
                 Attribute(title)  Neighborhood(venue)  Merge
  conferences    96.7 / 99.8 / 98.6  1.2 / 98.8 / 3.4   99.2 / 98.8 (F 99.0*)
  journals       72.8 / 95.9 / 82.8  6.5 / 100 / 12.2   99.7 / 95.9 / 97.8
  overall        91.9 / ~99 / ~95    ~2 / ~99 / ~4      99.x / 98.x / 98.6

(*the OCR of the published table interleaves rows; the headline
number is the overall merged F-measure of 98.6 %.)
"""

from __future__ import annotations

from repro.core.matchers.neighborhood import neighborhood_match
from repro.core.operators.merge import merge
from repro.eval.experiments.common import (
    ExperimentResult,
    Workbench,
    ensure_workbench,
    percent_cell,
)
from repro.eval.report import Table

PAPER_F = {
    ("conferences", "attribute"): 0.986,
    ("conferences", "neighborhood"): 0.034,
    ("conferences", "merge"): 0.990,
    ("journals", "attribute"): 0.828,
    ("journals", "neighborhood"): 0.122,
    ("journals", "merge"): 0.978,
    ("overall", "attribute"): 0.919,
    ("overall", "neighborhood"): 0.03,
    ("overall", "merge"): 0.986,
}


def run_table5(source) -> ExperimentResult:
    workbench: Workbench = ensure_workbench(source)
    dblp = workbench.bundle("DBLP")
    acm = workbench.bundle("ACM")

    attribute = workbench.pub_same("DBLP", "ACM")
    venue_same = workbench.venue_same(selection="best1")
    neighborhood = neighborhood_match(
        dblp.pub_venue, venue_same, acm.venue_pub,
    )
    # Min-0 = intersection: a pair survives only when the titles agree
    # AND the publications sit in matched venues.
    merged = merge([attribute, neighborhood], "min0")

    kinds = workbench.venue_kind_of_pub("DBLP")

    def conference_only(pair):
        return kinds.get(pair[0]) == "conference"

    def journal_only(pair):
        return kinds.get(pair[0]) == "journal"

    table = Table(
        "Table 5: DBLP-ACM publications using neighborhood matcher (n:1)",
        ["group", "matcher", "precision", "recall",
         "f-measure (paper/ours)"],
    )
    data = {}
    for group, restrict in (
        ("conferences", conference_only),
        ("journals", journal_only),
        ("overall", None),
    ):
        for matcher_key, mapping in (
            ("attribute", attribute),
            ("neighborhood", neighborhood),
            ("merge", merged),
        ):
            quality = workbench.score(mapping, "publications", "DBLP", "ACM",
                                      restrict=restrict)
            paper_f = PAPER_F.get((group, matcher_key))
            table.add_row(
                group, matcher_key,
                percent_cell(quality.precision),
                percent_cell(quality.recall),
                f"{percent_cell(paper_f) if paper_f is not None else '-'} / "
                f"{percent_cell(quality.f1)}",
            )
            data[f"{group}|{matcher_key}"] = quality.as_row()
    table.add_note("merge = Min-0 intersection of title matcher and "
                   "venue-neighborhood matcher")
    return ExperimentResult("table5", "publication matching via n:1 "
                            "neighborhood", table, data=data)
