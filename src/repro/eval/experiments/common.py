"""Shared machinery for the experiment drivers.

The :class:`Workbench` wraps a generated dataset and memoizes the
intermediate mappings (fuzzy title mappings, publication same-mappings,
the venue same-mapping, ...) that several tables share — exactly the
role of MOMA's mapping cache, and implemented on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.blocking import KeyBlocking, TokenBlocking
from repro.core.mapping import Mapping
from repro.core.matchers.attribute import AttributeMatcher
from repro.core.matchers.neighborhood import neighborhood_match
from repro.core.operators.selection import BestNSelection, ThresholdSelection
from repro.datagen.sources import BibliographicDataset, SourceBundle
from repro.eval.metrics import MatchQuality, evaluate
from repro.eval.report import Table
from repro.model.cache import MappingCache


@dataclass
class ExperimentResult:
    """Outcome of one experiment driver."""

    experiment_id: str
    title: str
    table: Table
    #: raw measured values for programmatic assertions
    data: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        return self.table.render()


class Workbench:
    """Dataset + memoized intermediate mappings for the experiments."""

    #: trigram fuzzy-mapping floor; low enough that every threshold the
    #: experiments use can be applied afterwards without re-matching
    FUZZY_FLOOR = 0.4
    #: the standard threshold of the paper's attribute matchers (§5.2)
    THRESHOLD = 0.8

    def __init__(self, dataset: BibliographicDataset) -> None:
        self.dataset = dataset
        self.cache = MappingCache(max_entries=256)
        # max_df values are calibrated to the corrected two-source
        # cutoff semantics (a token's df is compared against max_df of
        # the *combined* population).  The doubled values reproduce the
        # old effective cutoffs to within one df count (integer
        # truncation differs at some population sizes); no token sits
        # on that boundary at the tiny/small/paper dataset scales, so
        # the candidate sets the experiments were tuned on are
        # unchanged.  Both instances only ever run in two-source mode
        # here.
        self._title_blocking = TokenBlocking(max_df=0.2)
        self._name_blocking = TokenBlocking(max_df=0.5)

    # -- plumbing --------------------------------------------------------

    def bundle(self, name: str) -> SourceBundle:
        return self.dataset.bundle(name)

    def _memo(self, key: str, factory: Callable[[], Mapping]) -> Mapping:
        cached = self.cache.get(key)
        if cached is None:
            cached = factory()
            self.cache.put(key, cached)
        return cached

    # -- attribute mappings ------------------------------------------------

    def fuzzy_title(self, left: str, right: str) -> Mapping:
        """Unthresholded trigram title mapping between two sources."""
        def build() -> Mapping:
            matcher = AttributeMatcher(
                "title", "title", "trigram", self.FUZZY_FLOOR,
                blocking=self._title_blocking,
            )
            return matcher.match(self.bundle(left).publications,
                                 self.bundle(right).publications)
        return self._memo(f"fuzzy_title|{left}|{right}", build)

    def pub_same(self, left: str, right: str,
                 threshold: Optional[float] = None) -> Mapping:
        """Title-based publication same-mapping at ``threshold``."""
        threshold = self.THRESHOLD if threshold is None else threshold
        return self._memo(
            f"pub_same|{left}|{right}|{threshold}",
            lambda: ThresholdSelection(threshold).apply(
                self.fuzzy_title(left, right)
            ),
        )

    def fuzzy_pub_authors(self, left: str, right: str) -> Mapping:
        """Trigram mapping over the publications' author-list strings."""
        def build() -> Mapping:
            matcher = AttributeMatcher(
                "authors", "authors", "trigram", self.FUZZY_FLOOR,
                blocking=self._title_blocking,
            )
            return matcher.match(self.bundle(left).publications,
                                 self.bundle(right).publications)
        return self._memo(f"fuzzy_pub_authors|{left}|{right}", build)

    def year_mapping(self, left: str, right: str) -> Mapping:
        """Exact-year publication mapping (Table 2's third matcher).

        Blocking on the year value is lossless for exact matching —
        cross-year pairs score 0 anyway — and avoids the quadratic
        cross product at paper scale.
        """
        def build() -> Mapping:
            matcher = AttributeMatcher(
                "year", "year", "exact", 1.0,
                blocking=KeyBlocking(key=lambda value: (
                    str(value) if value is not None else None)),
            )
            return matcher.match(self.bundle(left).publications,
                                 self.bundle(right).publications)
        return self._memo(f"year|{left}|{right}", build)

    def fuzzy_author_names(self, left: str, right: str,
                           similarity: str = "trigram") -> Mapping:
        """Fuzzy author-name mapping between two sources' author LDS."""
        def build() -> Mapping:
            matcher = AttributeMatcher(
                "name", "name", similarity, self.FUZZY_FLOOR,
                blocking=self._name_blocking,
            )
            return matcher.match(self.bundle(left).authors,
                                 self.bundle(right).authors)
        return self._memo(f"author_names|{left}|{right}|{similarity}", build)

    # -- derived same-mappings ------------------------------------------------

    def venue_same(self, *, selection: str = "best1") -> Mapping:
        """DBLP-ACM venue same-mapping via 1:n neighborhood matching.

        This is the §5.4.1 pipeline: compose the venue-publication
        associations around the title-based publication same-mapping,
        then select.
        """
        def build() -> Mapping:
            dblp = self.bundle("DBLP")
            acm = self.bundle("ACM")
            raw = neighborhood_match(
                dblp.venue_pub, self.pub_same("DBLP", "ACM"), acm.pub_venue,
            )
            if selection == "best1":
                return BestNSelection(1).apply(raw)
            return ThresholdSelection(float(selection)).apply(raw)
        return self._memo(f"venue_same|{selection}", build)

    def gs_author_same(self, other: str = "DBLP") -> Mapping:
        """Author same-mapping between ``other`` and GS (§5.4.3 setup).

        Uses the initials-tolerant person-name similarity because "GS
        reduces authors' first names to their first letter".
        """
        def build() -> Mapping:
            matcher = AttributeMatcher(
                "name", "name", "personname", 0.75,
                blocking=self._name_blocking,
            )
            fuzzy = matcher.match(self.bundle(other).authors,
                                  self.bundle("GS").authors)
            return BestNSelection(1).apply(fuzzy)
        return self._memo(f"gs_author_same|{other}", build)

    # -- evaluation ----------------------------------------------------------

    def gold(self, category: str, left: str, right: str) -> Mapping:
        left_name = getattr(self.bundle(left),
                            "publications" if category == "publications"
                            else "authors" if category == "authors"
                            else "venues").name
        right_name = getattr(self.bundle(right),
                             "publications" if category == "publications"
                             else "authors" if category == "authors"
                             else "venues").name
        return self.dataset.gold.get(category, left_name, right_name)

    def score(self, mapping: Mapping, category: str, left: str,
              right: str, *, restrict=None) -> MatchQuality:
        return evaluate(mapping, self.gold(category, left, right),
                        restrict=restrict)

    # -- venue-kind helpers (conference/journal splits) -----------------------

    def venue_kind_of_dblp_venue(self) -> Dict[str, str]:
        venues = self.bundle("DBLP").venues
        assert venues is not None
        return {instance.id: instance.get("kind") for instance in venues}

    def venue_kind_of_pub(self, source: str) -> Dict[str, str]:
        """Publication id -> "conference"/"journal" via the world."""
        bundle = self.bundle(source)
        world = self.dataset.world
        kinds: Dict[str, str] = {}
        for pub_id, true_id in bundle.true_pub.items():
            venue = world.venues[world.publications[true_id].venue_id]
            kinds[pub_id] = venue.kind
        return kinds


def quality_columns() -> list:
    """The standard column set for P/R/F comparison tables."""
    return ["metric", "paper", "measured"]


def percent_cell(value: float) -> str:
    return f"{value * 100:.1f}%"


def ensure_workbench(source) -> Workbench:
    """Accept either a dataset or an existing workbench."""
    if isinstance(source, Workbench):
        return source
    return Workbench(source)
