"""Table 8 — GS-ACM publications via author neighborhood (n:m).

Same strategy as Table 7 with ACM in place of DBLP; the paper reports
"comparative results".

Paper reference (P / R / F) — note the paper's table is oriented
GS-ACM; our driver matches ACM->GS and the metrics are symmetric:
  Attribute(title)      86.7 / 81.7 / 84.1
  Neighborhood(author)  16.2 / 75.6 / 26.7
  Merge                 84.6 / 92.1 / 88.2
"""

from __future__ import annotations

from repro.eval.experiments.common import ExperimentResult, ensure_workbench
from repro.eval.experiments.table7 import run_gs_publication_experiment

PAPER = {
    "attribute": (0.867, 0.817, 0.841),
    "neighborhood": (0.162, 0.756, 0.267),
    "merge": (0.846, 0.921, 0.882),
}


def run_table8(source) -> ExperimentResult:
    workbench = ensure_workbench(source)
    return run_gs_publication_experiment(workbench, "ACM", PAPER,
                                         "table8", 8)
