"""Table 2 — DBLP-ACM publications with attribute matchers + merge.

Three matchers (trigram on titles, trigram on author-name strings,
exact year comparison) and their merge ("using the Avg function and
80 % threshold selection").  The year matcher alone is useless
(precision < 1 %) yet contributes to the merge; missing values are
treated as 0 in the merge (Avg-0) so a year-only agreement can never
clear the threshold on its own.

Paper reference (P / R / F):
  Title  86.7 / 97.7 / 91.9
  Author 38.0 / 87.9 / 53.1
  Year    0.4 / 100  /  0.8
  Merge  97.3 / 93.9 / 95.5
"""

from __future__ import annotations

from repro.core.operators.merge import merge
from repro.core.operators.selection import ThresholdSelection
from repro.eval.experiments.common import (
    ExperimentResult,
    Workbench,
    ensure_workbench,
    percent_cell,
)
from repro.eval.report import Table

PAPER = {
    "title": (0.867, 0.977, 0.919),
    "author": (0.380, 0.879, 0.531),
    "year": (0.004, 1.000, 0.008),
    "merge": (0.973, 0.939, 0.955),
}


def run_table2(source) -> ExperimentResult:
    workbench: Workbench = ensure_workbench(source)
    threshold = ThresholdSelection(workbench.THRESHOLD)

    title = workbench.fuzzy_title("DBLP", "ACM")
    author = workbench.fuzzy_pub_authors("DBLP", "ACM")
    year = workbench.year_mapping("DBLP", "ACM")
    merged = threshold.apply(merge([title, author, year], "avg0"))

    results = {
        "title": workbench.score(threshold.apply(title),
                                 "publications", "DBLP", "ACM"),
        "author": workbench.score(threshold.apply(author),
                                  "publications", "DBLP", "ACM"),
        "year": workbench.score(year, "publications", "DBLP", "ACM"),
        "merge": workbench.score(merged, "publications", "DBLP", "ACM"),
    }

    table = Table(
        "Table 2: matching DBLP-ACM publications using attribute matchers",
        ["matcher", "precision (paper/ours)", "recall (paper/ours)",
         "f-measure (paper/ours)"],
    )
    for key in ("title", "author", "year", "merge"):
        paper_p, paper_r, paper_f = PAPER[key]
        quality = results[key]
        table.add_row(
            key,
            f"{percent_cell(paper_p)} / {percent_cell(quality.precision)}",
            f"{percent_cell(paper_r)} / {percent_cell(quality.recall)}",
            f"{percent_cell(paper_f)} / {percent_cell(quality.f1)}",
        )
    table.add_note("merge = Avg-0 combination of all three matchers, "
                   "80% threshold selection")
    return ExperimentResult(
        "table2", "attribute matchers and their merge", table,
        data={key: quality.as_row() for key, quality in results.items()},
    )
