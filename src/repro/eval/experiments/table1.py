"""Table 1 — instance counts of the considered data sources.

Paper values (at the authors' 2006 snapshot): DBLP 130 venues / 2,616
publications / 3,319 authors; ACM DL 128 / 2,294 / 3,547; Google
Scholar 64,263 publications (81,296 raw entries).  Our counts depend on
the generator scale; the benchmark reports both so the relative shape
(ACM slightly smaller than DBLP, GS larger with duplicate entries) is
visible.
"""

from __future__ import annotations

from repro.datagen.sources import dataset_statistics
from repro.eval.experiments.common import ExperimentResult, ensure_workbench
from repro.eval.report import Table

PAPER = {
    "DBLP": {"venues": 130, "publications": 2616, "authors": 3319},
    "ACM": {"venues": 128, "publications": 2294, "authors": 3547},
    "GS": {"venues": 0, "publications": 64263, "authors": 0},
}


def run_table1(source) -> ExperimentResult:
    """Report per-source instance counts next to the paper's."""
    workbench = ensure_workbench(source)
    measured = dataset_statistics(workbench.dataset)

    table = Table(
        "Table 1: number of instances for the considered data sources",
        ["source", "venues (paper/ours)", "publications (paper/ours)",
         "authors (paper/ours)"],
    )
    for name in ("DBLP", "ACM", "GS"):
        paper = PAPER[name]
        ours = measured[name]
        table.add_row(
            name,
            f"{paper['venues'] or '-'} / {ours['venues'] or '-'}",
            f"{paper['publications']} / {ours['publications']}",
            f"{paper['authors'] or '-'} / {ours['authors']}",
        )
    table.add_note(
        "paper counts are the authors' 2006 snapshot; ours come from the "
        "synthetic world at the configured scale (see DESIGN.md §3)"
    )
    return ExperimentResult("table1", "dataset statistics", table,
                            data=measured)
