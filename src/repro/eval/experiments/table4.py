"""Table 4 — DBLP-ACM venues via the 1:n neighborhood matcher.

Generic string matching is hopeless for venues ("VLDB2002" vs "28th
International Conference on Very Large Data Bases"), so the venue
same-mapping is derived from the publication same-mapping through the
venue-publication associations.  Three selections are compared: 80 %
and 50 % thresholds and Best-1, split by conferences vs journals.

Paper reference (F-measure):
                80%     50%     Best-1
  conferences   100     100      97.3
  journals      77.1    92.2     (good with permissive selections)
  overall       80.9    93.4     98.8

Shape to reproduce: thresholds are perfect for conferences (large
neighborhoods) but recall-starved for journals (small neighborhoods);
Best-1 is best overall yet dented on conferences by ACM's missing
VLDB 2002/2003.
"""

from __future__ import annotations

from repro.eval.experiments.common import (
    ExperimentResult,
    Workbench,
    ensure_workbench,
    percent_cell,
)
from repro.eval.report import Table

PAPER_F = {
    ("conferences", "80%"): 1.0,
    ("conferences", "50%"): 1.0,
    ("conferences", "best1"): 0.973,
    ("journals", "80%"): 0.771,
    ("journals", "50%"): 0.922,
    ("journals", "best1"): 0.988,
    ("overall", "80%"): 0.809,
    ("overall", "50%"): 0.934,
    ("overall", "best1"): 0.988,
}

SELECTIONS = ("80%", "50%", "best1")


def run_table4(source) -> ExperimentResult:
    workbench: Workbench = ensure_workbench(source)
    kinds = workbench.venue_kind_of_dblp_venue()

    def conference_only(pair):
        return kinds.get(pair[0]) == "conference"

    def journal_only(pair):
        return kinds.get(pair[0]) == "journal"

    table = Table(
        "Table 4: matching DBLP-ACM venues using neighborhood matcher (1:n)",
        ["group", "selection", "precision", "recall",
         "f-measure (paper/ours)"],
    )
    data = {}
    for selection_key in SELECTIONS:
        selection_arg = ("best1" if selection_key == "best1"
                         else selection_key.rstrip("%"))
        if selection_arg != "best1":
            selection_arg = str(float(selection_arg) / 100.0)
        mapping = workbench.venue_same(selection=selection_arg)
        for group, restrict in (
            ("conferences", conference_only),
            ("journals", journal_only),
            ("overall", None),
        ):
            quality = workbench.score(mapping, "venues", "DBLP", "ACM",
                                      restrict=restrict)
            paper_f = PAPER_F.get((group, selection_key))
            table.add_row(
                group, selection_key,
                percent_cell(quality.precision),
                percent_cell(quality.recall),
                f"{percent_cell(paper_f) if paper_f is not None else '-'} / "
                f"{percent_cell(quality.f1)}",
            )
            data[f"{group}|{selection_key}"] = quality.as_row()
    table.add_note("publication same-mapping: trigram title matcher at 80%")
    return ExperimentResult("table4", "venue matching via 1:n neighborhood",
                            table, data=data)
