"""Per-table experiment drivers (paper §5).

Each ``run_tableN`` takes a :class:`~repro.eval.experiments.common.Workbench`
(or a dataset) and returns an :class:`ExperimentResult` whose table
shows paper-reference numbers next to measured ones.  The drivers are
the single source of truth for the match workflows — benchmarks,
examples and integration tests all call them.
"""

from repro.eval.experiments.common import ExperimentResult, Workbench
from repro.eval.experiments.extension_self_mapping import (
    gs_self_mapping,
    run_self_mapping_extension,
)
from repro.eval.experiments.figures import (
    run_figure1,
    run_figure4,
    run_figure6,
    run_figure9,
)
from repro.eval.experiments.table1 import run_table1
from repro.eval.experiments.table10 import run_table10
from repro.eval.experiments.table2 import run_table2
from repro.eval.experiments.table3 import run_table3
from repro.eval.experiments.table4 import run_table4
from repro.eval.experiments.table5 import run_table5
from repro.eval.experiments.table6 import run_table6
from repro.eval.experiments.table7 import run_table7
from repro.eval.experiments.table8 import run_table8
from repro.eval.experiments.table9 import run_table9

__all__ = [
    "ExperimentResult",
    "Workbench",
    "gs_self_mapping",
    "run_self_mapping_extension",
    "run_figure1",
    "run_figure4",
    "run_figure6",
    "run_figure9",
    "run_table1",
    "run_table10",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table8",
    "run_table9",
]
