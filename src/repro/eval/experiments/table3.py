"""Table 3 — matching publications via different compose paths.

For each source pair: a *direct* mapping (title matcher for DBLP-ACM
and DBLP-GS; the pre-existing low-recall link mapping for GS-ACM), the
*composition* via the third source, and the *merge* of both.  The
paper's observations reproduce mechanically:

* the GS-ACM link mapping has poor recall, so composing DBLP-ACM or
  DBLP-GS through it is much worse than direct matching;
* composing GS-ACM through the high-quality hub DBLP beats the link
  mapping by a wide margin;
* merging direct and composed mappings retains the best alternative.

Paper reference (F-measure):
  DBLP-GS  direct 81.3 | compose via ACM 33.9 | merge 81.3
  DBLP-ACM direct 91.9 | compose via GS  63.7 | merge 91.6
  GS-ACM   direct 35.3 | compose via DBLP 83.9 | merge 83.7
"""

from __future__ import annotations

from repro.core.operators.compose import compose
from repro.core.operators.merge import merge
from repro.eval.experiments.common import (
    ExperimentResult,
    Workbench,
    ensure_workbench,
    percent_cell,
)
from repro.eval.report import Table

PAPER = {
    "DBLP-GS": {"direct": 0.813, "compose": 0.339, "merge": 0.813},
    "DBLP-ACM": {"direct": 0.919, "compose": 0.637, "merge": 0.916},
    "GS-ACM": {"direct": 0.353, "compose": 0.839, "merge": 0.837},
}


def run_table3(source) -> ExperimentResult:
    workbench: Workbench = ensure_workbench(source)

    direct_da = workbench.pub_same("DBLP", "ACM")
    direct_dg = workbench.pub_same("DBLP", "GS")
    links = workbench.bundle("GS").extras["links_to_acm"]

    composed = {
        # DBLP -> GS via ACM: direct DBLP-ACM, then inverted GS->ACM links
        "DBLP-GS": compose(direct_da, links.inverse(), "min", "max"),
        # DBLP -> ACM via GS: DBLP-GS title mapping, then the links
        "DBLP-ACM": compose(direct_dg, links, "min", "max"),
        # GS -> ACM via the curated hub DBLP (Figure 8)
        "GS-ACM": compose(direct_dg.inverse(), direct_da, "min", "max"),
    }
    direct = {
        "DBLP-GS": direct_dg,
        "DBLP-ACM": direct_da,
        "GS-ACM": links,
    }
    pairs = {
        "DBLP-GS": ("DBLP", "GS"),
        "DBLP-ACM": ("DBLP", "ACM"),
        "GS-ACM": ("GS", "ACM"),
    }

    table = Table(
        "Table 3: matching publications via different compose paths "
        "(F-measure, paper/ours)",
        ["strategy", "DBLP-GS (via ACM)", "DBLP-ACM (via GS)",
         "GS-ACM (via DBLP)"],
    )
    data = {}
    rows = {"direct": {}, "compose": {}, "merge": {}}
    for pair_key, (left, right) in pairs.items():
        quality_direct = workbench.score(direct[pair_key], "publications",
                                         left, right)
        quality_compose = workbench.score(composed[pair_key], "publications",
                                          left, right)
        merged = merge([direct[pair_key], composed[pair_key]], "max")
        quality_merge = workbench.score(merged, "publications", left, right)
        rows["direct"][pair_key] = quality_direct
        rows["compose"][pair_key] = quality_compose
        rows["merge"][pair_key] = quality_merge
        data[pair_key] = {
            "direct": quality_direct.as_row(),
            "compose": quality_compose.as_row(),
            "merge": quality_merge.as_row(),
        }

    for strategy in ("direct", "compose", "merge"):
        table.add_row(
            strategy,
            *[
                f"{percent_cell(PAPER[pair][strategy])} / "
                f"{percent_cell(rows[strategy][pair].f1)}"
                for pair in ("DBLP-GS", "DBLP-ACM", "GS-ACM")
            ],
        )
    table.add_note("GS-ACM direct = pre-existing link mapping "
                   "(recall-starved by construction)")
    return ExperimentResult("table3", "compose paths", table, data=data)
