"""Extension experiment: GS self-mapping composition (paper §5.6).

The paper's stated future work: "we will therefore explore match
workflows which first determine the duplicates within dirty sources
such as Google Scholar and represent them as self-mappings
(identifying clusters of duplicate entries).  These self-mappings can
then be composed with same-mappings between GS and other sources such
as DBLP and ACM to find more correspondences."

This driver implements that workflow:

1. duplicate detection *within* GS (title self-match, symmetrized,
   transitively closed into duplicate clusters);
2. composition of the base DBLP-GS same-mapping with the GS
   self-mapping, so a DBLP publication matched to one entry of a
   duplicate cluster propagates to all entries of the cluster;
3. merge with the base mapping.

Expected effect (and the reason the paper proposes it): recall rises —
the evaluation requires "that all duplicate entries of GS are matched",
and heavily mangled entries that the direct matcher misses are now
reached through their cleaner siblings.
"""

from __future__ import annotations

from repro.blocking import TokenBlocking
from repro.core.matchers.attribute import AttributeMatcher
from repro.core.operators.compose import compose
from repro.core.operators.merge import merge
from repro.core.operators.selection import (
    BestNSelection,
    MaxAttributeDifference,
)
from repro.core.operators.setops import symmetrize, transitive_closure
from repro.eval.experiments.common import (
    ExperimentResult,
    Workbench,
    ensure_workbench,
    percent_cell,
)
from repro.eval.report import Table


def gs_self_mapping(workbench: Workbench, *,
                    threshold: float = 0.9):
    """Duplicate clusters within GS as a transitive self-mapping.

    A high title threshold plus the §3.3 year constraint keeps
    conference/journal versions of the same work (identical titles,
    different years — different real-world publications!) out of the
    duplicate clusters; transitive closure then materializes the
    clusters as a 1:1-per-pair self-mapping.
    """
    gs = workbench.bundle("GS").publications
    matcher = AttributeMatcher("title", similarity="trigram",
                               threshold=threshold,
                               blocking=TokenBlocking())
    raw = matcher.match(gs, gs)
    raw = MaxAttributeDifference(gs, gs, "year", 0.5).apply(raw)
    return transitive_closure(symmetrize(raw))


def run_self_mapping_extension(source) -> ExperimentResult:
    workbench = ensure_workbench(source)

    base = workbench.pub_same("DBLP", "GS")
    self_mapping = gs_self_mapping(workbench)
    propagated = compose(base, self_mapping, "min", "max")
    # merge the propagated evidence in, then let each GS entry keep its
    # best DBLP partner — cluster support disambiguates near-ties
    expanded = BestNSelection(1, side="range").apply(
        merge([base, propagated], "max"))

    base_quality = workbench.score(base, "publications", "DBLP", "GS")
    expanded_quality = workbench.score(expanded, "publications",
                                       "DBLP", "GS")

    table = Table(
        "Extension (§5.6): composing the GS self-mapping into DBLP-GS "
        "matching",
        ["mapping", "precision", "recall", "f-measure"],
    )
    table.add_row("direct title matcher",
                  percent_cell(base_quality.precision),
                  percent_cell(base_quality.recall),
                  percent_cell(base_quality.f1))
    table.add_row("+ GS duplicate clusters (compose + merge + best-1)",
                  percent_cell(expanded_quality.precision),
                  percent_cell(expanded_quality.recall),
                  percent_cell(expanded_quality.f1))
    table.add_note(
        f"GS self-mapping: {len(self_mapping)} correspondences across "
        "duplicate clusters"
    )
    return ExperimentResult(
        "extension-self-mapping",
        "GS self-mapping composition",
        table,
        data={
            "base": base_quality.as_row(),
            "expanded": expanded_quality.as_row(),
            "self_mapping_size": len(self_mapping),
        },
    )
