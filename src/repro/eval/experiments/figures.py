"""Worked figures 1, 4, 6 and 9 — exact-value reproductions.

These figures are executable examples in the paper; the drivers build
the exact inputs shown and verify the outputs to the printed digits.
``data["matches_paper"]`` is True only when every value agrees, which
the integration tests assert.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.mapping import Mapping, MappingKind
from repro.core.matchers.neighborhood import neighborhood_match
from repro.core.operators.compose import compose
from repro.core.operators.merge import merge
from repro.eval.experiments.common import ExperimentResult
from repro.eval.report import Table


def _rows_match(actual: Mapping,
                expected: List[Tuple[str, str, float]],
                *, digits: int = 2) -> bool:
    actual_rows = {(a, b): s for a, b, s in actual.to_rows()}
    if len(actual_rows) != len(expected):
        return False
    for a, b, s in expected:
        value = actual_rows.get((a, b))
        if value is None or round(value, digits) != round(s, digits):
            return False
    return True


def _result(figure_id: str, title: str, checks: Dict[str, bool],
            table: Table) -> ExperimentResult:
    matches = all(checks.values())
    table.add_note(f"matches paper: {matches} ({checks})")
    return ExperimentResult(figure_id, title, table,
                            data={"matches_paper": matches,
                                  "checks": checks})


# ----------------------------------------------------------------------
# Figure 1: publication instances and their same-mapping
# ----------------------------------------------------------------------

FIGURE1_SAME = [
    ("conf/VLDB/MadhavanBR01", "P-672191", 1.0),
    ("conf/VLDB/ChirkovaHS01", "P-672216", 1.0),
    ("conf/VLDB/ChirkovaHS01", "P-641272", 0.6),
    ("journals/VLDB/ChirkovaHS02", "P-641272", 1.0),
    ("journals/VLDB/ChirkovaHS02", "P-672216", 0.6),
]


def run_figure1() -> ExperimentResult:
    """Rebuild Figure 1's same-mapping table and echo it."""
    same = Mapping.from_correspondences(
        "DBLP.Publication", "ACM.Publication", FIGURE1_SAME,
    )
    table = Table("Figure 1: publication same-mapping (DBLP ~ ACM)",
                  ["DBLP key", "ACM id", "sim"])
    for domain, range_, sim in same.to_rows():
        table.add_row(domain, range_, f"{sim:g}")
    checks = {
        "correspondences": len(same) == 5,
        "chirkova_conf_ambiguous": same.out_degree("conf/VLDB/ChirkovaHS01") == 2,
    }
    return _result("figure1", "example same-mapping", checks, table)


# ----------------------------------------------------------------------
# Figure 4: merge operator worked example
# ----------------------------------------------------------------------

def _figure4_inputs() -> Tuple[Mapping, Mapping]:
    map1 = Mapping.from_correspondences("A", "B", [
        ("a1", "b1", 1.0), ("a2", "b2", 0.8),
    ])
    map2 = Mapping.from_correspondences("A", "B", [
        ("a1", "b1", 0.6), ("a1", "b5", 1.0), ("a3", "b3", 0.9),
    ])
    return map1, map2


FIGURE4_EXPECTED = {
    "min0": [("a1", "b1", 0.6)],
    "avg": [("a1", "b1", 0.8), ("a1", "b5", 1.0),
            ("a2", "b2", 0.8), ("a3", "b3", 0.9)],
    "avg0": [("a1", "b1", 0.8), ("a1", "b5", 0.5),
             ("a2", "b2", 0.4), ("a3", "b3", 0.45)],
    "prefer": [("a1", "b1", 1.0), ("a2", "b2", 0.8), ("a3", "b3", 0.9)],
}


def run_figure4() -> ExperimentResult:
    map1, map2 = _figure4_inputs()
    results = {
        "min0": merge([map1, map2], "min0"),
        "avg": merge([map1, map2], "avg"),
        "avg0": merge([map1, map2], "avg0"),
        "prefer": merge([map1, map2], "prefer", prefer=0),
    }
    table = Table("Figure 4: merge operator example",
                  ["function", "result rows"])
    checks = {}
    for key, mapping in results.items():
        rows = ", ".join(f"({a},{b},{s:g})" for a, b, s in mapping.to_rows())
        table.add_row(key, rows)
        checks[key] = _rows_match(mapping, FIGURE4_EXPECTED[key])
    return _result("figure4", "merge operator example", checks, table)


# ----------------------------------------------------------------------
# Figure 6: compose operator worked example (f=Min, g=Relative)
# ----------------------------------------------------------------------

def _figure6_inputs() -> Tuple[Mapping, Mapping]:
    map1 = Mapping.from_correspondences("V", "P", [
        ("v1", "p1", 1.0), ("v1", "p2", 1.0), ("v1", "p3", 0.6),
        ("v2", "p2", 0.6), ("v2", "p3", 1.0),
    ], kind=MappingKind.ASSOCIATION)
    map2 = Mapping.from_correspondences("P", "V'", [
        ("p1", "v'1", 1.0), ("p2", "v'1", 1.0), ("p3", "v'2", 1.0),
    ], kind=MappingKind.ASSOCIATION)
    return map1, map2


FIGURE6_EXPECTED = [
    ("v1", "v'1", 0.8),      # 2*(1+1)/(3+2)
    ("v1", "v'2", 0.3),      # 2*0.6/(3+1)
    ("v2", "v'1", 0.3),      # 2*0.6/(2+2)
    ("v2", "v'2", 0.67),     # 2*1/(2+1)
]


def run_figure6() -> ExperimentResult:
    map1, map2 = _figure6_inputs()
    composed = compose(map1, map2, "min", "relative")
    table = Table("Figure 6: compose operator example (f=Min, g=Relative)",
                  ["venue", "venue'", "similarity"])
    for a, b, s in composed.to_rows():
        table.add_row(a, b, f"{s:.2f}")
    checks = {"relative": _rows_match(composed, FIGURE6_EXPECTED)}
    return _result("figure6", "compose operator example", checks, table)


# ----------------------------------------------------------------------
# Figure 9: neighborhood matcher sample execution
# ----------------------------------------------------------------------

FIGURE9_EXPECTED = [
    ("conf/VLDB/2001", "V-645927", 0.8),
    ("conf/VLDB/2001", "V-641268", 0.3),
    ("journals/VLDB/2002", "V-645927", 0.3),
    ("journals/VLDB/2002", "V-641268", 0.67),
]


def run_figure9() -> ExperimentResult:
    """nhMatch over Figure 1's same-mapping and the venue associations."""
    asso1 = Mapping.from_correspondences(
        "DBLP.Venue", "DBLP.Publication", [
            ("conf/VLDB/2001", "conf/VLDB/MadhavanBR01", 1.0),
            ("conf/VLDB/2001", "conf/VLDB/ChirkovaHS01", 1.0),
            ("journals/VLDB/2002", "journals/VLDB/ChirkovaHS02", 1.0),
        ], kind=MappingKind.ASSOCIATION)
    same = Mapping.from_correspondences(
        "DBLP.Publication", "ACM.Publication", FIGURE1_SAME)
    asso2 = Mapping.from_correspondences(
        "ACM.Publication", "ACM.Venue", [
            ("P-672191", "V-645927", 1.0),
            ("P-672216", "V-645927", 1.0),
            ("P-641272", "V-641268", 1.0),
        ], kind=MappingKind.ASSOCIATION)

    result = neighborhood_match(asso1, same, asso2)
    table = Table("Figure 9: neighborhood matcher for DBLP venues",
                  ["DBLP venue", "ACM venue", "similarity"])
    for a, b, s in result.to_rows():
        table.add_row(a, b, f"{s:.2f}")
    checks = {"venue_mapping": _rows_match(result, FIGURE9_EXPECTED)}
    return _result("figure9", "neighborhood matcher example", checks, table)
