"""Table 9 — duplicate author candidates within DBLP (§4.3, §5.5).

The paper's self-mapping script::

    $CoAuthSim = nhMatch(DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor)
    $NameSim   = attrMatch(DBLP.Author, DBLP.Author, Trigram, 0.5,
                           "[name]", "[name]")
    $Merged    = merge($CoAuthSim, $NameSim, Average)
    $Result    = select($Merged, "[domain.id]<>[range.id]")

Two authors are duplicate candidates when they share a significant
fraction of co-authors and/or have similar names.  The paper lists its
top-5 candidates with co-author overlap 100..67 %, name similarity and
the number of shared co-authors (compose paths); we report our top
candidates the same way plus recall of the injected duplicate pairs.
"""

from __future__ import annotations

from repro.blocking import TokenBlocking
from repro.core.mapping import Mapping
from repro.core.matchers.attribute import AttributeMatcher
from repro.core.matchers.neighborhood import neighborhood_match
from repro.core.operators.merge import merge
from repro.eval.experiments.common import (
    ExperimentResult,
    Workbench,
    ensure_workbench,
    percent_cell,
)
from repro.eval.report import Table

#: the paper's top-5 (for the table's reference column)
PAPER_TOP = (
    ("Catalina Fan", "Catalina Wei", 1.00, 0.64, 0.82),
    ("Amir M. Zarkesh", "Amir Zarkesh", 0.75, 0.84, 0.79),
    ("M. Barczyc", "M. Barczyk", 0.73, 0.75, 0.74),
    ("Agathoniki Trigoni", "Niki Trigoni", 0.67, 0.75, 0.71),
    ("Joe Chun-Hung Yuen", "Joe Yuen", 0.67, 0.62, 0.65),
)


def run_table9(source, *, top_k: int = 5) -> ExperimentResult:
    workbench: Workbench = ensure_workbench(source)
    dblp = workbench.bundle("DBLP")
    authors = dblp.authors

    identity = Mapping.identity(authors.name, authors.ids())
    co_author_sim = neighborhood_match(dblp.co_author, identity,
                                       dblp.co_author)
    name_matcher = AttributeMatcher(
        "name", "name", "trigram", 0.5,
        blocking=TokenBlocking(max_df=0.25),
    )
    name_sim = name_matcher.match(authors, authors)
    # Avg-0: a candidate missing one of the two signals is averaged
    # against 0 — this reproduces the paper's printed merge values
    # (e.g. Trigoni: (67% + 75%) / 2 = 71%) and keeps pairs that share
    # all co-authors but have unrelated names from flooding the top.
    merged = merge([co_author_sim, name_sim], "avg0").without_identity()

    # unordered candidate pairs ranked by merged similarity
    seen = set()
    candidates = []
    for corr in merged:
        key = tuple(sorted((corr.domain, corr.range)))
        if key in seen:
            continue
        seen.add(key)
        shared = len(
            set(dblp.co_author.range_ids_of(corr.domain))
            & set(dblp.co_author.range_ids_of(corr.range))
        )
        candidates.append({
            "author_a": corr.domain,
            "author_b": corr.range,
            "name_a": authors.require(corr.domain).get("name"),
            "name_b": authors.require(corr.range).get("name"),
            "co_author": co_author_sim.get(corr.domain, corr.range) or 0.0,
            "name": name_sim.get(corr.domain, corr.range) or 0.0,
            "merged": corr.similarity,
            "shared_co_authors": shared,
        })
    candidates.sort(key=lambda row: -row["merged"])

    # recall of injected duplicates among the top candidates
    gold = workbench.dataset.gold.get("author-duplicates",
                                      authors.name, authors.name)
    gold_pairs = {tuple(sorted(pair)) for pair in gold.pairs()}
    top = candidates[:max(top_k, len(gold_pairs))]
    found = sum(
        1 for row in top
        if tuple(sorted((row["author_a"], row["author_b"]))) in gold_pairs
    )
    recall_at_k = found / len(gold_pairs) if gold_pairs else 1.0

    table = Table(
        "Table 9: top duplicate author candidates within DBLP",
        ["rank", "author", "author'", "co-author", "name", "merge",
         "(paths)"],
    )
    for rank, row in enumerate(candidates[:top_k], start=1):
        table.add_row(
            rank, row["name_a"], row["name_b"],
            percent_cell(row["co_author"]), percent_cell(row["name"]),
            percent_cell(row["merged"]), row["shared_co_authors"],
        )
    table.add_note(
        "paper's top-5 for reference: "
        + "; ".join(f"{a} ~ {b} (co {percent_cell(co)}, name "
                    f"{percent_cell(nm)}, merge {percent_cell(mg)})"
                    for a, b, co, nm, mg in PAPER_TOP)
    )
    table.add_note(
        f"injected duplicate pairs recovered among top candidates: "
        f"{found}/{len(gold_pairs)}"
    )
    return ExperimentResult(
        "table9", "duplicate author detection", table,
        data={
            "candidates": candidates[:top_k],
            "recall_at_k": recall_at_k,
            "gold_pairs": len(gold_pairs),
        },
    )
