"""Table 10 — summary of matching results (F-measure).

Aggregates the headline merged F-measures of Tables 4-8:

                  Venues   Publications   Authors
  DBLP - ACM      98.8%    98.6%          96.9%
  DBLP - GS       -        88.9%          -
  GS - ACM        -        88.2%          -
"""

from __future__ import annotations

from repro.eval.experiments.common import (
    ExperimentResult,
    ensure_workbench,
    percent_cell,
)
from repro.eval.experiments.table4 import run_table4
from repro.eval.experiments.table5 import run_table5
from repro.eval.experiments.table6 import run_table6
from repro.eval.experiments.table7 import run_table7
from repro.eval.experiments.table8 import run_table8
from repro.eval.report import Table

PAPER = {
    ("DBLP-ACM", "venues"): 0.988,
    ("DBLP-ACM", "publications"): 0.986,
    ("DBLP-ACM", "authors"): 0.969,
    ("DBLP-GS", "publications"): 0.889,
    ("GS-ACM", "publications"): 0.882,
}


def run_table10(source) -> ExperimentResult:
    workbench = ensure_workbench(source)
    table4 = run_table4(workbench)
    table5 = run_table5(workbench)
    table6 = run_table6(workbench)
    table7 = run_table7(workbench)
    table8 = run_table8(workbench)

    measured = {
        ("DBLP-ACM", "venues"): table4.data["overall|best1"]["f1"],
        ("DBLP-ACM", "publications"): table5.data["overall|merge"]["f1"],
        ("DBLP-ACM", "authors"): table6.data["merge"]["f1"],
        ("DBLP-GS", "publications"): table7.data["merge"]["f1"],
        ("GS-ACM", "publications"): table8.data["merge"]["f1"],
    }

    table = Table(
        "Table 10: summary of matching results (F-measure, paper/ours)",
        ["pair", "venues", "publications", "authors"],
    )
    for pair in ("DBLP-ACM", "DBLP-GS", "GS-ACM"):
        cells = []
        for category in ("venues", "publications", "authors"):
            paper_value = PAPER.get((pair, category))
            ours = measured.get((pair, category))
            if paper_value is None and ours is None:
                cells.append("-")
            else:
                paper_text = (percent_cell(paper_value)
                              if paper_value is not None else "-")
                ours_text = percent_cell(ours) if ours is not None else "-"
                cells.append(f"{paper_text} / {ours_text}")
        table.add_row(pair, *cells)
    return ExperimentResult(
        "table10", "summary of matching results", table,
        data={f"{pair}|{category}": value
              for (pair, category), value in measured.items()},
    )
