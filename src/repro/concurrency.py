"""Lock-discipline annotations shared by the serve tier.

``@requires_lock("_lock")`` documents — and, where possible, enforces —
that a method must only run while the named instance lock is held.  It
serves three audiences at once:

* readers: the contract is on the ``def`` line instead of buried in a
  docstring ("caller holds _lock");
* the static checker (:mod:`repro.analysis.lck`): annotated methods
  called via ``self.`` without an enclosing ``with self.<lock>:`` are
  flagged as LCK001 findings;
* the runtime: when the instance actually has the named attribute and
  it exposes ``_is_owned`` (an ``RLock``), the wrapper asserts
  ownership.  Plain ``Lock`` objects and absent attributes degrade to
  a no-op so the decorator can annotate single-threaded helpers (e.g.
  ``IncrementalIndex``, which is locked by its owning service).

The assert is cheap (one ``getattr`` + one C call) but still skipped
under ``python -O`` like any assert.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, TypeVar, cast

_Method = TypeVar("_Method", bound=Callable[..., Any])


def requires_lock(lock_name: str) -> Callable[[_Method], _Method]:
    """Mark a method as callable only with ``self.<lock_name>`` held."""

    def decorate(method: _Method) -> _Method:
        @functools.wraps(method)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            lock = getattr(self, lock_name, None)
            is_owned = getattr(lock, "_is_owned", None)
            if is_owned is not None:
                assert is_owned(), (
                    f"{type(self).__name__}.{method.__name__} requires "
                    f"{lock_name} held")
            return method(self, *args, **kwargs)

        wrapper.__requires_lock__ = lock_name  # type: ignore[attr-defined]
        return cast(_Method, wrapper)

    return decorate
