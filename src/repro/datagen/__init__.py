"""Synthetic bibliographic world — the evaluation-data substitute.

The paper evaluates on DBLP, ACM Digital Library and Google Scholar
snapshots of database publications 1994-2003 (§5.1).  Those sources
are not redistributable and Google Scholar cannot be downloaded at
all, so this package generates a deterministic ground-truth *world*
(authors, venues, publications) and derives three dirty *views* whose
characteristics copy the paper's description:

* **DBLP** — manually curated, complete, clean attribute values, but
  with a handful of duplicate author entries (Table 9's quarry);
* **ACM** — clean but incomplete (missing VLDB 2002/2003), numeric
  ``P-…`` keys, citation counts;
* **GS** — produced by a simulated crawl: duplicate entry clusters,
  character-level title noise, first names reduced to initials,
  incomplete author lists, frequently missing years, wildly diverse
  venue strings, and a low-recall pre-existing link mapping to ACM.

Because the generator knows ground truth, it also emits the perfect
mappings that play the role of the paper's manually confirmed gold
standard.
"""

from repro.datagen.world import (
    TrueAuthor,
    TruePublication,
    TrueVenue,
    World,
    WorldConfig,
    generate_world,
)
from repro.datagen.sources import (
    BibliographicDataset,
    SourceBundle,
    build_dataset,
    dataset_statistics,
)
from repro.datagen.gold import GoldStandard
from repro.datagen.query import QueryClient, harvest_by_titles

__all__ = [
    "BibliographicDataset",
    "GoldStandard",
    "QueryClient",
    "SourceBundle",
    "TrueAuthor",
    "TruePublication",
    "TrueVenue",
    "World",
    "WorldConfig",
    "build_dataset",
    "dataset_statistics",
    "generate_world",
    "harvest_by_titles",
]
