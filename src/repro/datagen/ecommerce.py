"""E-commerce domain generator (paper §7 future work).

"In future work, we will apply our framework to additional domains
such as e-commerce" — this module provides that domain so the
framework's domain-independence is demonstrable: a ground-truth
product catalog and two shop views with shop-specific dirt, plus the
association mappings (product-brand, product-category) that let the
neighborhood matcher operate exactly as it does on venues and authors.

Shop characteristics:

* **CatalogShop** — a curated catalog: clean structured product names
  ("<Brand> <Model> <Variant>"), complete brand/category data;
* **MarketShop** — a marketplace feed: noisy names (abbreviations,
  dropped brand tokens, reordered words, unit rewrites), occasional
  duplicate offers per product, price jitter, missing categories.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.mapping import Mapping, MappingKind
from repro.datagen.corruption import typo
from repro.datagen.gold import GoldStandard
from repro.model.smm import MappingType, SourceMappingModel
from repro.model.source import LogicalSource, ObjectType, PhysicalSource

BRANDS: Tuple[str, ...] = (
    "Aurotek", "Bellaro", "Cormund", "Deltraco", "Everion", "Fendrix",
    "Gravita", "Heliora", "Ivenco", "Jaxxon", "Kelvaro", "Lumenor",
    "Mavrica", "Nordwell", "Optarek", "Pellagio",
)

CATEGORIES: Tuple[str, ...] = (
    "Espresso Machine", "Vacuum Cleaner", "Hair Dryer", "Food Processor",
    "Electric Kettle", "Toaster Oven", "Air Purifier", "Blender",
    "Coffee Grinder", "Rice Cooker", "Steam Iron", "Stand Mixer",
)

MODEL_WORDS: Tuple[str, ...] = (
    "Pro", "Max", "Plus", "Prime", "Compact", "Classic", "Turbo",
    "Smart", "Eco", "Ultra", "Active", "Premium",
)

VARIANTS: Tuple[str, ...] = (
    "500W", "700W", "900W", "1200W", "1.5L", "2L", "Black", "White",
    "Silver", "Red", "Stainless Steel", "Titanium",
)

#: marketplace rewrites of variant tokens
_VARIANT_REWRITES = {
    "Stainless Steel": "SS",
    "1.5L": "1500 ml",
    "2L": "2000 ml",
    "500W": "0.5kW",
    "Black": "blk",
    "White": "wht",
}


@dataclass(frozen=True)
class TrueProduct:
    """A real-world product."""

    id: str
    name: str
    brand: str
    category: str
    price: float
    model_number: str


@dataclass
class EcommerceConfig:
    """Generator knobs for the product world and shop views."""

    seed: int = 21
    products: int = 300
    #: MarketShop coverage of the catalog
    market_coverage: float = 0.9
    #: probability of an extra duplicate offer per covered product
    market_duplicate_rate: float = 0.25
    #: name-noise probabilities for the marketplace feed
    drop_brand_rate: float = 0.25
    rewrite_variant_rate: float = 0.5
    reorder_rate: float = 0.2
    typo_rate: float = 0.25
    #: probability the marketplace offer misses its category
    category_missing_rate: float = 0.2
    price_jitter: float = 0.15


@dataclass
class ShopBundle:
    """One shop: products/brands/categories plus associations."""

    name: str
    physical: PhysicalSource
    products: LogicalSource
    brands: LogicalSource
    categories: LogicalSource
    product_brand: Mapping
    brand_product: Mapping
    product_category: Mapping
    category_product: Mapping
    #: shop product id -> true product id
    true_product: Dict[str, str] = field(default_factory=dict)
    #: true product id -> shop product ids (duplicate offers)
    products_of_true: Dict[str, List[str]] = field(default_factory=dict)

    def register(self, shop_id: str, true_id: str) -> None:
        self.true_product[shop_id] = true_id
        self.products_of_true.setdefault(true_id, []).append(shop_id)


@dataclass
class EcommerceDataset:
    """The assembled two-shop matching task."""

    products: Dict[str, TrueProduct]
    catalog: ShopBundle
    market: ShopBundle
    gold: GoldStandard
    smm: SourceMappingModel


def _generate_products(config: EcommerceConfig,
                       rng: random.Random) -> Dict[str, TrueProduct]:
    products: Dict[str, TrueProduct] = {}
    seen_names = set()
    counter = 0
    while len(products) < config.products:
        brand = rng.choice(BRANDS)
        category = rng.choice(CATEGORIES)
        model = f"{rng.choice(MODEL_WORDS)} {rng.randint(100, 999)}"
        variant = rng.choice(VARIANTS)
        name = f"{brand} {category} {model} {variant}"
        if name in seen_names:
            continue
        seen_names.add(name)
        counter += 1
        product_id = f"prod:{counter:04d}"
        products[product_id] = TrueProduct(
            id=product_id, name=name, brand=brand, category=category,
            price=round(rng.uniform(20, 600), 2),
            model_number=f"{brand[:3].upper()}-{rng.randint(10000, 99999)}",
        )
    return products


def _new_bundle(shop: str, downloadable: bool) -> ShopBundle:
    physical = PhysicalSource(shop, downloadable=downloadable)
    products = LogicalSource(physical, ObjectType("Product"))
    brands = LogicalSource(physical, ObjectType("Brand"))
    categories = LogicalSource(physical, ObjectType("Category"))
    return ShopBundle(
        name=shop, physical=physical, products=products, brands=brands,
        categories=categories,
        product_brand=Mapping(products.name, brands.name,
                              MappingKind.ASSOCIATION),
        brand_product=Mapping(brands.name, products.name,
                              MappingKind.ASSOCIATION),
        product_category=Mapping(products.name, categories.name,
                                 MappingKind.ASSOCIATION),
        category_product=Mapping(categories.name, products.name,
                                 MappingKind.ASSOCIATION),
    )


def _add_reference_entities(bundle: ShopBundle, prefix: str) -> Tuple[
        Dict[str, str], Dict[str, str]]:
    brand_ids = {}
    category_ids = {}
    for index, brand in enumerate(BRANDS, start=1):
        brand_id = f"{prefix}:brand:{index:02d}"
        brand_ids[brand] = brand_id
        bundle.brands.add_record(brand_id, name=brand)
    for index, category in enumerate(CATEGORIES, start=1):
        category_id = f"{prefix}:cat:{index:02d}"
        category_ids[category] = category_id
        bundle.categories.add_record(category_id, name=category)
    return brand_ids, category_ids


def _market_name(product: TrueProduct, config: EcommerceConfig,
                 rng: random.Random) -> str:
    tokens = product.name.split()
    # rewrite the variant token(s)
    if rng.random() < config.rewrite_variant_rate:
        rewritten = []
        i = 0
        while i < len(tokens):
            two = " ".join(tokens[i:i + 2])
            if two in _VARIANT_REWRITES:
                rewritten.append(_VARIANT_REWRITES[two])
                i += 2
                continue
            rewritten.append(_VARIANT_REWRITES.get(tokens[i], tokens[i]))
            i += 1
        tokens = rewritten
    if rng.random() < config.drop_brand_rate and len(tokens) > 2:
        tokens = [token for token in tokens if token != product.brand]
    if rng.random() < config.reorder_rate and len(tokens) > 2:
        index = rng.randrange(len(tokens) - 1)
        tokens[index], tokens[index + 1] = tokens[index + 1], tokens[index]
    name = " ".join(tokens)
    if rng.random() < config.typo_rate:
        name = typo(name, rng, errors=1)
    return name


def build_ecommerce_dataset(
        config: Optional[EcommerceConfig] = None) -> EcommerceDataset:
    """Generate the two-shop product matching task with gold standard."""
    config = config if config is not None else EcommerceConfig()
    rng = random.Random(config.seed)
    products = _generate_products(config, rng)

    catalog = _new_bundle("Catalog", downloadable=True)
    market = _new_bundle("Market", downloadable=False)
    catalog_brands, catalog_categories = _add_reference_entities(
        catalog, "cat")
    market_brands, market_categories = _add_reference_entities(
        market, "mkt")

    # -- catalog shop: clean ------------------------------------------------
    for counter, product in enumerate(products.values(), start=1):
        shop_id = f"cat:p{counter:05d}"
        catalog.products.add_record(
            shop_id, name=product.name, brand=product.brand,
            category=product.category, price=product.price,
            model_number=product.model_number,
        )
        catalog.register(shop_id, product.id)
        brand_id = catalog_brands[product.brand]
        category_id = catalog_categories[product.category]
        catalog.product_brand.add(shop_id, brand_id, 1.0)
        catalog.brand_product.add(brand_id, shop_id, 1.0)
        catalog.product_category.add(shop_id, category_id, 1.0)
        catalog.category_product.add(category_id, shop_id, 1.0)

    # -- marketplace shop: noisy feed with duplicate offers ------------------
    offer_counter = 0
    for product in products.values():
        if rng.random() >= config.market_coverage:
            continue
        offers = 1 + (rng.random() < config.market_duplicate_rate)
        for _ in range(offers):
            offer_counter += 1
            shop_id = f"mkt:o{offer_counter:05d}"
            attributes: Dict[str, object] = {
                "name": _market_name(product, config, rng),
                "price": round(product.price
                               * rng.uniform(1 - config.price_jitter,
                                             1 + config.price_jitter), 2),
            }
            has_category = rng.random() >= config.category_missing_rate
            if has_category:
                attributes["category"] = product.category
            market.products.add_record(shop_id, **attributes)
            market.register(shop_id, product.id)
            brand_id = market_brands[product.brand]
            market.product_brand.add(shop_id, brand_id, 1.0)
            market.brand_product.add(brand_id, shop_id, 1.0)
            if has_category:
                category_id = market_categories[product.category]
                market.product_category.add(shop_id, category_id, 1.0)
                market.category_product.add(category_id, shop_id, 1.0)

    # -- gold standard --------------------------------------------------------
    gold = GoldStandard()
    product_gold = Mapping(catalog.products.name, market.products.name,
                           MappingKind.SAME)
    for true_id, catalog_ids in catalog.products_of_true.items():
        for market_id in market.products_of_true.get(true_id, ()):
            for catalog_id in catalog_ids:
                product_gold.add(catalog_id, market_id, 1.0)
    gold.add("products", product_gold)

    brand_gold = Mapping(catalog.brands.name, market.brands.name,
                         MappingKind.SAME)
    for brand in BRANDS:
        brand_gold.add(catalog_brands[brand], market_brands[brand], 1.0)
    gold.add("brands", brand_gold)

    category_gold = Mapping(catalog.categories.name, market.categories.name,
                            MappingKind.SAME)
    for category in CATEGORIES:
        category_gold.add(catalog_categories[category],
                          market_categories[category], 1.0)
    gold.add("categories", category_gold)

    # -- source-mapping model ---------------------------------------------------
    smm = SourceMappingModel()
    smm.add_mapping_type(MappingType(
        "ProductBrand", "Product", "Brand", "n:1", inverse="BrandProduct"))
    smm.add_mapping_type(MappingType(
        "BrandProduct", "Brand", "Product", "1:n", inverse="ProductBrand"))
    smm.add_mapping_type(MappingType(
        "ProductCategory", "Product", "Category", "n:1",
        inverse="CategoryProduct"))
    smm.add_mapping_type(MappingType(
        "CategoryProduct", "Category", "Product", "1:n",
        inverse="ProductCategory"))
    for bundle in (catalog, market):
        smm.add_source(bundle.products)
        smm.add_source(bundle.brands)
        smm.add_source(bundle.categories)
        smm.register_mapping(f"{bundle.name}.ProductBrand",
                             bundle.product_brand, "ProductBrand")
        smm.register_mapping(f"{bundle.name}.BrandProduct",
                             bundle.brand_product, "BrandProduct")
        smm.register_mapping(f"{bundle.name}.ProductCategory",
                             bundle.product_category, "ProductCategory")
        smm.register_mapping(f"{bundle.name}.CategoryProduct",
                             bundle.category_product, "CategoryProduct")

    return EcommerceDataset(products, catalog, market, gold, smm)
