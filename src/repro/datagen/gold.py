"""Gold standards: the perfect mappings the evaluation scores against.

The paper measures precision/recall/F "with respect to manually
determined 'perfect' mappings" (§5.1).  Our generator knows ground
truth by construction, so the perfect mappings are emitted alongside
the sources.  Keys are ``(object type, domain source, range source)``;
both orientations resolve (the inverse is derived on demand).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.core.mapping import Mapping


class GoldStandard:
    """Registry of perfect mappings between source pairs."""

    def __init__(self) -> None:
        self._mappings: Dict[Tuple[str, str, str], Mapping] = {}

    @staticmethod
    def _key(category: str, domain: str, range_: str) -> Tuple[str, str, str]:
        return (category.lower(), domain, range_)

    def add(self, category: str, mapping: Mapping) -> None:
        """Register a perfect mapping under its category.

        ``category`` is the object type: ``"publications"``,
        ``"authors"`` or ``"venues"`` (free-form names are allowed for
        extensions).  The source pair comes from the mapping itself.
        """
        key = self._key(category, mapping.domain, mapping.range)
        if key in self._mappings:
            raise ValueError(f"gold mapping already registered for {key}")
        self._mappings[key] = mapping

    def get(self, category: str, domain: str, range_: str) -> Mapping:
        """Return the perfect mapping, inverting a stored one if needed."""
        key = self._key(category, domain, range_)
        mapping = self._mappings.get(key)
        if mapping is not None:
            return mapping
        inverse_key = self._key(category, range_, domain)
        stored = self._mappings.get(inverse_key)
        if stored is not None:
            return stored.inverse()
        known = sorted(self._mappings)
        raise KeyError(
            f"no gold mapping for {key}; known: {known}"
        )

    def try_get(self, category: str, domain: str,
                range_: str) -> Optional[Mapping]:
        """Like :meth:`get` but returning ``None`` on a miss."""
        try:
            return self.get(category, domain, range_)
        except KeyError:
            return None

    def publications(self, domain: str, range_: str) -> Mapping:
        return self.get("publications", domain, range_)

    def authors(self, domain: str, range_: str) -> Mapping:
        return self.get("authors", domain, range_)

    def venues(self, domain: str, range_: str) -> Mapping:
        return self.get("venues", domain, range_)

    def __iter__(self) -> Iterator[Tuple[str, str, str]]:
        return iter(sorted(self._mappings))

    def __len__(self) -> int:
        return len(self._mappings)

    def __contains__(self, key: Tuple[str, str, str]) -> bool:
        category, domain, range_ = key
        return (self._key(category, domain, range_) in self._mappings
                or self._key(category, range_, domain) in self._mappings)
