"""Noise operators for deriving dirty source views.

Each function takes the caller's ``random.Random`` and is pure given
that RNG, so corrupted sources are reproducible.  The operators model
the error classes the paper attributes to automatically extracted web
data: character typos and OCR confusions, truncation, dropped words,
abbreviated author names and the "high diversity in the value
representations of venues" (§5.4.1).
"""

from __future__ import annotations

import random
from typing import Optional

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"

#: common OCR/extraction confusions (applied in either direction)
_OCR_CONFUSIONS = (
    ("l", "1"), ("o", "0"), ("rn", "m"), ("cl", "d"), ("vv", "w"),
    ("e", "c"), ("h", "b"), ("i", "l"), ("s", "5"),
)


def typo(text: str, rng: random.Random, errors: int = 1) -> str:
    """Introduce ``errors`` random character edits (sub/ins/del/swap)."""
    if not text:
        return text
    chars = list(text)
    for _ in range(errors):
        if not chars:
            break
        kind = rng.randrange(4)
        position = rng.randrange(len(chars))
        if kind == 0:  # substitution
            chars[position] = rng.choice(_ALPHABET)
        elif kind == 1:  # insertion
            chars.insert(position, rng.choice(_ALPHABET))
        elif kind == 2 and len(chars) > 1:  # deletion
            del chars[position]
        elif len(chars) > 1:  # adjacent transposition
            other = position + 1 if position + 1 < len(chars) else position - 1
            chars[position], chars[other] = chars[other], chars[position]
    return "".join(chars)


def ocr_noise(text: str, rng: random.Random, probability: float = 0.3) -> str:
    """Apply one randomly chosen OCR confusion with ``probability``."""
    if rng.random() >= probability:
        return text
    source, target = rng.choice(_OCR_CONFUSIONS)
    if rng.random() < 0.5:
        source, target = target, source
    index = text.lower().find(source)
    if index < 0:
        return text
    return text[:index] + target + text[index + len(source):]


def drop_word(text: str, rng: random.Random) -> str:
    """Remove one random word (never the only word)."""
    words = text.split()
    if len(words) <= 1:
        return text
    del words[rng.randrange(len(words))]
    return " ".join(words)


def truncate_words(text: str, rng: random.Random,
                   min_keep: int = 3) -> str:
    """Truncate a title after a random word boundary."""
    words = text.split()
    if len(words) <= min_keep:
        return text
    keep = rng.randrange(min_keep, len(words))
    return " ".join(words[:keep])


def case_mangle(text: str, rng: random.Random) -> str:
    """Lowercase or uppercase the string (extraction artifacts)."""
    return text.lower() if rng.random() < 0.8 else text.upper()


def corrupt_title(title: str, rng: random.Random, *,
                  typo_probability: float = 0.4,
                  ocr_probability: float = 0.2,
                  truncate_probability: float = 0.08,
                  drop_probability: float = 0.08,
                  case_probability: float = 0.05) -> str:
    """Compose the title-noise pipeline used for Google Scholar entries."""
    if rng.random() < typo_probability:
        title = typo(title, rng, errors=1 + (rng.random() < 0.3))
    if rng.random() < ocr_probability:
        title = ocr_noise(title, rng, probability=1.0)
    if rng.random() < truncate_probability:
        title = truncate_words(title, rng)
    if rng.random() < drop_probability:
        title = drop_word(title, rng)
    if rng.random() < case_probability:
        title = case_mangle(title, rng)
    return title


def abbreviate_first_name(first: str, rng: Optional[random.Random] = None,
                          *, keep_middle: bool = True) -> str:
    """Reduce first names to initials: "John B." -> "J. B." / "J.".

    This is the paper's Google Scholar behaviour: "GS reduces authors'
    first names to their first letter" (§5.4.3).
    """
    parts = [part for part in first.replace(".", " ").split() if part]
    if not parts:
        return first
    initials = [f"{part[0]}." for part in parts]
    if not keep_middle:
        initials = initials[:1]
    return " ".join(initials)


def name_variant(first: str, last: str, rng: random.Random) -> tuple[str, str]:
    """Produce a plausible duplicate-author name variant.

    Used to inject DBLP duplicate authors (Table 9): nickname-style
    shortenings, initialized first names, or a typo in the last name —
    variants that keep co-author context intact while confusing exact
    name identity.
    """
    choice = rng.randrange(4)
    if choice == 0:
        # shorten first name: "Agathoniki" -> "Aga" (>=3 chars kept)
        head = first.split()[0]
        if len(head) > 4:
            return head[: max(3, len(head) // 2)], last
        return abbreviate_first_name(first, keep_middle=False), last
    if choice == 1:
        return abbreviate_first_name(first, keep_middle=False), last
    if choice == 2:
        # drop a middle initial if present, else initialize
        parts = first.split()
        if len(parts) > 1:
            return parts[0], last
        return abbreviate_first_name(first, keep_middle=False), last
    return first, typo(last, rng, errors=1)


#: venue rendering styles, from terse to verbose; the spread is what
#: defeats generic string matchers on venue names (§5.4.1)
_CONFERENCE_LONG = {
    "VLDB": "International Conference on Very Large Data Bases",
    "SIGMOD": "ACM SIGMOD International Conference on Management of Data",
}

_JOURNAL_LONG = {
    "TODS": "ACM Transactions on Database Systems",
    "VLDBJ": "The VLDB Journal",
    "SIGMOD Record": "ACM SIGMOD Record",
}


def _ordinal(number: int) -> str:
    if 10 <= number % 100 <= 20:
        suffix = "th"
    else:
        suffix = {1: "st", 2: "nd", 3: "rd"}.get(number % 10, "th")
    return f"{number}{suffix}"


def venue_string(kind: str, series: str, year: int, number: int,
                 style: str) -> str:
    """Render a venue in one of several real-world citation styles.

    ``number`` is the conference ordinal or the journal issue number.
    Styles: ``short`` ("VLDB 2002"), ``tight`` ("VLDB'02"),
    ``proceedings`` ("Proc. VLDB, 2002"), ``long`` ("28th International
    Conference on Very Large Data Bases"), ``issue`` (journals:
    "SIGMOD Record 31(4)").
    """
    if kind == "conference":
        if style == "short":
            return f"{series} {year}"
        if style == "tight":
            return f"{series}'{year % 100:02d}"
        if style == "proceedings":
            return f"Proc. {series}, {year}"
        if style == "long":
            return f"{_ordinal(number)} {_CONFERENCE_LONG[series]}"
        if style == "full":
            return (
                f"Proceedings of the {_ordinal(number)} "
                f"{_CONFERENCE_LONG[series]}, {year}"
            )
        raise ValueError(f"unknown conference style {style!r}")
    if kind == "journal":
        volume = number
        issue = (year % 4) + 1
        if style == "short":
            return f"{series} {year}"
        if style == "tight":
            return f"{series} {volume}({issue})"
        if style == "proceedings":
            return f"{series}, vol. {volume}, {year}"
        if style == "long":
            return f"{_JOURNAL_LONG[series]} {volume}({issue})"
        if style == "full":
            return (
                f"{_JOURNAL_LONG[series]}, Volume {volume}, "
                f"Issue {issue}, {year}"
            )
        raise ValueError(f"unknown journal style {style!r}")
    raise ValueError(f"unknown venue kind {kind!r}")


VENUE_STYLES = ("short", "tight", "proceedings", "long", "full")


def random_venue_string(kind: str, series: str, year: int, number: int,
                        rng: random.Random) -> str:
    """Draw a venue string in a random citation style."""
    return venue_string(kind, series, year, number, rng.choice(VENUE_STYLES))
