"""Title generation vocabulary and templates.

Publication titles are composed from a database-systems vocabulary via
templates, giving realistic token-frequency structure: shared head
nouns ("query processing", "data integration") create the near-miss
title collisions that make trigram matching imperfect, and the
recurring SIGMOD-Record-style column titles ("Editor's Notes", ...)
reproduce the repeated-title problem of §5.4.2.
"""

from __future__ import annotations

import random
from typing import List

ADJECTIVES: tuple[str, ...] = (
    "Adaptive", "Approximate", "Compact", "Continuous", "Declarative",
    "Distributed", "Dynamic", "Efficient", "Extensible", "Fast",
    "Flexible", "Generic", "Incremental", "Interactive", "Lightweight",
    "Optimal", "Parallel", "Probabilistic", "Robust", "Scalable",
    "Secure", "Self-Tuning", "Semantic", "Streaming", "Temporal",
    "Transactional", "Uniform", "Versioned",
)

TOPICS: tuple[str, ...] = (
    "Access Methods", "Aggregation", "Buffer Management", "Caching",
    "Cardinality Estimation", "Change Detection", "Concurrency Control",
    "Data Cleaning", "Data Integration", "Data Mining", "Data Placement",
    "Data Warehousing", "Deductive Databases", "Duplicate Detection",
    "Indexing", "Information Extraction", "Join Processing",
    "Load Balancing", "Materialized Views", "Metadata Management",
    "Object Matching", "Query Optimization", "Query Processing",
    "Query Rewriting", "Recovery", "Replication", "Schema Evolution",
    "Schema Matching", "Selectivity Estimation", "Similarity Search",
    "Spatial Indexing", "Storage Management", "Top-k Retrieval",
    "Transaction Management", "View Maintenance", "Workflow Management",
    "XML Processing",
)

CONTEXTS: tuple[str, ...] = (
    "Data Streams", "Data Warehouses", "Deep Web Sources",
    "Digital Libraries", "Distributed Systems", "Federated Databases",
    "Heterogeneous Sources", "Large Clusters", "Main-Memory Systems",
    "Mobile Environments", "Object-Relational Systems",
    "Peer-to-Peer Systems", "Relational Databases", "Scientific Archives",
    "Semistructured Data", "Sensor Networks", "Spatial Databases",
    "Web Databases", "Wide-Area Networks", "XML Repositories",
)

SYSTEM_NAMES: tuple[str, ...] = (
    "Aurora", "Borealis", "Cascade", "Cobalt", "Comet", "Condor",
    "Delta", "Fusion", "Gemini", "Granite", "Harmony", "Helios",
    "Hydra", "Lyra", "Magnet", "Mercury", "Meteor", "Mosaic", "Nimbus",
    "Orion", "Pegasus", "Phoenix", "Polaris", "Prism", "Quartz",
    "Quasar", "Sirius", "Spectra", "Sphinx", "Titan", "Vega", "Vortex",
    "Zephyr",
)

PROPERTIES: tuple[str, ...] = (
    "Complexity", "Consistency", "Correctness", "Expressiveness",
    "Performance", "Scalability", "Semantics", "Tractability",
)

#: recurring column titles that repeat across journal issues — the
#: §5.4.2 failure mode for pure title matching in SIGMOD Record
RECURRING_TITLES: tuple[str, ...] = (
    "Editor's Notes",
    "Chair's Message",
    "Reminiscences on Influential Papers",
    "Report on the Database Research Workshop",
    "Interview with a Database Pioneer",
    "Research Surveys Column",
    "Industry Perspectives",
    "Database Principles Column",
    "Standards Corner",
    "Treasurer's Report",
    "Conference and Journal Notices",
    "Letter from the Special Issue Editor",
)

_TEMPLATES = (
    "{adj} {topic} for {context}",
    "{adj} {topic} in {context}",
    "{topic} for {context}",
    "{topic} in {context}: A {adj2} Approach",
    "On the {property} of {topic}",
    "{system}: {adj} {topic} for {context}",
    "{system}: A System for {topic}",
    "Towards {adj} {topic}",
    "A Framework for {adj} {topic}",
    "Benchmarking {topic} in {context}",
    "{adj} Algorithms for {topic}",
    "Evaluating {topic} over {context}",
)


def generate_title(rng: random.Random) -> str:
    """Draw one research-paper title from the template grammar."""
    template = rng.choice(_TEMPLATES)
    return template.format(
        adj=rng.choice(ADJECTIVES),
        adj2=rng.choice(ADJECTIVES),
        topic=rng.choice(TOPICS),
        context=rng.choice(CONTEXTS),
        system=rng.choice(SYSTEM_NAMES),
        property=rng.choice(PROPERTIES),
    )


def generate_distinct_titles(count: int, rng: random.Random,
                             *, max_attempts_factor: int = 50) -> List[str]:
    """Draw ``count`` pairwise-distinct titles.

    The grammar has ~10^5 combinations; duplicates are re-rolled.  A
    hard attempt limit guards against pathological requests.
    """
    titles: List[str] = []
    seen: set[str] = set()
    attempts = 0
    limit = count * max_attempts_factor
    while len(titles) < count:
        if attempts >= limit:
            raise RuntimeError(
                f"could not generate {count} distinct titles "
                f"within {limit} attempts"
            )
        attempts += 1
        title = generate_title(rng)
        if title not in seen:
            seen.add(title)
            titles.append(title)
    return titles
