"""Derive the three dirty source views and their gold standard.

Each builder takes the ground-truth world and produces a
:class:`SourceBundle`: logical sources for publications / authors /
venues, the association mappings the neighborhood matcher consumes
(publication-author, publication-venue, co-author), and bookkeeping
that ties source ids back to true ids so the gold standard can be
assembled exactly.

Per-source characteristics follow §5.1 of the paper — see the module
docstring of :mod:`repro.datagen` and DESIGN.md §3 for the
substitution rationale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.mapping import Mapping, MappingKind
from repro.datagen.corruption import (
    abbreviate_first_name,
    corrupt_title,
    name_variant,
    random_venue_string,
    typo,
    venue_string,
)
from repro.datagen.gold import GoldStandard
from repro.datagen.names import full_name
from repro.datagen.world import (
    World,
    WorldConfig,
    generate_world,
)
from repro.model.smm import MappingType, SourceMappingModel
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.sim.tokenize import normalize


@dataclass
class SourceBundle:
    """One derived source: logical sources plus association mappings."""

    name: str
    physical: PhysicalSource
    publications: LogicalSource
    authors: LogicalSource
    venues: Optional[LogicalSource]
    pub_author: Mapping
    author_pub: Mapping
    pub_venue: Optional[Mapping]
    venue_pub: Optional[Mapping]
    co_author: Mapping
    #: source pub id -> true pub id
    true_pub: Dict[str, str] = field(default_factory=dict)
    #: true pub id -> source pub ids (GS may have several)
    pubs_of_true: Dict[str, List[str]] = field(default_factory=dict)
    #: source author id -> true author id
    true_author: Dict[str, str] = field(default_factory=dict)
    #: true author id -> source author ids (DBLP duplicates, GS slugs)
    authors_of_true: Dict[str, List[str]] = field(default_factory=dict)
    #: source venue id -> true venue id
    true_venue: Dict[str, str] = field(default_factory=dict)
    #: extra mappings, e.g. GS -> ACM link same-mapping
    extras: Dict[str, Mapping] = field(default_factory=dict)

    def register_pub(self, source_id: str, true_id: str) -> None:
        self.true_pub[source_id] = true_id
        self.pubs_of_true.setdefault(true_id, []).append(source_id)

    def register_author(self, source_id: str, true_id: str) -> None:
        self.true_author[source_id] = true_id
        ids = self.authors_of_true.setdefault(true_id, [])
        if source_id not in ids:
            ids.append(source_id)


@dataclass
class GsConfig:
    """Google-Scholar noise model knobs."""

    coverage: float = 0.97
    duplicate_rate: float = 0.35
    max_entries_per_pub: int = 4
    author_drop_rate: float = 0.15
    max_authors: int = 6
    year_missing_rate: float = 0.30
    year_off_by_one_rate: float = 0.05
    link_recall: float = 0.216
    link_error_rate: float = 0.03
    # title extraction noise (see corruption.corrupt_title)
    title_typo_rate: float = 0.55
    title_ocr_rate: float = 0.25
    title_truncate_rate: float = 0.12
    title_drop_word_rate: float = 0.12
    title_case_rate: float = 0.05


@dataclass
class DblpConfig:
    """DBLP derivation knobs (duplicate author injection)."""

    duplicate_authors: int = 12
    min_pubs_for_duplicate: int = 4


@dataclass
class AcmConfig:
    """ACM DL derivation knobs."""

    #: conference editions ACM misses (paper: VLDB 2002/2003)
    missing_venues: Tuple[Tuple[str, int], ...] = (
        ("VLDB", 2002), ("VLDB", 2003),
    )
    title_noise_rate: float = 0.03
    #: probability of rendering an author's first name as initials
    author_initial_rate: float = 0.12
    #: probability of dropping a middle initial present in the true name
    drop_middle_rate: float = 0.5


def _co_author_mapping(pub_author: Mapping, lds_name: str) -> Mapping:
    """Derive the symmetric co-author association from publication-author."""
    co = Mapping(lds_name, lds_name, kind=MappingKind.ASSOCIATION)
    for _, row in pub_author.by_domain.items():
        authors = list(row)
        for i, author_a in enumerate(authors):
            for author_b in authors[i + 1:]:
                co.add(author_a, author_b, 1.0)
                co.add(author_b, author_a, 1.0)
    return co


def _display_authors(names: List[str]) -> str:
    return ", ".join(names)


# ----------------------------------------------------------------------
# DBLP
# ----------------------------------------------------------------------

def build_dblp(world: World, config: Optional[DblpConfig] = None,
               *, seed: int = 101) -> SourceBundle:
    """DBLP: curated and complete, with injected duplicate authors."""
    config = config if config is not None else DblpConfig()
    rng = random.Random(seed)

    physical = PhysicalSource("DBLP", "manually curated bibliography",
                              downloadable=True)
    pubs = LogicalSource(physical, ObjectType("Publication"))
    authors = LogicalSource(physical, ObjectType("Author"))
    venues = LogicalSource(physical, ObjectType("Venue"))

    bundle = SourceBundle(
        name="DBLP", physical=physical, publications=pubs, authors=authors,
        venues=venues,
        pub_author=Mapping(pubs.name, authors.name, MappingKind.ASSOCIATION),
        author_pub=Mapping(authors.name, pubs.name, MappingKind.ASSOCIATION),
        pub_venue=Mapping(pubs.name, venues.name, MappingKind.ASSOCIATION),
        venue_pub=Mapping(venues.name, pubs.name, MappingKind.ASSOCIATION),
        co_author=Mapping(authors.name, authors.name, MappingKind.ASSOCIATION),
    )

    # -- duplicate author selection -------------------------------------
    pub_counts: Dict[str, int] = {}
    for pub in world.publications.values():
        for author_id in pub.author_ids:
            pub_counts[author_id] = pub_counts.get(author_id, 0) + 1
    eligible = sorted(
        aid for aid, count in pub_counts.items()
        if count >= config.min_pubs_for_duplicate
    )
    rng.shuffle(eligible)
    duplicated = eligible[:config.duplicate_authors]
    #: true author id -> set of true pub ids credited to the duplicate
    duplicate_pubs: Dict[str, set] = {}
    for author_id in duplicated:
        authored = [pub.id for pub in world.publications.values()
                    if author_id in pub.author_ids]
        rng.shuffle(authored)
        take = max(1, int(len(authored) * rng.uniform(0.3, 0.6)))
        duplicate_pubs[author_id] = set(authored[:take])

    # -- venues -----------------------------------------------------------
    for venue in world.venues.values():
        venue_id = f"dblp:{venue.id}"
        # DBLP style: terse series + year / volume(issue)
        name = venue_string(venue.kind, venue.series, venue.year,
                            venue.number, "tight")
        venues.add_record(
            venue_id, name=name, kind=venue.kind, series=venue.series,
            year=venue.year,
        )
        bundle.true_venue[venue_id] = venue.id

    # -- authors -----------------------------------------------------------
    appearing = {
        author_id for pub in world.publications.values()
        for author_id in pub.author_ids
    }
    #: (true author id, credited pub id) -> dblp author id to use
    def dblp_author_id(author_id: str, pub_id: str) -> str:
        if author_id in duplicate_pubs and pub_id in duplicate_pubs[author_id]:
            return f"dblp:{author_id}:dup"
        return f"dblp:{author_id}"

    for author_id in sorted(appearing):
        author = world.authors[author_id]
        main_id = f"dblp:{author_id}"
        authors.add_record(main_id, name=author.name)
        bundle.register_author(main_id, author_id)
        if author_id in duplicate_pubs:
            first, last = name_variant(author.first, author.last, rng)
            dup_id = f"dblp:{author_id}:dup"
            authors.add_record(dup_id, name=full_name(first, last))
            bundle.register_author(dup_id, author_id)

    # -- publications -------------------------------------------------------
    for pub in world.publications.values():
        pub_id = f"dblp:{pub.id}"
        credited = [dblp_author_id(aid, pub.id) for aid in pub.author_ids]
        names = [authors.require(aid).get("name") for aid in credited]
        venue = world.venues[pub.venue_id]
        pubs.add_record(
            pub_id,
            title=pub.title,
            year=pub.year,
            pages=pub.pages,
            venue=venue_string(venue.kind, venue.series, venue.year,
                               venue.number, "tight"),
            authors=_display_authors(names),
        )
        bundle.register_pub(pub_id, pub.id)
        venue_source_id = f"dblp:{pub.venue_id}"
        bundle.pub_venue.add(pub_id, venue_source_id, 1.0)
        bundle.venue_pub.add(venue_source_id, pub_id, 1.0)
        for author_source_id in credited:
            bundle.pub_author.add(pub_id, author_source_id, 1.0)
            bundle.author_pub.add(author_source_id, pub_id, 1.0)

    bundle.co_author = _co_author_mapping(bundle.pub_author, authors.name)
    return bundle


# ----------------------------------------------------------------------
# ACM Digital Library
# ----------------------------------------------------------------------

def build_acm(world: World, config: Optional[AcmConfig] = None,
              *, seed: int = 202) -> SourceBundle:
    """ACM DL: clean but incomplete; numeric keys; citation counts."""
    config = config if config is not None else AcmConfig()
    rng = random.Random(seed)

    physical = PhysicalSource("ACM", "ACM Digital Library",
                              downloadable=False)
    pubs = LogicalSource(physical, ObjectType("Publication"))
    authors = LogicalSource(physical, ObjectType("Author"))
    venues = LogicalSource(physical, ObjectType("Venue"))

    bundle = SourceBundle(
        name="ACM", physical=physical, publications=pubs, authors=authors,
        venues=venues,
        pub_author=Mapping(pubs.name, authors.name, MappingKind.ASSOCIATION),
        author_pub=Mapping(authors.name, pubs.name, MappingKind.ASSOCIATION),
        pub_venue=Mapping(pubs.name, venues.name, MappingKind.ASSOCIATION),
        venue_pub=Mapping(venues.name, pubs.name, MappingKind.ASSOCIATION),
        co_author=Mapping(authors.name, authors.name, MappingKind.ASSOCIATION),
    )

    missing = set(config.missing_venues)

    def venue_missing(true_venue_id: str) -> bool:
        venue = world.venues[true_venue_id]
        return (venue.series, venue.year) in missing

    # -- venues ---------------------------------------------------------
    venue_counter = 0
    venue_ids: Dict[str, str] = {}
    for venue in world.venues.values():
        if venue_missing(venue.id):
            continue
        venue_counter += 1
        venue_id = f"acm:v{venue_counter:04d}"
        venue_ids[venue.id] = venue_id
        # ACM style: verbose proceedings / journal issue strings
        name = venue_string(venue.kind, venue.series, venue.year,
                            venue.number, "full")
        venues.add_record(
            venue_id, name=name, kind=venue.kind, series=venue.series,
            year=venue.year,
        )
        bundle.true_venue[venue_id] = venue.id

    # -- authors ----------------------------------------------------------
    def acm_render_name(author_id: str) -> str:
        author = world.authors[author_id]
        first = author.first
        if " " in first and rng.random() < config.drop_middle_rate:
            first = first.split()[0]
        if rng.random() < config.author_initial_rate:
            first = abbreviate_first_name(first, keep_middle=False)
        return full_name(first, author.last)

    appearing = sorted({
        author_id
        for pub in world.publications.values()
        if not venue_missing(pub.venue_id)
        for author_id in pub.author_ids
    })
    author_ids: Dict[str, str] = {}
    for counter, true_id in enumerate(appearing, start=1):
        source_id = f"acm:a{counter:05d}"
        author_ids[true_id] = source_id
        authors.add_record(source_id, name=acm_render_name(true_id))
        bundle.register_author(source_id, true_id)

    # -- publications -------------------------------------------------------
    pub_counter = 0
    for pub in world.publications.values():
        if venue_missing(pub.venue_id):
            continue
        pub_counter += 1
        pub_id = f"P-{600000 + pub_counter}"
        title = pub.title
        if rng.random() < config.title_noise_rate:
            title = typo(title, rng, errors=1)
        venue = world.venues[pub.venue_id]
        names = [authors.require(author_ids[aid]).get("name")
                 for aid in pub.author_ids]
        pubs.add_record(
            pub_id,
            title=title,
            year=pub.year,
            citations=pub.citations,
            venue=venue_string(venue.kind, venue.series, venue.year,
                               venue.number, "full"),
            authors=_display_authors(names),
        )
        bundle.register_pub(pub_id, pub.id)
        venue_source_id = venue_ids[pub.venue_id]
        bundle.pub_venue.add(pub_id, venue_source_id, 1.0)
        bundle.venue_pub.add(venue_source_id, pub_id, 1.0)
        for true_author in pub.author_ids:
            author_source_id = author_ids[true_author]
            bundle.pub_author.add(pub_id, author_source_id, 1.0)
            bundle.author_pub.add(author_source_id, pub_id, 1.0)

    bundle.co_author = _co_author_mapping(bundle.pub_author, authors.name)
    return bundle


# ----------------------------------------------------------------------
# Google Scholar
# ----------------------------------------------------------------------

def build_gs(world: World, acm: SourceBundle,
             config: Optional[GsConfig] = None,
             *, seed: int = 303) -> SourceBundle:
    """Google Scholar: simulated crawl with duplicates and dirty data.

    Also fabricates the *pre-existing* GS -> ACM link same-mapping the
    paper exploits in §5.3 ("we utilize an existing mapping by
    extracting existing links in the GS publication entries linking to
    ACM"), with deliberately poor recall.
    """
    config = config if config is not None else GsConfig()
    rng = random.Random(seed)

    physical = PhysicalSource("GS", "Google Scholar (crawled)",
                              downloadable=False)
    pubs = LogicalSource(physical, ObjectType("Publication"))
    authors = LogicalSource(physical, ObjectType("Author"))

    bundle = SourceBundle(
        name="GS", physical=physical, publications=pubs, authors=authors,
        venues=None,
        pub_author=Mapping(pubs.name, authors.name, MappingKind.ASSOCIATION),
        author_pub=Mapping(authors.name, pubs.name, MappingKind.ASSOCIATION),
        pub_venue=None,
        venue_pub=None,
        co_author=Mapping(authors.name, authors.name, MappingKind.ASSOCIATION),
    )

    def gs_author_id(true_author_id: str) -> str:
        """GS authors are keyed by their abbreviated display name, so
        distinct people with the same initials collapse into one
        instance — the paper's "ambiguous author representations"."""
        author = world.authors[true_author_id]
        display = full_name(
            abbreviate_first_name(author.first, keep_middle=False),
            author.last,
        )
        slug = normalize(display).replace(" ", "_")
        source_id = f"gs:author:{slug}"
        if source_id not in authors:
            authors.add_record(source_id, name=display)
        bundle.register_author(source_id, true_author_id)
        return source_id

    links = Mapping(pubs.name, acm.publications.name, MappingKind.SAME,
                    name="GS.LinksToACM")
    acm_pub_ids = acm.publications.ids()

    entry_counter = 0
    for pub in world.publications.values():
        if rng.random() >= config.coverage:
            continue
        entries = 1
        while (entries < config.max_entries_per_pub
               and rng.random() < config.duplicate_rate):
            entries += 1
        for _ in range(entries):
            entry_counter += 1
            entry_id = f"gs:{entry_counter:06d}"
            title = corrupt_title(
                pub.title, rng,
                typo_probability=config.title_typo_rate,
                ocr_probability=config.title_ocr_rate,
                truncate_probability=config.title_truncate_rate,
                drop_probability=config.title_drop_word_rate,
                case_probability=config.title_case_rate,
            )
            venue = world.venues[pub.venue_id]
            attributes: Dict[str, object] = {
                "title": title,
                "venue": random_venue_string(
                    venue.kind, venue.series, venue.year, venue.number, rng
                ),
                "citations": max(0, int(pub.citations
                                        * rng.uniform(0.3, 1.0))),
            }
            if rng.random() >= config.year_missing_rate:
                year = pub.year
                if rng.random() < config.year_off_by_one_rate:
                    year += rng.choice((-1, 1))
                attributes["year"] = year
            # incomplete, abbreviated author lists; first author kept
            kept_authors: List[str] = []
            for index, true_author in enumerate(
                    pub.author_ids[:config.max_authors]):
                if index > 0 and rng.random() < config.author_drop_rate:
                    continue
                kept_authors.append(true_author)
            author_source_ids = [gs_author_id(aid) for aid in kept_authors]
            attributes["authors"] = _display_authors([
                authors.require(aid).get("name") for aid in author_source_ids
            ])
            pubs.add_record(entry_id, **attributes)
            bundle.register_pub(entry_id, pub.id)
            for author_source_id in author_source_ids:
                bundle.pub_author.add(entry_id, author_source_id, 1.0)
                bundle.author_pub.add(author_source_id, entry_id, 1.0)
            # the sparse, pre-existing link mapping to ACM
            acm_counterparts = acm.pubs_of_true.get(pub.id, [])
            if acm_counterparts and rng.random() < config.link_recall:
                if rng.random() < config.link_error_rate:
                    links.add(entry_id, rng.choice(acm_pub_ids), 1.0)
                else:
                    links.add(entry_id, acm_counterparts[0], 1.0)

    bundle.co_author = _co_author_mapping(bundle.pub_author, authors.name)
    bundle.extras["links_to_acm"] = links
    return bundle


# ----------------------------------------------------------------------
# gold standard
# ----------------------------------------------------------------------

def build_gold(world: World, dblp: SourceBundle, acm: SourceBundle,
               gs: SourceBundle,
               duplicated_dblp_authors: Optional[Mapping] = None
               ) -> GoldStandard:
    """Assemble every perfect mapping from the builders' bookkeeping."""
    gold = GoldStandard()

    def cross_pub_gold(left: SourceBundle, right: SourceBundle) -> Mapping:
        mapping = Mapping(left.publications.name, right.publications.name,
                          MappingKind.SAME)
        for true_id, left_ids in left.pubs_of_true.items():
            right_ids = right.pubs_of_true.get(true_id)
            if not right_ids:
                continue
            for left_id in left_ids:
                for right_id in right_ids:
                    mapping.add(left_id, right_id, 1.0)
        return mapping

    def cross_author_gold(left: SourceBundle, right: SourceBundle) -> Mapping:
        mapping = Mapping(left.authors.name, right.authors.name,
                          MappingKind.SAME)
        for true_id, left_ids in left.authors_of_true.items():
            right_ids = right.authors_of_true.get(true_id)
            if not right_ids:
                continue
            for left_id in left_ids:
                for right_id in right_ids:
                    mapping.add(left_id, right_id, 1.0)
        return mapping

    gold.add("publications", cross_pub_gold(dblp, acm))
    gold.add("publications", cross_pub_gold(dblp, gs))
    gold.add("publications", cross_pub_gold(gs, acm))
    gold.add("authors", cross_author_gold(dblp, acm))
    gold.add("authors", cross_author_gold(dblp, gs))

    venue_gold = Mapping(dblp.venues.name, acm.venues.name, MappingKind.SAME)
    acm_venue_by_true = {true: source
                         for source, true in acm.true_venue.items()}
    for dblp_venue_id, true_id in dblp.true_venue.items():
        acm_venue_id = acm_venue_by_true.get(true_id)
        if acm_venue_id is not None:
            venue_gold.add(dblp_venue_id, acm_venue_id, 1.0)
    gold.add("venues", venue_gold)

    if duplicated_dblp_authors is not None:
        gold.add("author-duplicates", duplicated_dblp_authors)
    return gold


def _dblp_duplicate_gold(dblp: SourceBundle) -> Mapping:
    """Self-mapping of injected DBLP duplicate author pairs."""
    mapping = Mapping(dblp.authors.name, dblp.authors.name, MappingKind.SAME)
    for source_ids in dblp.authors_of_true.values():
        if len(source_ids) < 2:
            continue
        for i, id_a in enumerate(source_ids):
            for id_b in source_ids[i + 1:]:
                mapping.add(id_a, id_b, 1.0)
                mapping.add(id_b, id_a, 1.0)
    return mapping


# ----------------------------------------------------------------------
# the assembled dataset
# ----------------------------------------------------------------------

@dataclass
class BibliographicDataset:
    """Everything the evaluation needs, in one object."""

    world: World
    dblp: SourceBundle
    acm: SourceBundle
    gs: SourceBundle
    gold: GoldStandard
    smm: SourceMappingModel

    def bundle(self, name: str) -> SourceBundle:
        """Resolve a bundle by physical source name."""
        bundles = {"DBLP": self.dblp, "ACM": self.acm, "GS": self.gs}
        bundle = bundles.get(name.upper())
        if bundle is None:
            raise KeyError(f"unknown source {name!r}; have {sorted(bundles)}")
        return bundle


#: scale presets: overrides applied to WorldConfig
SCALE_PRESETS: Dict[str, Dict[str, object]] = {
    "tiny": {
        "start_year": 2002, "end_year": 2003,
        "conference_pubs": (6, 10), "journal_pubs": (2, 3),
        "magazine_pubs": (2, 4), "clusters": 10,
    },
    "small": {
        "scale": 0.35, "clusters": 30,
    },
    "paper": {
        "scale": 1.0,
    },
}


def _build_smm(dblp: SourceBundle, acm: SourceBundle,
               gs: SourceBundle) -> SourceMappingModel:
    smm = SourceMappingModel()
    smm.add_mapping_type(MappingType(
        "PubAuthor", "Publication", "Author", "n:m", inverse="AuthorPub"))
    smm.add_mapping_type(MappingType(
        "AuthorPub", "Author", "Publication", "n:m", inverse="PubAuthor"))
    smm.add_mapping_type(MappingType(
        "PubVenue", "Publication", "Venue", "n:1", inverse="VenuePub"))
    smm.add_mapping_type(MappingType(
        "VenuePub", "Venue", "Publication", "1:n", inverse="PubVenue"))
    smm.add_mapping_type(MappingType(
        "CoAuthor", "Author", "Author", "n:m", inverse="CoAuthor"))
    for bundle in (dblp, acm, gs):
        smm.add_source(bundle.publications)
        smm.add_source(bundle.authors)
        if bundle.venues is not None:
            smm.add_source(bundle.venues)
        prefix = bundle.name
        smm.register_mapping(f"{prefix}.PubAuthor", bundle.pub_author,
                             "PubAuthor")
        smm.register_mapping(f"{prefix}.AuthorPub", bundle.author_pub,
                             "AuthorPub")
        if bundle.pub_venue is not None:
            smm.register_mapping(f"{prefix}.PubVenue", bundle.pub_venue,
                                 "PubVenue")
        if bundle.venue_pub is not None:
            smm.register_mapping(f"{prefix}.VenuePub", bundle.venue_pub,
                                 "VenuePub")
        smm.register_mapping(f"{prefix}.CoAuthor", bundle.co_author,
                             "CoAuthor")
    smm.register_mapping("GS.LinksToACM", gs.extras["links_to_acm"])
    return smm


def build_dataset(scale: str = "small", *, seed: int = 7,
                  world_config: Optional[WorldConfig] = None,
                  dblp_config: Optional[DblpConfig] = None,
                  acm_config: Optional[AcmConfig] = None,
                  gs_config: Optional[GsConfig] = None
                  ) -> BibliographicDataset:
    """Generate a full evaluation dataset at the given scale preset.

    ``scale`` is ``"tiny"`` (unit tests), ``"small"`` (default
    benchmarks) or ``"paper"`` (approximates the paper's DBLP/ACM
    sizes).  Pass ``world_config`` to bypass the presets entirely.
    """
    if world_config is None:
        overrides = SCALE_PRESETS.get(scale)
        if overrides is None:
            raise KeyError(
                f"unknown scale {scale!r}; known: {sorted(SCALE_PRESETS)}"
            )
        world_config = WorldConfig(seed=seed, **overrides)
    world = generate_world(world_config)
    dblp = build_dblp(world, dblp_config, seed=seed + 101)
    acm = build_acm(world, acm_config, seed=seed + 202)
    gs = build_gs(world, acm, gs_config, seed=seed + 303)
    gold = build_gold(world, dblp, acm, gs,
                      duplicated_dblp_authors=_dblp_duplicate_gold(dblp))
    smm = _build_smm(dblp, acm, gs)
    return BibliographicDataset(world, dblp, acm, gs, gold, smm)


def dataset_statistics(dataset: BibliographicDataset) -> Dict[str, Dict[str, int]]:
    """Instance counts per source — the reproduction of Table 1."""
    def counts(bundle: SourceBundle) -> Dict[str, int]:
        return {
            "venues": len(bundle.venues) if bundle.venues is not None else 0,
            "publications": len(bundle.publications),
            "authors": len(bundle.authors),
        }

    return {
        "DBLP": counts(dataset.dblp),
        "ACM": counts(dataset.acm),
        "GS": counts(dataset.gs),
    }
