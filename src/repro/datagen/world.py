"""Ground-truth world generation.

The world is the "real" bibliographic universe from which the three
dirty source views are derived: authors with community structure,
venues (two conference series and three journals with yearly issues,
mirroring the paper's VLDB / SIGMOD / TODS / VLDB Journal / SIGMOD
Record 1994-2003 corpus), and publications with titles, author lists,
pages and citation counts.

Two deliberate quirks reproduce evaluation phenomena:

* a fraction of conference papers get a *journal version* the next
  year with the identical title (Figure 7: "p2 and p3 are assumed to
  have the same title, e.g., a conference and a journal version of a
  paper");
* SIGMOD-Record-style issues carry *recurring column titles* that
  repeat across issues ("Editor's Notes", ... — §5.4.2's reason why
  string matching fails for journals).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.datagen.names import full_name, generate_author_names
from repro.datagen.text import RECURRING_TITLES, generate_distinct_titles


@dataclass(frozen=True)
class TrueAuthor:
    """A real-world author."""

    id: str
    first: str
    last: str

    @property
    def name(self) -> str:
        return full_name(self.first, self.last)


@dataclass(frozen=True)
class TrueVenue:
    """A venue instance: one conference edition or one journal issue."""

    id: str
    kind: str           # "conference" | "journal"
    series: str         # "VLDB", "SIGMOD", "TODS", ...
    year: int
    number: int         # conference ordinal / journal volume
    issue: int = 0      # journal issue within the year (0 for conferences)


@dataclass(frozen=True)
class TruePublication:
    """A real-world publication."""

    id: str
    title: str
    venue_id: str
    year: int
    author_ids: Tuple[str, ...]
    pages: str
    citations: int
    #: recurring column (journal front matter etc.)
    recurring: bool = False
    #: id of the conference paper this journal article extends, if any
    version_of: Optional[str] = None


@dataclass
class WorldConfig:
    """Knobs of the world generator.

    ``scale`` multiplies per-venue publication counts; the presets in
    :func:`repro.datagen.sources.build_dataset` map the familiar
    ``tiny`` / ``small`` / ``paper`` sizes onto these knobs.
    """

    seed: int = 7
    start_year: int = 1994
    end_year: int = 2003
    conferences: Tuple[str, ...] = ("VLDB", "SIGMOD")
    journals: Tuple[str, ...] = ("TODS", "VLDBJ", "SIGMOD Record")
    #: per conference edition publication count range (before scale)
    conference_pubs: Tuple[int, int] = (60, 120)
    #: journal issues per year
    issues_per_year: int = 4
    #: per journal issue publication count range (before scale)
    journal_pubs: Tuple[int, int] = (2, 8)
    #: SIGMOD-Record-like magazines run more, shorter items
    magazine_pubs: Tuple[int, int] = (6, 14)
    #: recurring columns per magazine issue (0..1 keeps the §5.4.2
    #: repeated-title effect visible without flooding precision)
    recurring_per_issue: Tuple[int, int] = (0, 1)
    #: distinct author pool = factor * expected publications
    author_pool_factor: float = 1.3
    #: research communities shaping co-authorship
    clusters: int = 40
    #: probability an author is drawn outside the publication's cluster
    cross_cluster_rate: float = 0.15
    #: probability a co-author is drawn from the first author's previous
    #: collaborators — repeat collaboration is what makes co-authorship
    #: a usable duplicate-detection signal (§4.3, Table 9)
    collaboration_affinity: float = 0.45
    #: fraction of conference papers that get a same-title journal version
    journal_version_rate: float = 0.03
    #: multiplier on publication counts
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.start_year > self.end_year:
            raise ValueError("start_year must not exceed end_year")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if not self.conferences and not self.journals:
            raise ValueError("need at least one venue series")

    def years(self) -> range:
        return range(self.start_year, self.end_year + 1)


#: first edition years used to compute conference ordinals / volumes
_SERIES_EPOCH = {
    "VLDB": 1974,          # VLDB 2001 -> 27th
    "SIGMOD": 1974,
    "TODS": 1975,          # volume = year - epoch
    "VLDBJ": 1991,
    "SIGMOD Record": 1971,
}

#: author-count distribution (1..8 authors; mean ~3, tail to 8)
_AUTHOR_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8)
_AUTHOR_COUNT_WEIGHTS = (14, 24, 26, 16, 9, 6, 3, 2)


@dataclass
class World:
    """The generated ground truth."""

    config: WorldConfig
    authors: Dict[str, TrueAuthor] = field(default_factory=dict)
    venues: Dict[str, TrueVenue] = field(default_factory=dict)
    publications: Dict[str, TruePublication] = field(default_factory=dict)

    def publications_of_venue(self, venue_id: str) -> List[TruePublication]:
        return [pub for pub in self.publications.values()
                if pub.venue_id == venue_id]

    def publications_of_author(self, author_id: str) -> List[TruePublication]:
        return [pub for pub in self.publications.values()
                if author_id in pub.author_ids]

    def conference_publications(self) -> List[TruePublication]:
        return [pub for pub in self.publications.values()
                if self.venues[pub.venue_id].kind == "conference"]

    def journal_publications(self) -> List[TruePublication]:
        return [pub for pub in self.publications.values()
                if self.venues[pub.venue_id].kind == "journal"]

    def statistics(self) -> Dict[str, int]:
        """Instance counts (the raw material of Table 1)."""
        appearing_authors = {
            author_id
            for pub in self.publications.values()
            for author_id in pub.author_ids
        }
        return {
            "venues": len(self.venues),
            "publications": len(self.publications),
            "authors": len(appearing_authors),
        }


def _scaled_range(bounds: Tuple[int, int], scale: float,
                  rng: random.Random) -> int:
    low = max(1, round(bounds[0] * scale))
    high = max(low, round(bounds[1] * scale))
    return rng.randint(low, high)


def _expected_publications(config: WorldConfig) -> int:
    years = len(list(config.years()))
    total = 0.0
    conf_mid = sum(config.conference_pubs) / 2
    total += len(config.conferences) * years * conf_mid
    for journal in config.journals:
        bounds = (config.magazine_pubs if journal == "SIGMOD Record"
                  else config.journal_pubs)
        total += years * config.issues_per_year * (sum(bounds) / 2)
    return max(1, int(total * config.scale))


def generate_world(config: Optional[WorldConfig] = None) -> World:
    """Generate a deterministic world from ``config`` (or the default)."""
    config = config if config is not None else WorldConfig()
    rng = random.Random(config.seed)
    world = World(config)

    # ------------------------------------------------------------------
    # authors with community structure and pareto productivity weights
    # ------------------------------------------------------------------
    pool_size = max(10, int(_expected_publications(config)
                            * config.author_pool_factor))
    names = generate_author_names(pool_size, rng)
    cluster_members: List[List[str]] = [[] for _ in range(config.clusters)]
    author_weights: Dict[str, float] = {}
    for index, (first, last) in enumerate(names):
        author = TrueAuthor(f"a{index:05d}", first, last)
        world.authors[author.id] = author
        cluster_members[rng.randrange(config.clusters)].append(author.id)
        author_weights[author.id] = rng.paretovariate(1.5)
    # drop empty clusters (tiny scales)
    cluster_members = [members for members in cluster_members if members]

    collaborators: Dict[str, List[str]] = {}

    def draw_authors(count: int, cluster_index: int) -> Tuple[str, ...]:
        chosen: List[str] = []
        members = cluster_members[cluster_index]
        weights = [author_weights[a] for a in members]
        attempts = 0
        while len(chosen) < count and attempts < count * 30:
            attempts += 1
            known = collaborators.get(chosen[0]) if chosen else None
            if chosen and known and rng.random() < config.collaboration_affinity:
                candidate = rng.choice(known)
            elif rng.random() < config.cross_cluster_rate or not members:
                other = cluster_members[rng.randrange(len(cluster_members))]
                candidate = rng.choices(
                    other, weights=[author_weights[a] for a in other]
                )[0]
            else:
                candidate = rng.choices(members, weights=weights)[0]
            if candidate not in chosen:
                chosen.append(candidate)
        team = tuple(chosen) if chosen else (members[0],)
        # repeated entries deliberately up-weight frequent partners
        for author in team:
            partners = collaborators.setdefault(author, [])
            partners.extend(other for other in team if other != author)
        return team

    # ------------------------------------------------------------------
    # venues
    # ------------------------------------------------------------------
    for series in config.conferences:
        for year in config.years():
            venue = TrueVenue(
                id=f"v:{series}:{year}",
                kind="conference", series=series, year=year,
                number=year - _SERIES_EPOCH[series],
            )
            world.venues[venue.id] = venue
    for series in config.journals:
        for year in config.years():
            for issue in range(1, config.issues_per_year + 1):
                venue = TrueVenue(
                    id=f"v:{series}:{year}:{issue}",
                    kind="journal", series=series, year=year,
                    number=year - _SERIES_EPOCH[series], issue=issue,
                )
                world.venues[venue.id] = venue

    # ------------------------------------------------------------------
    # publications
    # ------------------------------------------------------------------
    # magazine editors author the recurring columns consistently
    editors = {
        journal: rng.choice(list(world.authors))
        for journal in config.journals
    }
    pub_counter = 0

    def next_pub_id() -> str:
        nonlocal pub_counter
        pub_counter += 1
        return f"p{pub_counter:05d}"

    def make_pages() -> str:
        start = rng.randint(1, 600)
        return f"{start}-{start + rng.randint(5, 30)}"

    def make_citations() -> int:
        return min(2000, int(rng.paretovariate(1.1)) - 1)

    # conference papers first (journal versions reference them)
    conference_pub_ids: List[str] = []
    title_budget = _expected_publications(config) * 2
    titles = generate_distinct_titles(title_budget, rng)
    title_cursor = 0

    def next_title() -> str:
        nonlocal title_cursor
        title = titles[title_cursor]
        title_cursor += 1
        return title

    for venue in list(world.venues.values()):
        if venue.kind != "conference":
            continue
        for _ in range(_scaled_range(config.conference_pubs,
                                     config.scale, rng)):
            pub = TruePublication(
                id=next_pub_id(),
                title=next_title(),
                venue_id=venue.id,
                year=venue.year,
                author_ids=draw_authors(
                    rng.choices(_AUTHOR_COUNTS,
                                weights=_AUTHOR_COUNT_WEIGHTS)[0],
                    rng.randrange(len(cluster_members)),
                ),
                pages=make_pages(),
                citations=make_citations(),
            )
            world.publications[pub.id] = pub
            conference_pub_ids.append(pub.id)

    # journal issues; some slots become same-title journal versions
    version_candidates = [
        pid for pid in conference_pub_ids
        if world.publications[pid].year < config.end_year
    ]
    rng.shuffle(version_candidates)
    version_quota = int(len(conference_pub_ids) * config.journal_version_rate)

    for venue in list(world.venues.values()):
        if venue.kind != "journal":
            continue
        is_magazine = venue.series == "SIGMOD Record"
        bounds = config.magazine_pubs if is_magazine else config.journal_pubs
        slots = _scaled_range(bounds, config.scale, rng)
        if is_magazine:
            low, high = config.recurring_per_issue
            for _ in range(rng.randint(low, min(high, len(RECURRING_TITLES)))):
                pub = TruePublication(
                    id=next_pub_id(),
                    title=rng.choice(RECURRING_TITLES),
                    venue_id=venue.id,
                    year=venue.year,
                    author_ids=(editors[venue.series],),
                    pages=make_pages(),
                    citations=0,
                    recurring=True,
                )
                world.publications[pub.id] = pub
        for _ in range(slots):
            original: Optional[TruePublication] = None
            if (not is_magazine and version_quota > 0 and version_candidates):
                candidate = world.publications[version_candidates[-1]]
                if candidate.year < venue.year:
                    original = candidate
                    version_candidates.pop()
                    version_quota -= 1
            if original is not None:
                pub = TruePublication(
                    id=next_pub_id(),
                    title=original.title,
                    venue_id=venue.id,
                    year=venue.year,
                    author_ids=original.author_ids,
                    pages=make_pages(),
                    citations=make_citations(),
                    version_of=original.id,
                )
            else:
                pub = TruePublication(
                    id=next_pub_id(),
                    title=next_title(),
                    venue_id=venue.id,
                    year=venue.year,
                    author_ids=draw_authors(
                        rng.choices(_AUTHOR_COUNTS,
                                    weights=_AUTHOR_COUNT_WEIGHTS)[0],
                        rng.randrange(len(cluster_members)),
                    ),
                    pages=make_pages(),
                    citations=make_citations(),
                )
            world.publications[pub.id] = pub

    return world
