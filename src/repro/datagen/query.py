"""Query-only access to web sources (paper §2.1, §5.1).

"Web sources like Google Scholar do not support downloading all their
data but only support querying selected subsets.  Hence, object
matching needs to be performed on the results of such queries."  And
for the evaluation corpus: "For Google Scholar we had to send numerous
queries for generating the relevant Google Scholar references.  Those
queries contain the publication titles as well as venue names from
the considered DBLP publications."

:class:`QueryClient` wraps a logical source behind a keyword-search
interface (an inverted token index with overlap ranking);
:func:`harvest_by_titles` replays the paper's harvest procedure.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.model.entity import ObjectInstance
from repro.model.source import LogicalSource
from repro.sim.tokenize import word_tokens


class QueryClient:
    """Keyword search over one attribute of a logical source.

    Enforces the web-source contract: there is no way to enumerate the
    extension, only :meth:`search` with a bounded result list.  The
    downloadable flag of the physical source is respected —
    constructing a client over a downloadable source is allowed (it is
    just unnecessary), but the client never exposes more than query
    results.
    """

    def __init__(self, source: LogicalSource, *,
                 attribute: str = "title", max_results: int = 10) -> None:
        if max_results < 1:
            raise ValueError("max_results must be >= 1")
        self.source = source
        self.attribute = attribute
        self.max_results = max_results
        self._index: Dict[str, List[str]] = {}
        for instance in source:
            value = instance.get(attribute)
            if value is None:
                continue
            for token in set(word_tokens(str(value))):
                self._index.setdefault(token, []).append(instance.id)

    def search(self, query: str, *,
               max_results: Optional[int] = None) -> List[ObjectInstance]:
        """Return instances ranked by shared-token count with ``query``."""
        limit = max_results if max_results is not None else self.max_results
        tokens = set(word_tokens(query))
        if not tokens:
            return []
        scores: Dict[str, int] = {}
        for token in tokens:
            for instance_id in self._index.get(token, ()):
                scores[instance_id] = scores.get(instance_id, 0) + 1
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return [self.source.require(instance_id)
                for instance_id, _ in ranked[:limit]]

    def __repr__(self) -> str:
        return (
            f"QueryClient({self.source.name!r}, attribute="
            f"{self.attribute!r}, {len(self._index)} tokens)"
        )


def harvest_by_titles(client: QueryClient, titles: Iterable[str], *,
                      max_results_per_query: int = 10
                      ) -> Tuple[LogicalSource, Dict[str, int]]:
    """Replay the paper's GS harvest: one query per DBLP title.

    Returns the union of all result instances as a query-result LDS
    (a subset view of the underlying source) plus harvest statistics.
    """
    collected: List[str] = []
    seen = set()
    queries = 0
    for title in titles:
        queries += 1
        for instance in client.search(title,
                                      max_results=max_results_per_query):
            if instance.id not in seen:
                seen.add(instance.id)
                collected.append(instance.id)
    subset = client.source.subset(collected)
    stats = {
        "queries": queries,
        "distinct_results": len(subset),
    }
    return subset, stats
