"""Deterministic name corpora for the synthetic world.

A moderate pool of realistic first and last names is combined (plus
optional middle initials) into several thousand distinct author names.
Everything is driven by the caller's ``random.Random`` so worlds are
reproducible from their seed.
"""

from __future__ import annotations

import random
from typing import List, Set, Tuple

FIRST_NAMES: Tuple[str, ...] = (
    "Aaron", "Adam", "Adriana", "Agnes", "Alan", "Albert", "Alejandro",
    "Alexander", "Alice", "Alina", "Amir", "Amy", "Ana", "Andreas",
    "Andrew", "Angela", "Anna", "Anthony", "Antonio", "Arjun", "Arthur",
    "Barbara", "Beatriz", "Benjamin", "Bernhard", "Bettina", "Bing",
    "Boris", "Brian", "Bruce", "Carl", "Carla", "Carlos", "Carol",
    "Catalina", "Catherine", "Chandra", "Chao", "Charles", "Chen",
    "Christian", "Christina", "Christopher", "Claire", "Claudia",
    "Colin", "Cristina", "Dan", "Daniel", "Daniela", "David", "Dennis",
    "Diana", "Diego", "Dimitrios", "Dmitri", "Donald", "Dong", "Doris",
    "Douglas", "Eduardo", "Edward", "Elena", "Elisa", "Elizabeth",
    "Emily", "Eric", "Erhard", "Ernesto", "Eva", "Evan", "Fabian",
    "Fatima", "Felix", "Feng", "Fernando", "Francesca", "Frank",
    "Gabriel", "Gabriela", "Gang", "George", "Gerald", "Gerhard",
    "Giovanni", "Giulia", "Goetz", "Grace", "Gregory", "Guido",
    "Guillermo", "Hai", "Hannah", "Hans", "Harold", "Hector", "Helen",
    "Helga", "Henry", "Hiroshi", "Holger", "Hong", "Howard", "Hui",
    "Ian", "Igor", "Ilya", "Ingrid", "Irene", "Isabel", "Ivan", "Jack",
    "Jacob", "James", "Jan", "Jana", "Jason", "Javier", "Jean",
    "Jeffrey", "Jennifer", "Jens", "Jessica", "Jian", "Jing", "Joachim",
    "Joan", "Joao", "Joe", "Johan", "Johannes", "John", "Jonathan",
    "Jorge", "Jose", "Joseph", "Juan", "Judith", "Julia", "Julian",
    "Jun", "Juergen", "Karen", "Karl", "Katarina", "Katherine", "Kazuo",
    "Keith", "Kenneth", "Kevin", "Klaus", "Kurt", "Lars", "Laura",
    "Laurent", "Lawrence", "Lei", "Leonard", "Li", "Liang", "Lin",
    "Linda", "Lisa", "Luca", "Lucia", "Ludwig", "Luis", "Maarten",
    "Manfred", "Manuel", "Marc", "Marco", "Margaret", "Maria", "Marie",
    "Mario", "Mark", "Markus", "Martha", "Martin", "Mary", "Matteo",
    "Matthew", "Matthias", "Maurice", "Max", "Mei", "Michael",
    "Michaela", "Miguel", "Min", "Ming", "Mohamed", "Monica", "Nadia",
    "Nancy", "Natalia", "Nathan", "Neil", "Nicholas", "Nicolas",
    "Nikolaus", "Nina", "Norbert", "Olaf", "Oliver", "Olga", "Omar",
    "Oscar", "Pablo", "Pamela", "Paolo", "Patricia", "Patrick", "Paul",
    "Pavel", "Pedro", "Peter", "Philip", "Pierre", "Qiang", "Rachel",
    "Rafael", "Rainer", "Ralf", "Ramon", "Raymond", "Rebecca",
    "Reinhard", "Renate", "Ricardo", "Richard", "Robert", "Roberto",
    "Roger", "Roland", "Ronald", "Rosa", "Rudolf", "Ruth", "Ryan",
    "Samuel", "Sandra", "Sara", "Scott", "Sebastian", "Sergei",
    "Shan", "Sharon", "Silvia", "Simon", "Sofia", "Stefan", "Stefanie",
    "Stephen", "Steven", "Susan", "Sven", "Takashi", "Tamara", "Tao",
    "Teresa", "Thomas", "Timothy", "Tobias", "Tomas", "Ulrich",
    "Ulrike", "Uwe", "Valentina", "Vera", "Victor", "Viktor",
    "Vincent", "Vladimir", "Walter", "Wei", "Werner", "William",
    "Wolfgang", "Xiang", "Xin", "Yan", "Yang", "Yi", "Ying", "Yong",
    "Yuri", "Yusuf", "Zhen", "Zoltan",
)

LAST_NAMES: Tuple[str, ...] = (
    "Abel", "Adams", "Aguilar", "Ahmed", "Albrecht", "Almeida",
    "Anderson", "Andrade", "Arnold", "Baker", "Baldwin", "Barnes",
    "Bauer", "Baumann", "Becker", "Bell", "Bender", "Berger",
    "Bernstein", "Bianchi", "Blake", "Bloom", "Bogdanov", "Bose",
    "Brandt", "Braun", "Brooks", "Brown", "Bruno", "Burke", "Campbell",
    "Cardoso", "Carlson", "Carter", "Castillo", "Chan", "Chandra",
    "Chang", "Chen", "Cheng", "Cho", "Chow", "Clark", "Cohen",
    "Collins", "Conrad", "Costa", "Cruz", "Curtis", "Dahl", "Davies",
    "Davis", "Delgado", "Dietrich", "Dietz", "Dimitrov", "Dixon",
    "Doyle", "Drake", "Dumont", "Duncan", "Ebert", "Eckert", "Edwards",
    "Egger", "Eriksson", "Evans", "Faber", "Falk", "Fan", "Farrell",
    "Feldman", "Fernandez", "Ferrari", "Fischer", "Fleming", "Flores",
    "Foster", "Fournier", "Fox", "Franke", "Freeman", "Frey",
    "Friedman", "Fuchs", "Fujita", "Gallo", "Garcia", "Gardner",
    "Gebhardt", "Geiger", "Gibson", "Gilbert", "Goldberg", "Gomez",
    "Gonzalez", "Gordon", "Graf", "Grant", "Graves", "Gray", "Greco",
    "Green", "Griffin", "Gross", "Gruber", "Guerrero", "Gupta",
    "Gustafsson", "Haas", "Hahn", "Hall", "Hamilton", "Hansen",
    "Harper", "Harris", "Hartmann", "Hayashi", "Hayes", "Heller",
    "Henderson", "Hernandez", "Herrmann", "Hill", "Hoffman", "Hofmann",
    "Holland", "Holt", "Horn", "Horvath", "Howard", "Huang", "Huber",
    "Hughes", "Hunt", "Ibrahim", "Ito", "Ivanov", "Jackson", "Jacobs",
    "Jain", "James", "Jansen", "Jensen", "Jimenez", "Johansson",
    "Johnson", "Jones", "Jordan", "Kaiser", "Kalashnikov", "Kang",
    "Kaplan", "Kato", "Kaufmann", "Keller", "Kelly", "Kennedy", "Kim",
    "King", "Kirchner", "Klein", "Knight", "Kobayashi", "Koch",
    "Koenig", "Kovacs", "Kowalski", "Kraus", "Krueger", "Kumar",
    "Kuznetsov", "Lambert", "Lang", "Larsen", "Larson", "Laurent",
    "Lee", "Lehmann", "Leone", "Lewis", "Li", "Liang", "Lin",
    "Lindberg", "Liu", "Lombardi", "Long", "Lopez", "Lorenz", "Lu",
    "Ludwig", "Luo", "Ma", "Maier", "Marino", "Marshall", "Martin",
    "Martinez", "Mason", "Matsumoto", "Mayer", "McDonald", "Mehta",
    "Meier", "Mendez", "Meyer", "Miller", "Mitchell", "Mohan",
    "Molina", "Moore", "Morales", "Moreau", "Morgan", "Mori", "Morris",
    "Moser", "Mueller", "Murphy", "Murray", "Nagy", "Nakamura",
    "Navarro", "Nelson", "Neumann", "Newman", "Nguyen", "Nielsen",
    "Nikolov", "Nilsson", "Novak", "Nowak", "Oliveira", "Olsen",
    "Olson", "Ortega", "Ortiz", "Otto", "Palmer", "Pappas", "Park",
    "Parker", "Patel", "Paulsen", "Pedersen", "Pereira", "Perez",
    "Peters", "Petersen", "Petrov", "Pfeiffer", "Phillips", "Pichler",
    "Popescu", "Porter", "Powell", "Price", "Qian", "Quinn", "Raab",
    "Ramirez", "Rao", "Reed", "Reinhardt", "Reyes", "Reynolds",
    "Ricci", "Rice", "Richter", "Riley", "Rivera", "Roberts",
    "Robinson", "Rodriguez", "Rogers", "Romano", "Romero", "Rose",
    "Rossi", "Roth", "Ruiz", "Russell", "Russo", "Ryan", "Saito",
    "Sanchez", "Sanders", "Santos", "Sato", "Sauer", "Schaefer",
    "Schmidt", "Schneider", "Scholz", "Schroeder", "Schubert",
    "Schulz", "Schwartz", "Scott", "Seidel", "Sharma", "Shaw", "Shen",
    "Silva", "Simmons", "Simon", "Singh", "Smith", "Sokolov", "Sommer",
    "Song", "Sorensen", "Spencer", "Stein", "Steiner", "Stewart",
    "Stone", "Suzuki", "Svensson", "Takahashi", "Tanaka", "Tang",
    "Taylor", "Thomas", "Thompson", "Torres", "Tran", "Tucker",
    "Turner", "Ullrich", "Vargas", "Vasquez", "Vogel", "Voigt",
    "Volkov", "Wagner", "Walker", "Wallace", "Walsh", "Wang", "Ward",
    "Watanabe", "Watson", "Weber", "Wei", "Weiss", "Wells", "Werner",
    "West", "White", "Wilson", "Winkler", "Winter", "Wolf", "Wong",
    "Wood", "Wright", "Wu", "Xu", "Yamamoto", "Yang", "Yoshida",
    "Young", "Yu", "Yuen", "Zarkesh", "Zhang", "Zhao", "Zheng", "Zhou",
    "Zhu", "Ziegler", "Zimmermann",
)

_MIDDLE_INITIALS = "ABCDEFGHJKLMNPRSTVW"


def generate_author_names(count: int, rng: random.Random) -> List[Tuple[str, str]]:
    """Draw ``count`` distinct ``(first, last)`` author names.

    About one in five names carries a middle initial in the first-name
    part ("Amir M." + "Zarkesh"), mirroring bibliography conventions.
    Raises ``ValueError`` when the pool cannot supply enough distinct
    combinations.
    """
    capacity = len(FIRST_NAMES) * len(LAST_NAMES)
    if count > capacity:
        raise ValueError(
            f"cannot generate {count} distinct names from a pool of {capacity}"
        )
    seen: Set[Tuple[str, str]] = set()
    names: List[Tuple[str, str]] = []
    while len(names) < count:
        first = rng.choice(FIRST_NAMES)
        last = rng.choice(LAST_NAMES)
        if rng.random() < 0.2:
            first = f"{first} {rng.choice(_MIDDLE_INITIALS)}."
        key = (first, last)
        if key in seen:
            continue
        seen.add(key)
        names.append(key)
    return names


def full_name(first: str, last: str) -> str:
    """Render the canonical "First Last" display form."""
    return f"{first} {last}".strip()
