"""Standard (key-based) blocking: candidates share a blocking key."""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.blocking.pair_generator import (
    BlockShard,
    IdBlock,
    Pair,
    PairGenerator,
    PairShard,
    partition_spans,
)
from repro.model.source import LogicalSource


def first_token_key(value: object) -> Optional[str]:
    """Default key function: the lowercase first word of the value."""
    if value is None:
        return None
    tokens = str(value).lower().split()
    return tokens[0] if tokens else None


class KeyBlocking(PairGenerator):
    """Group instances by a key derived from the blocking attribute.

    ``key`` maps an attribute value to a blocking key (``None`` places
    the instance in no block).  Instances with equal keys across the
    two sources become candidates.  ``max_block_size`` guards against
    stop-word-like keys exploding a block into a quadratic hot spot.
    """

    def __init__(self, key: Callable[[object], Optional[str]] = first_token_key,
                 *, max_block_size: Optional[int] = None) -> None:
        if max_block_size is not None and max_block_size < 1:
            raise ValueError("max_block_size must be >= 1")
        self.key = key
        self.max_block_size = max_block_size

    def _blocks(self, source: LogicalSource,
                attribute: str) -> Dict[str, List[str]]:
        blocks: Dict[str, List[str]] = {}
        for instance in source:
            key = self.key(instance.get(attribute))
            if key is not None:
                blocks.setdefault(key, []).append(instance.id)
        return blocks

    def _eligible_blocks(self, domain: LogicalSource, range: LogicalSource,
                         domain_attribute: str,
                         range_attribute: str) -> List[IdBlock]:
        """Surviving key blocks, in domain key iteration order.

        Keys present in only one source and blocks tripping the
        ``max_block_size`` guard are dropped here so the candidate
        stream and the sharded path share one filter.
        """
        domain_blocks = self._blocks(domain, domain_attribute)
        is_self = domain is range or domain.name == range.name
        range_blocks = (
            domain_blocks if is_self else self._blocks(range, range_attribute)
        )
        eligible: List[IdBlock] = []
        for key, domain_ids in domain_blocks.items():
            range_ids = range_blocks.get(key)
            if not range_ids:
                continue
            if (self.max_block_size is not None
                    and len(domain_ids) * len(range_ids) >
                    self.max_block_size * self.max_block_size):
                continue
            if is_self:
                eligible.append(IdBlock(domain_ids, domain_ids, triangle=True))
            else:
                eligible.append(IdBlock(domain_ids, range_ids))
        return eligible

    def candidates(self, domain: LogicalSource, range: LogicalSource, *,
                   domain_attribute: str,
                   range_attribute: str) -> Iterator[Pair]:
        blocks = self._eligible_blocks(domain, range,
                                       domain_attribute, range_attribute)
        # key blocks are disjoint, so no dedup; self-matching pairs
        # keep block-list orientation (BlockShard's default)
        yield from BlockShard(lambda: iter(blocks)).pairs()

    def shards(self, domain: LogicalSource, range: LogicalSource, *,
               n_shards: int, domain_attribute: str,
               range_attribute: str) -> List[PairShard]:
        """Key groups: each shard owns a contiguous run of key blocks.

        Keys partition the instances, so blocks are pairwise disjoint
        and each candidate pair lives in exactly one shard.  Runs are
        balanced by block pair counts, not key counts, so one huge
        block does not serialize the whole run.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
        blocks = self._eligible_blocks(domain, range,
                                       domain_attribute, range_attribute)
        spans = partition_spans([block.pair_count() for block in blocks],
                                n_shards)
        return [
            BlockShard(lambda s=start, e=end: iter(blocks[s:e]))
            for start, end in spans
        ]
