"""Standard (key-based) blocking: candidates share a blocking key."""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.blocking.pair_generator import Pair, PairGenerator
from repro.model.source import LogicalSource


def first_token_key(value: object) -> Optional[str]:
    """Default key function: the lowercase first word of the value."""
    if value is None:
        return None
    tokens = str(value).lower().split()
    return tokens[0] if tokens else None


class KeyBlocking(PairGenerator):
    """Group instances by a key derived from the blocking attribute.

    ``key`` maps an attribute value to a blocking key (``None`` places
    the instance in no block).  Instances with equal keys across the
    two sources become candidates.  ``max_block_size`` guards against
    stop-word-like keys exploding a block into a quadratic hot spot.
    """

    def __init__(self, key: Callable[[object], Optional[str]] = first_token_key,
                 *, max_block_size: Optional[int] = None) -> None:
        if max_block_size is not None and max_block_size < 1:
            raise ValueError("max_block_size must be >= 1")
        self.key = key
        self.max_block_size = max_block_size

    def _blocks(self, source: LogicalSource,
                attribute: str) -> Dict[str, List[str]]:
        blocks: Dict[str, List[str]] = {}
        for instance in source:
            key = self.key(instance.get(attribute))
            if key is not None:
                blocks.setdefault(key, []).append(instance.id)
        return blocks

    def candidates(self, domain: LogicalSource, range: LogicalSource, *,
                   domain_attribute: str,
                   range_attribute: str) -> Iterator[Pair]:
        domain_blocks = self._blocks(domain, domain_attribute)
        is_self = domain is range or domain.name == range.name
        range_blocks = (
            domain_blocks if is_self else self._blocks(range, range_attribute)
        )
        for key, domain_ids in domain_blocks.items():
            range_ids = range_blocks.get(key)
            if not range_ids:
                continue
            if (self.max_block_size is not None
                    and len(domain_ids) * len(range_ids) >
                    self.max_block_size * self.max_block_size):
                continue
            if is_self:
                for i, id_a in enumerate(domain_ids):
                    for id_b in domain_ids[i + 1:]:
                        yield id_a, id_b
            else:
                for id_a in domain_ids:
                    for id_b in range_ids:
                        yield id_a, id_b
