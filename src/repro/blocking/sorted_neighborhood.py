"""Sorted-neighborhood blocking (Hernandez & Stolfo's Merge/Purge).

Instances of both sources are sorted by a key derived from the
blocking attribute and a fixed-size window slides over the merged
order; pairs inside a window become candidates.  Good when errors
preserve prefixes (names); complements token blocking.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Set, Tuple

from repro.blocking.pair_generator import (
    IterableShard,
    Pair,
    PairGenerator,
    PairShard,
    partition_spans,
)
from repro.model.source import LogicalSource
from repro.sim.tokenize import normalize

#: the protocol names the second parameter ``range``, which shadows the
#: builtin inside ``candidates`` — keep a module-level alias
_range = range


def default_sort_key(value: object) -> Optional[str]:
    """Normalize the value for ordering; ``None`` values sort nowhere."""
    if value is None:
        return None
    text = normalize(str(value))
    return text if text else None


class SortedNeighborhood(PairGenerator):
    """Sliding-window candidate generation over a lexicographic sort."""

    def __init__(self, window: int = 5,
                 key: Callable[[object], Optional[str]] = default_sort_key) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self.key = key

    def _entries(self, domain: LogicalSource, range: LogicalSource,
                 domain_attribute: str,
                 range_attribute: str) -> List[Tuple[str, int, str]]:
        """The merged sort order both execution paths slide over."""
        # Tag each record with its side so cross-source pairs can be
        # oriented; for self-matching both sides coincide.
        is_self = domain is range or domain.name == range.name
        entries: List[Tuple[str, int, str]] = []
        for instance in domain:
            sort_key = self.key(instance.get(domain_attribute))
            if sort_key is not None:
                entries.append((sort_key, 0, instance.id))
        if not is_self:
            for instance in range:
                sort_key = self.key(instance.get(range_attribute))
                if sort_key is not None:
                    entries.append((sort_key, 1, instance.id))
        entries.sort()
        return entries

    def _window_pairs(self, entries: List[Tuple[str, int, str]],
                      start: int, end: int,
                      is_self: bool) -> Iterator[Pair]:
        """Window pairs anchored at positions ``[start, end)``.

        The window of the last anchors reaches past ``end`` into the
        following segment, so segment streams overlap-free partition
        the anchor positions while still producing every cross-segment
        pair.  Deduplication is local to the call (the serial stream
        passes the whole range, shards their own segment).
        """
        emitted: Set[Pair] = set()
        for i in _range(start, end):
            _, side_a, id_a = entries[i]
            upper = min(i + self.window, len(entries))
            for j in _range(i + 1, upper):
                _, side_b, id_b = entries[j]
                if is_self:
                    if id_a == id_b:
                        continue
                    pair = (id_a, id_b) if id_a < id_b else (id_b, id_a)
                elif side_a == 0 and side_b == 1:
                    pair = (id_a, id_b)
                elif side_a == 1 and side_b == 0:
                    pair = (id_b, id_a)
                else:
                    continue
                if pair not in emitted:
                    emitted.add(pair)
                    yield pair

    def candidates(self, domain: LogicalSource, range: LogicalSource, *,
                   domain_attribute: str,
                   range_attribute: str) -> Iterator[Pair]:
        is_self = domain is range or domain.name == range.name
        entries = self._entries(domain, range,
                                domain_attribute, range_attribute)
        yield from self._window_pairs(entries, 0, len(entries), is_self)

    def shards(self, domain: LogicalSource, range: LogicalSource, *,
               n_shards: int, domain_attribute: str,
               range_attribute: str) -> List[PairShard]:
        """Window segments: contiguous anchor ranges of the sort order.

        Each shard anchors windows at its own positions; windows near
        a segment boundary read (but do not anchor in) the next
        segment, so no pair is lost at the seams.  A pair can repeat
        across shards when the same ids meet in two windows anchored
        in different segments; consumers resolve that idempotently.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
        is_self = domain is range or domain.name == range.name
        entries = self._entries(domain, range,
                                domain_attribute, range_attribute)
        if not entries:
            return []
        spans = partition_spans([1] * len(entries), n_shards)
        # cost estimate: each anchor pairs with at most window - 1
        # followers; windows are count-balanced, so this upper bound
        # weighs segments fairly for the engine's shard rebalancing
        return [
            IterableShard(lambda s=start, e=end: self._window_pairs(
                entries, s, e, is_self),
                cost=(end - start) * (self.window - 1))
            for start, end in spans
        ]
