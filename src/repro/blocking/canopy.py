"""Canopy clustering blocking (McCallum/Nigam/Ungar style).

A cheap token-Jaccard similarity partitions records into overlapping
canopies: a random seed collects every record within ``loose``
similarity; records within ``tight`` similarity stop being future
*seeds* but remain assignable to later canopies (that overlap is the
point of canopies — a record tightly bound to one seed can still be
loosely similar to another, and dropping it there would silently lose
cross-canopy true matches).  Pairs sharing a canopy are candidates.
Deterministic given the seed.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from repro.blocking.pair_generator import (
    BlockShard,
    IdBlock,
    Pair,
    PairGenerator,
    PairShard,
    partition_spans,
)
from repro.model.source import LogicalSource
from repro.sim.tokenize import word_tokens

Record = Tuple[str, int, frozenset]


class CanopyBlocking(PairGenerator):
    """Overlapping canopies under cheap token-set similarity."""

    def __init__(self, *, loose: float = 0.2, tight: float = 0.6,
                 seed: int = 0) -> None:
        if not 0.0 < loose <= tight <= 1.0:
            raise ValueError("need 0 < loose <= tight <= 1")
        self.loose = loose
        self.tight = tight
        self.seed = seed

    @staticmethod
    def _jaccard(tokens_a: frozenset, tokens_b: frozenset) -> float:
        if not tokens_a or not tokens_b:
            return 0.0
        overlap = len(tokens_a & tokens_b)
        if overlap == 0:
            return 0.0
        return overlap / (len(tokens_a) + len(tokens_b) - overlap)

    def _tokenized(self, source: LogicalSource, attribute: str,
                   side: int) -> List[Record]:
        records = []
        for instance in source:
            value = instance.get(attribute)
            if value is None:
                continue
            tokens = frozenset(word_tokens(str(value)))
            if tokens:
                records.append((instance.id, side, tokens))
        return records

    def _records(self, domain: LogicalSource, range: LogicalSource,
                 domain_attribute: str,
                 range_attribute: str) -> Tuple[List[Record], bool]:
        is_self = domain is range or domain.name == range.name
        records = self._tokenized(domain, domain_attribute, 0)
        if not is_self:
            records += self._tokenized(range, range_attribute, 1)
        return records, is_self

    def _canopies(self, records: List[Record]) -> List[List[int]]:
        """Run the clustering pass; return canopies as index lists.

        ``remaining`` holds the candidate *seeds* only.  A record
        within ``tight`` of a seed is deleted from it — it can never
        start a canopy again and is never rescanned by the seed loop —
        but membership scans the full record list, so removed records
        keep joining every later canopy they are loosely similar to.
        """
        rng = random.Random(self.seed)
        order = list(range(len(records)))
        rng.shuffle(order)

        remaining = dict.fromkeys(order)
        canopies: List[List[int]] = []
        for seed_index in order:
            if seed_index not in remaining:
                continue
            seed_tokens = records[seed_index][2]
            canopy: List[int] = []
            for index, record in enumerate(records):
                similarity = self._jaccard(seed_tokens, record[2])
                if similarity >= self.loose:
                    canopy.append(index)
                    if similarity >= self.tight and index in remaining:
                        del remaining[index]
            canopies.append(canopy)
        return canopies

    def _canopy_blocks(self, records: List[Record],
                       canopies: List[List[int]],
                       is_self: bool) -> List[IdBlock]:
        """Materialize canopies as id blocks (cross-side for two sources)."""
        blocks: List[IdBlock] = []
        for canopy in canopies:
            if is_self:
                if len(canopy) < 2:
                    continue
                ids = [records[index][0] for index in canopy]
                blocks.append(IdBlock(ids, ids, triangle=True))
            else:
                domain_ids = [records[index][0] for index in canopy
                              if records[index][1] == 0]
                range_ids = [records[index][0] for index in canopy
                             if records[index][1] == 1]
                if domain_ids and range_ids:
                    blocks.append(IdBlock(domain_ids, range_ids))
        return blocks

    def candidates(self, domain: LogicalSource, range: LogicalSource, *,
                   domain_attribute: str,
                   range_attribute: str) -> Iterator[Pair]:
        records, is_self = self._records(domain, range,
                                         domain_attribute, range_attribute)
        blocks = self._canopy_blocks(records, self._canopies(records),
                                     is_self)
        # canopies overlap, so dedup globally; self-matching pairs are
        # canonical (min, max)
        yield from BlockShard(lambda: iter(blocks), dedup=True,
                              canonical=is_self).pairs()

    def shards(self, domain: LogicalSource, range: LogicalSource, *,
               n_shards: int, domain_attribute: str,
               range_attribute: str) -> List[PairShard]:
        """Seed partitions: each shard expands a run of whole canopies.

        Canopy *formation* stays sequential (each seed's tight removals
        gate later seed choices), but it is a linear number of cheap
        Jaccard scans; the quadratic part — expanding every canopy
        into pairs — is what the shards distribute.  Overlapping
        canopies can emit the same pair from two shards; consumers
        resolve that idempotently.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
        records, is_self = self._records(domain, range,
                                         domain_attribute, range_attribute)
        canopies = self._canopies(records)
        blocks = self._canopy_blocks(records, canopies, is_self)
        spans = partition_spans([block.pair_count() for block in blocks],
                                n_shards)
        return [
            BlockShard(lambda s=start, e=end: iter(blocks[s:e]),
                       dedup=True, canonical=is_self)
            for start, end in spans
        ]
