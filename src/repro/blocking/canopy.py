"""Canopy clustering blocking (McCallum/Nigam/Ungar style).

A cheap token-Jaccard similarity partitions records into overlapping
canopies: a random seed collects every record within ``loose``
similarity; records within ``tight`` similarity stop being future
seeds.  Pairs sharing a canopy are candidates.  Deterministic given
the seed.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Set, Tuple

from repro.blocking.pair_generator import Pair, PairGenerator
from repro.model.source import LogicalSource
from repro.sim.tokenize import word_tokens


class CanopyBlocking(PairGenerator):
    """Overlapping canopies under cheap token-set similarity."""

    def __init__(self, *, loose: float = 0.2, tight: float = 0.6,
                 seed: int = 0) -> None:
        if not 0.0 < loose <= tight <= 1.0:
            raise ValueError("need 0 < loose <= tight <= 1")
        self.loose = loose
        self.tight = tight
        self.seed = seed

    @staticmethod
    def _jaccard(tokens_a: frozenset, tokens_b: frozenset) -> float:
        if not tokens_a or not tokens_b:
            return 0.0
        overlap = len(tokens_a & tokens_b)
        if overlap == 0:
            return 0.0
        return overlap / (len(tokens_a) + len(tokens_b) - overlap)

    def _tokenized(self, source: LogicalSource, attribute: str,
                   side: int) -> List[Tuple[str, int, frozenset]]:
        records = []
        for instance in source:
            value = instance.get(attribute)
            if value is None:
                continue
            tokens = frozenset(word_tokens(str(value)))
            if tokens:
                records.append((instance.id, side, tokens))
        return records

    def candidates(self, domain: LogicalSource, range: LogicalSource, *,
                   domain_attribute: str,
                   range_attribute: str) -> Iterator[Pair]:
        is_self = domain is range or domain.name == range.name
        records = self._tokenized(domain, domain_attribute, 0)
        if not is_self:
            records += self._tokenized(range, range_attribute, 1)

        rng = random.Random(self.seed)
        remaining: Dict[int, Tuple[str, int, frozenset]] = dict(enumerate(records))
        order = list(remaining)
        rng.shuffle(order)

        emitted: Set[Pair] = set()
        removed: Set[int] = set()
        for seed_index in order:
            if seed_index in removed:
                continue
            seed_record = remaining[seed_index]
            canopy = []
            for index, record in remaining.items():
                if index in removed and index != seed_index:
                    continue
                similarity = self._jaccard(seed_record[2], record[2])
                if similarity >= self.loose:
                    canopy.append((index, record, similarity))
            for index, _, similarity in canopy:
                if similarity >= self.tight:
                    removed.add(index)
            # pairs within the canopy
            for i, (_, record_a, _) in enumerate(canopy):
                for _, record_b, _ in canopy[i + 1:]:
                    id_a, side_a, _ = record_a
                    id_b, side_b, _ = record_b
                    if is_self:
                        if id_a == id_b:
                            continue
                        pair = (id_a, id_b) if id_a < id_b else (id_b, id_a)
                    elif side_a == 0 and side_b == 1:
                        pair = (id_a, id_b)
                    elif side_a == 1 and side_b == 0:
                        pair = (id_b, id_a)
                    else:
                        continue
                    if pair not in emitted:
                        emitted.add(pair)
                        yield pair
