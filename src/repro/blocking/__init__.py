"""Candidate generation (blocking) for paper-scale attribute matching.

MOMA's evaluation matches ~2.6k x 2.3k publications; a naive cross
product is quadratic and, in pure Python, dominates run time.  Blocking
strategies produce a reduced candidate pair set that the attribute
matchers score.  All strategies implement the same protocol:

``candidates(domain, range, *, domain_attribute, range_attribute)``
yields ``(domain id, range id)`` pairs.

Quality is quantified with :func:`pair_completeness` (fraction of gold
pairs surviving blocking) and :func:`reduction_ratio` (fraction of the
cross product avoided) — the standard blocking metrics.
"""

from repro.blocking.canopy import CanopyBlocking
from repro.blocking.pair_generator import (
    BlockShard,
    FullCross,
    IdBlock,
    IterableShard,
    PairGenerator,
    PairShard,
    dedup_self_pairs,
    pair_completeness,
    partition_spans,
    reduction_ratio,
    unique_pairs,
)
from repro.blocking.sorted_neighborhood import SortedNeighborhood
from repro.blocking.standard import KeyBlocking
from repro.blocking.token_blocking import TokenBlocking

__all__ = [
    "BlockShard",
    "CanopyBlocking",
    "FullCross",
    "IdBlock",
    "IterableShard",
    "KeyBlocking",
    "PairGenerator",
    "PairShard",
    "SortedNeighborhood",
    "TokenBlocking",
    "dedup_self_pairs",
    "pair_completeness",
    "partition_spans",
    "reduction_ratio",
    "unique_pairs",
]
