"""Blocking protocol, trivial generator, sharding and quality metrics.

Besides the streaming ``candidates`` protocol, every strategy can
partition its work into independent *shards* (``shards``): units of
candidate generation that can run on different worker processes with
no shared mutable state.

The shard-payload contract with the engine's sharded execution path
(:mod:`repro.engine.shards`) is **indices in, survivors out**: the
shard list is built in the parent *before* the worker pool forks, so
workers inherit it (sources, similarity state, packed kernel arrays
and all) copy-on-write; each task ships only an int shard index into
a worker, the worker generates that shard's pairs locally via
:meth:`PairShard.pairs` (or expands its :meth:`PairShard.blocks`
directly as packed row arrays), scores them, and ships only the
surviving correspondences back.  Nothing per-pair ever crosses a
process boundary, which removes the parent-side Amdahl bottleneck of
blocked parallel runs.

Shards additionally expose a :meth:`PairShard.cost` estimate (raw
pair count, pre-dedup) so the engine can rebalance skewed shard
distributions — splitting oversized block groups and bin-packing the
pieces — before any worker starts (``EngineConfig(balance_shards=
True)``, :func:`repro.engine.shards.rebalance_shards`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.mapping import Mapping
from repro.model.source import LogicalSource

Pair = Tuple[str, str]

#: the protocol names a parameter ``range``, which shadows the builtin
#: inside generator methods — keep a module-level alias
_range = range


# ----------------------------------------------------------------------
# shard primitives
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class IdBlock:
    """One rectangular (or triangular) unit of candidate pairs.

    ``triangle=False`` means the cross product ``domain_ids x
    range_ids`` oriented as (domain id, range id).  ``triangle=True``
    means the self-matching pairs of ``domain_ids`` alone: every
    ``(domain_ids[i], domain_ids[j])`` with ``i < j`` by list position
    (``range_ids`` is ignored).  Blocks deliberately carry plain id
    lists so the blocking layer stays independent of how the engine
    scores them (Python pairs or packed row arrays).
    """

    domain_ids: Sequence[str]
    range_ids: Sequence[str]
    triangle: bool = False

    def pair_count(self) -> int:
        """Raw (pre-dedup) number of pairs the block expands to."""
        if self.triangle:
            n = len(self.domain_ids)
            return n * (n - 1) // 2
        return len(self.domain_ids) * len(self.range_ids)


class PairShard(ABC):
    """One independent unit of a strategy's candidate generation.

    The contract is set-level: the union of ``pairs()`` over all
    shards of one ``shards()`` call equals the distinct pair set of
    ``candidates()`` on the same inputs.  A pair may appear in more
    than one shard (e.g. two tokens of the same pair assigned to
    different shards); downstream consumers must treat duplicate pairs
    idempotently, exactly as they must for ``candidates`` streams.
    """

    @abstractmethod
    def pairs(self) -> Iterator[Pair]:
        """Yield the shard's candidate pairs (duplicates allowed)."""

    def blocks(self) -> Optional[Iterator[IdBlock]]:
        """Optional block-structured view enabling vectorized scoring.

        Strategies whose shards are unions of rectangular/triangular
        id blocks return an iterator of :class:`IdBlock`; the engine
        can then expand pairs as packed row arrays without creating a
        Python tuple per pair.  ``None`` (the default) means the shard
        is only reachable through :meth:`pairs`.
        """
        return None

    def cost(self) -> Optional[int]:
        """Estimated raw (pre-dedup) pair count of this shard.

        The engine's skew-aware rebalancing uses this to spot long-tail
        shards before any worker starts.  ``None`` (the default) means
        unknown; such shards are never split, only bin-packed with an
        assumed average cost.
        """
        return None


class IterableShard(PairShard):
    """A shard wrapping an arbitrary pair-producing callable.

    ``cost`` is an optional raw pair-count estimate for the stream;
    strategies that can size their segments (e.g. sorted-neighborhood
    windows) pass it so rebalancing can weigh them.
    """

    def __init__(self, factory: Callable[[], Iterable[Pair]], *,
                 cost: Optional[int] = None) -> None:
        self._factory = factory
        self._cost = cost

    def pairs(self) -> Iterator[Pair]:
        yield from self._factory()

    def cost(self) -> Optional[int]:
        return self._cost


class BlockShard(PairShard):
    """A shard made of :class:`IdBlock`\\ s.

    ``dedup`` applies a shard-local first-seen filter so strategies
    whose serial ``candidates`` deduplicate (token blocking, canopies)
    keep that behavior per shard; cross-shard duplicates remain
    possible and allowed.  ``canonical`` orients self-matching pairs
    as ``(min id, max id)`` to match the serial emission of those
    strategies — for triangle blocks and also for rectangular blocks
    (which rebalancing produces by splitting oversized triangles);
    block-order orientation is kept otherwise (key blocking, full
    cross).
    """

    def __init__(self, factory: Callable[[], Iterable[IdBlock]], *,
                 dedup: bool = False, canonical: bool = False) -> None:
        self._factory = factory
        self.dedup = dedup
        self.canonical = canonical

    def blocks(self) -> Iterator[IdBlock]:
        return iter(self._factory())

    def pairs(self) -> Iterator[Pair]:
        emitted: Optional[Set[Pair]] = set() if self.dedup else None
        for block in self.blocks():
            if block.triangle:
                ids = block.domain_ids
                for i, id_a in enumerate(ids):
                    for id_b in ids[i + 1:]:
                        if self.canonical and id_b < id_a:
                            pair = (id_b, id_a)
                        else:
                            pair = (id_a, id_b)
                        if emitted is not None:
                            if pair in emitted:
                                continue
                            emitted.add(pair)
                        yield pair
            else:
                for id_a in block.domain_ids:
                    for id_b in block.range_ids:
                        if self.canonical and id_b < id_a:
                            pair = (id_b, id_a)
                        else:
                            pair = (id_a, id_b)
                        if emitted is not None:
                            if pair in emitted:
                                continue
                            emitted.add(pair)
                        yield pair

    def cost(self) -> int:
        """Exact raw pair count: the sum of the blocks' pair counts."""
        return sum(block.pair_count() for block in self.blocks())


def partition_spans(costs: Sequence[int], n_shards: int) -> List[Tuple[int, int]]:
    """Split ``range(len(costs))`` into at most ``n_shards`` contiguous,
    cost-balanced ``(start, end)`` spans.

    Deterministic and order-preserving: concatenating the spans
    reproduces the original index order, which is what lets sharded
    candidate generation mirror the serial iteration order of each
    strategy.  Skewed cost distributions may yield fewer spans than
    requested; every span is non-empty.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
    n = len(costs)
    if n == 0:
        return []
    n_shards = min(n_shards, n)
    total = sum(costs)
    if total <= 0:
        # degenerate (all-zero) costs: balance by count instead
        step = (n + n_shards - 1) // n_shards
        return [(i, min(i + step, n)) for i in range(0, n, step)]
    target = total / n_shards
    spans: List[Tuple[int, int]] = []
    start = 0
    acc = 0.0
    for index, cost in enumerate(costs):
        acc += cost
        if acc >= target and len(spans) < n_shards - 1:
            spans.append((start, index + 1))
            start = index + 1
            acc = 0.0
    if start < n:
        spans.append((start, n))
    return spans


# ----------------------------------------------------------------------
# the generator protocol
# ----------------------------------------------------------------------

class PairGenerator(ABC):
    """Produces candidate (domain id, range id) pairs for matching."""

    @abstractmethod
    def candidates(self, domain: LogicalSource, range: LogicalSource, *,
                   domain_attribute: str,
                   range_attribute: str) -> Iterator[Pair]:
        """Yield candidate pairs; duplicates are allowed (matchers dedup)."""

    def shards(self, domain: LogicalSource, range: LogicalSource, *,
               n_shards: int, domain_attribute: str,
               range_attribute: str) -> List[PairShard]:
        """Partition candidate generation into independent units.

        The union of the shards' ``pairs()`` equals the distinct pair
        set of :meth:`candidates` on the same inputs.  The base
        implementation cannot split unknown strategies, so it returns
        a single shard delegating to :meth:`candidates`; subclasses
        override with genuinely parallel partitions (key groups,
        posting-list ranges, window segments, seed partitions, id
        tiles).  The engine's sharded path detects the un-overridden
        default and prefers its streamed pool instead — one delegating
        shard would serialize the whole request into a single worker.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
        return [IterableShard(lambda: self.candidates(
            domain, range,
            domain_attribute=domain_attribute,
            range_attribute=range_attribute,
        ))]

    def count(self, domain: LogicalSource, range: LogicalSource, *,
              domain_attribute: str, range_attribute: str,
              limit: Optional[int] = None) -> int:
        """Number of *distinct* candidate pairs (diagnostics).

        Streams the candidate generator instead of materializing it,
        but exact distinct counting still needs a seen-set, so memory
        grows with the number of *distinct* pairs counted.  For large
        sources pass ``limit`` to stop (and bound the seen-set) at the
        first ``limit`` distinct pairs — diagnostics rarely need more
        precision than "at least N".  Strategies with a closed-form
        pair count (e.g. :class:`FullCross`) override this with an
        O(1) implementation.
        """
        seen: Set[Pair] = set()
        add = seen.add
        counted = 0
        for pair in self.candidates(domain, range,
                                    domain_attribute=domain_attribute,
                                    range_attribute=range_attribute):
            if pair not in seen:
                add(pair)
                counted += 1
                if limit is not None and counted >= limit:
                    break
        return counted


class FullCross(PairGenerator):
    """The unblocked cross product (self-matching skips reflexive pairs)."""

    def candidates(self, domain: LogicalSource, range: LogicalSource, *,
                   domain_attribute: str,
                   range_attribute: str) -> Iterator[Pair]:
        if domain is range or domain.name == range.name:
            ids = domain.ids()
            for i, id_a in enumerate(ids):
                for id_b in ids[i + 1:]:
                    yield id_a, id_b
        else:
            range_ids = range.ids()
            for id_a in domain.ids():
                for id_b in range_ids:
                    yield id_a, id_b

    def shards(self, domain: LogicalSource, range: LogicalSource, *,
               n_shards: int, domain_attribute: str,
               range_attribute: str) -> List[PairShard]:
        """Id-range tiles: contiguous slices of the domain id list.

        Self-matching tiles are balanced by the triangular row costs
        (row ``i`` contributes ``n - 1 - i`` pairs), so early tiles
        take fewer rows than late ones.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
        ids = domain.ids()
        if domain is range or domain.name == range.name:
            n = len(ids)
            spans = partition_spans([n - 1 - i for i in _range(n)], n_shards)

            def tile(start: int, end: int) -> Callable[[], Iterator[IdBlock]]:
                def blocks() -> Iterator[IdBlock]:
                    for i in _range(start, end):
                        tail = ids[i + 1:]
                        if tail:
                            yield IdBlock(ids[i:i + 1], tail)
                return blocks

            return [BlockShard(tile(start, end)) for start, end in spans]
        range_ids = range.ids()
        if not ids or not range_ids:
            return []
        spans = partition_spans([1] * len(ids), n_shards)
        return [
            BlockShard(lambda s=start, e=end: iter(
                [IdBlock(ids[s:e], range_ids)]))
            for start, end in spans
        ]

    def count(self, domain: LogicalSource, range: LogicalSource, *,
              domain_attribute: str, range_attribute: str,
              limit: Optional[int] = None) -> int:
        """Closed-form count — the cross product is never materialized.

        The generic implementation would build a quadratic seen-set
        here (the full cross product *is* distinct), which is exactly
        the memory blow-up this override avoids.
        """
        if domain is range or domain.name == range.name:
            n = len(domain)
            total = n * (n - 1) // 2
        else:
            total = len(domain) * len(range)
        return total if limit is None else min(total, limit)


def unique_pairs(pairs: Iterable[Pair]) -> Iterator[Pair]:
    """Deduplicate a pair stream, preserving first-seen order."""
    seen: Set[Pair] = set()
    for pair in pairs:
        if pair not in seen:
            seen.add(pair)
            yield pair


def dedup_self_pairs(pairs: Iterable[Pair]) -> Iterator[Pair]:
    """Self-matching hygiene for a candidate pair stream.

    Skips reflexive pairs and drops unordered duplicates — (a, b) and
    (b, a) are the same self-matching candidate; the first orientation
    seen survives.  Both engine execution paths (streamed and sharded)
    apply exactly this filter, which is part of why their results are
    identical; keep it the single definition.
    """
    seen: Set[Pair] = set()
    for id_a, id_b in pairs:
        if id_a == id_b:
            continue
        key = (id_b, id_a) if id_b < id_a else (id_a, id_b)
        if key in seen:
            continue
        seen.add(key)
        yield id_a, id_b


def pair_completeness(candidate_pairs: Iterable[Pair], gold: Mapping) -> float:
    """Fraction of gold correspondences retained by blocking.

    1.0 means blocking loses no true match (recall is not capped);
    anything lower bounds the recall any downstream matcher can reach.
    """
    gold_pairs = gold.pairs()
    if not gold_pairs:
        return 1.0
    surviving = sum(1 for pair in set(candidate_pairs) if pair in gold_pairs)  # repro: allow-unordered -- commutative integer count over a deduplicated set
    return surviving / len(gold_pairs)


def reduction_ratio(candidate_count: int, domain_size: int,
                    range_size: int, *, self_match: bool = False) -> float:
    """Fraction of the comparison space that blocking avoided.

    For two-source matching the comparison space is the cross product
    ``domain_size * range_size``.  For self-matching (``self_match=
    True``, i.e. duplicate detection within one source) it is the
    unordered-pair count ``n * (n - 1) / 2`` — using the cross product
    there understates how much blocking saved by more than 2x.
    """
    if self_match:
        total = domain_size * (domain_size - 1) // 2
    else:
        total = domain_size * range_size
    if total == 0:
        return 0.0
    return max(0.0, 1.0 - candidate_count / total)
