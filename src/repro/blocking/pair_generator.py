"""Blocking protocol, trivial generator and blocking quality metrics."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Optional, Set, Tuple

from repro.core.mapping import Mapping
from repro.model.source import LogicalSource

Pair = Tuple[str, str]


class PairGenerator(ABC):
    """Produces candidate (domain id, range id) pairs for matching."""

    @abstractmethod
    def candidates(self, domain: LogicalSource, range: LogicalSource, *,
                   domain_attribute: str,
                   range_attribute: str) -> Iterator[Pair]:
        """Yield candidate pairs; duplicates are allowed (matchers dedup)."""

    def count(self, domain: LogicalSource, range: LogicalSource, *,
              domain_attribute: str, range_attribute: str,
              limit: Optional[int] = None) -> int:
        """Number of *distinct* candidate pairs (diagnostics).

        Streams the candidate generator instead of materializing it,
        but exact distinct counting still needs a seen-set, so memory
        grows with the number of *distinct* pairs counted.  For large
        sources pass ``limit`` to stop (and bound the seen-set) at the
        first ``limit`` distinct pairs — diagnostics rarely need more
        precision than "at least N".  Strategies with a closed-form
        pair count (e.g. :class:`FullCross`) override this with an
        O(1) implementation.
        """
        seen: Set[Pair] = set()
        add = seen.add
        counted = 0
        for pair in self.candidates(domain, range,
                                    domain_attribute=domain_attribute,
                                    range_attribute=range_attribute):
            if pair not in seen:
                add(pair)
                counted += 1
                if limit is not None and counted >= limit:
                    break
        return counted


class FullCross(PairGenerator):
    """The unblocked cross product (self-matching skips reflexive pairs)."""

    def candidates(self, domain: LogicalSource, range: LogicalSource, *,
                   domain_attribute: str,
                   range_attribute: str) -> Iterator[Pair]:
        if domain is range or domain.name == range.name:
            ids = domain.ids()
            for i, id_a in enumerate(ids):
                for id_b in ids[i + 1:]:
                    yield id_a, id_b
        else:
            range_ids = range.ids()
            for id_a in domain.ids():
                for id_b in range_ids:
                    yield id_a, id_b

    def count(self, domain: LogicalSource, range: LogicalSource, *,
              domain_attribute: str, range_attribute: str,
              limit: Optional[int] = None) -> int:
        """Closed-form count — the cross product is never materialized.

        The generic implementation would build a quadratic seen-set
        here (the full cross product *is* distinct), which is exactly
        the memory blow-up this override avoids.
        """
        if domain is range or domain.name == range.name:
            n = len(domain)
            total = n * (n - 1) // 2
        else:
            total = len(domain) * len(range)
        return total if limit is None else min(total, limit)


def unique_pairs(pairs: Iterable[Pair]) -> Iterator[Pair]:
    """Deduplicate a pair stream, preserving first-seen order."""
    seen: Set[Pair] = set()
    for pair in pairs:
        if pair not in seen:
            seen.add(pair)
            yield pair


def pair_completeness(candidate_pairs: Iterable[Pair], gold: Mapping) -> float:
    """Fraction of gold correspondences retained by blocking.

    1.0 means blocking loses no true match (recall is not capped);
    anything lower bounds the recall any downstream matcher can reach.
    """
    gold_pairs = gold.pairs()
    if not gold_pairs:
        return 1.0
    surviving = sum(1 for pair in set(candidate_pairs) if pair in gold_pairs)
    return surviving / len(gold_pairs)


def reduction_ratio(candidate_count: int, domain_size: int,
                    range_size: int) -> float:
    """Fraction of the cross product that blocking avoided."""
    total = domain_size * range_size
    if total == 0:
        return 0.0
    return max(0.0, 1.0 - candidate_count / total)
