"""Entity clusters from same-mappings.

A set of same-mappings (between different sources and/or self-
mappings) induces an undirected graph over qualified instance ids;
connected components are the real-world entities.  Instance ids are
qualified with their logical source name so equal local ids in
different sources stay distinct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.mapping import Mapping, MappingKind


@dataclass
class EntityCluster:
    """One fused entity: the member instance ids per logical source."""

    members: Dict[str, List[str]] = field(default_factory=dict)

    def add(self, source: str, instance_id: str) -> None:
        ids = self.members.setdefault(source, [])
        if instance_id not in ids:
            ids.append(instance_id)

    def sources(self) -> List[str]:
        return sorted(self.members)

    def ids(self, source: str) -> List[str]:
        return list(self.members.get(source, ()))

    def size(self) -> int:
        return sum(len(ids) for ids in self.members.values())

    def __contains__(self, qualified: Tuple[str, str]) -> bool:
        source, instance_id = qualified
        return instance_id in self.members.get(source, ())

    def __repr__(self) -> str:
        parts = ", ".join(f"{source}:{len(ids)}"
                          for source, ids in sorted(self.members.items()))
        return f"EntityCluster({parts})"


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def find(self, node: Tuple[str, str]) -> Tuple[str, str]:
        root = node
        parent = self._parent
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def union(self, a: Tuple[str, str], b: Tuple[str, str]) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a

    def nodes(self) -> Iterable[Tuple[str, str]]:
        return self._parent.keys()


def clusters_from_mappings(mappings: Iterable[Mapping], *,
                           min_similarity: float = 0.0,
                           singletons: Optional[Dict[str, Iterable[str]]] = None
                           ) -> List[EntityCluster]:
    """Build entity clusters from same-mappings.

    ``min_similarity`` drops weaker correspondences before clustering.
    ``singletons`` optionally seeds additional instances (source name
    -> ids) so unmatched objects still appear as one-member clusters.
    Association mappings are rejected — fusing along them would merge
    distinct entity types.
    """
    union_find = _UnionFind()
    for mapping in mappings:
        if mapping.kind != MappingKind.SAME:
            raise ValueError(
                f"clustering requires same-mappings, got association "
                f"mapping {mapping.domain!r} -> {mapping.range!r}"
            )
        for domain_id, range_id, similarity in mapping:
            if similarity < min_similarity:
                continue
            union_find.union((mapping.domain, domain_id),
                             (mapping.range, range_id))
    if singletons:
        for source, ids in singletons.items():
            for instance_id in ids:
                union_find.find((source, instance_id))

    grouped: Dict[Tuple[str, str], EntityCluster] = {}
    for node in union_find.nodes():
        root = union_find.find(node)
        cluster = grouped.get(root)
        if cluster is None:
            cluster = grouped[root] = EntityCluster()
        cluster.add(*node)
    # equal-size clusters tie-break on their union-find root, not on
    # dict insertion order (which follows union call order)
    return [cluster for _root, cluster in
            sorted(grouped.items(),
                   key=lambda item: (-item[1].size(), item[0]))]
