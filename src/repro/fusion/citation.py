"""Citation analysis over fused publications ([29], §1, §4).

The application that motivated MOMA: "DBLP publications can be
combined with their matching publications in ACM DL and Google Scholar
to obtain additional attribute values like the number of citations".
Given publication same-mappings, the analysis fuses citation counts
(max across the matched entries) and aggregates them per venue and per
author through the association mappings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.core.mapping import Mapping
from repro.datagen.sources import SourceBundle
from repro.fusion.aggregate import FusionPolicy, fuse_clusters
from repro.fusion.cluster import clusters_from_mappings


@dataclass
class CitationReport:
    """Outcome of a citation analysis run."""

    #: DBLP publication id -> fused citation count
    per_publication: Dict[str, float] = field(default_factory=dict)
    #: venue id -> (publication count, total citations)
    per_venue: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    #: author id -> (publication count, total citations)
    per_author: Dict[str, Tuple[int, float]] = field(default_factory=dict)

    def top_publications(self, k: int = 10) -> List[Tuple[str, float]]:
        ranked = sorted(self.per_publication.items(),
                        key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    def top_venues(self, k: int = 10) -> List[Tuple[str, float]]:
        ranked = sorted(
            ((venue, citations)
             for venue, (_, citations) in self.per_venue.items()),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:k]

    def top_authors(self, k: int = 10) -> List[Tuple[str, float]]:
        ranked = sorted(
            ((author, citations)
             for author, (_, citations) in self.per_author.items()),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:k]


def citation_analysis(anchor: SourceBundle,
                      other_bundles: Iterable[SourceBundle],
                      same_mappings: Iterable[Mapping],
                      *, citation_attribute: str = "citations",
                      min_similarity: float = 0.0) -> CitationReport:
    """Fuse citation counts onto ``anchor``'s publications.

    ``same_mappings`` connect the anchor's publication LDS with the
    other bundles' publication LDS (in either orientation).  The fused
    citation count per entity is the maximum across all matched
    entries — duplicate GS entries split counts, so max is the right
    reconciliation.
    """
    bundles = {anchor.name: anchor}
    for bundle in other_bundles:
        bundles[bundle.name] = bundle
    sources = {
        bundle.publications.name: bundle.publications
        for bundle in bundles.values()
    }
    clusters = clusters_from_mappings(
        same_mappings,
        min_similarity=min_similarity,
        singletons={anchor.publications.name: anchor.publications.ids()},
    )
    policy = FusionPolicy(strategies={citation_attribute: "max"})
    fused = fuse_clusters(clusters, sources, policy)

    report = CitationReport()
    anchor_name = anchor.publications.name
    for fused_object in fused:
        anchor_ids = fused_object.cluster.ids(anchor_name)
        if not anchor_ids:
            continue
        citations = fused_object.get(citation_attribute)
        count = float(citations) if citations is not None else 0.0
        for publication_id in anchor_ids:
            report.per_publication[publication_id] = max(
                report.per_publication.get(publication_id, 0.0), count
            )

    if anchor.pub_venue is not None:
        for publication_id, count in report.per_publication.items():
            for venue_id in anchor.pub_venue.range_ids_of(publication_id):
                pubs, total = report.per_venue.get(venue_id, (0, 0.0))
                report.per_venue[venue_id] = (pubs + 1, total + count)
    for publication_id, count in report.per_publication.items():
        for author_id in anchor.pub_author.range_ids_of(publication_id):
            pubs, total = report.per_author.get(author_id, (0, 0.0))
            report.per_author[author_id] = (pubs + 1, total + count)
    return report
