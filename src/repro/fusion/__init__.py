"""Information fusion over same-mappings (paper §1, §4; iFuice [30]).

"The generated mappings allow us to traverse between peers and to
fuse together and enhance information on equivalent objects for data
analysis and query answering." — same-mappings produced by MOMA feed
three consumers here:

* :mod:`repro.fusion.cluster` — connected-component entity clusters
  across any number of same-mappings;
* :mod:`repro.fusion.aggregate` — attribute fusion of clustered
  instances under per-attribute strategies;
* :mod:`repro.fusion.citation` — the citation-analysis application
  ([29]) that originally motivated MOMA: enrich DBLP publications with
  Google Scholar / ACM citation counts and aggregate per venue/author.
"""

from repro.fusion.aggregate import (
    FusedObject,
    FusionPolicy,
    fuse_clusters,
)
from repro.fusion.citation import CitationReport, citation_analysis
from repro.fusion.cluster import EntityCluster, clusters_from_mappings

__all__ = [
    "CitationReport",
    "EntityCluster",
    "FusedObject",
    "FusionPolicy",
    "citation_analysis",
    "clusters_from_mappings",
    "fuse_clusters",
]
