"""Attribute fusion of clustered instances.

Given entity clusters and the logical sources holding the member
instances, fusion produces one record per entity.  Each attribute is
resolved with a strategy:

* ``prefer_source`` — take the value from the highest-priority source
  that has one (DBLP first, for curated attributes like titles);
* ``first`` — first non-null in cluster order;
* ``max`` / ``min`` / ``sum`` — numeric aggregation (citation counts);
* ``longest`` — the longest string value (most complete author lists);
* ``vote`` — the most frequent value.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.fusion.cluster import EntityCluster
from repro.model.source import LogicalSource


@dataclass
class FusionPolicy:
    """Per-attribute strategies plus a source priority order."""

    strategies: Dict[str, str] = field(default_factory=dict)
    source_priority: Sequence[str] = ()
    default_strategy: str = "first"

    def strategy_for(self, attribute: str) -> str:
        return self.strategies.get(attribute, self.default_strategy)


@dataclass
class FusedObject:
    """One fused entity record."""

    cluster: EntityCluster
    attributes: Dict[str, Any] = field(default_factory=dict)

    def get(self, attribute: str, default: Any = None) -> Any:
        return self.attributes.get(attribute, default)


def _as_number(value: Any) -> Optional[float]:
    try:
        return float(str(value).strip())
    except (TypeError, ValueError):
        return None


def _fuse_values(values: List[tuple], strategy: str,
                 priority: Sequence[str]) -> Any:
    """``values`` is a list of (source, value) with value not None."""
    if not values:
        return None
    if strategy == "prefer_source":
        rank = {source: index for index, source in enumerate(priority)}
        ordered = sorted(values, key=lambda item: rank.get(item[0],
                                                           len(rank)))
        return ordered[0][1]
    if strategy == "first":
        return values[0][1]
    if strategy in ("max", "min", "sum"):
        numbers = [number for number in (_as_number(v) for _, v in values)
                   if number is not None]
        if not numbers:
            return None
        if strategy == "max":
            return max(numbers)
        if strategy == "min":
            return min(numbers)
        return sum(numbers)
    if strategy == "longest":
        return max(values, key=lambda item: len(str(item[1])))[1]
    if strategy == "vote":
        counts = Counter(str(value) for _, value in values)
        winner, _ = counts.most_common(1)[0]
        for _, value in values:
            if str(value) == winner:
                return value
    raise ValueError(f"unknown fusion strategy {strategy!r}")


def fuse_clusters(clusters: Sequence[EntityCluster],
                  sources: Dict[str, LogicalSource],
                  policy: Optional[FusionPolicy] = None
                  ) -> List[FusedObject]:
    """Fuse every cluster's member instances into one record each."""
    policy = policy if policy is not None else FusionPolicy()
    fused: List[FusedObject] = []
    for cluster in clusters:
        collected: Dict[str, List[tuple]] = {}
        for source_name in cluster.sources():
            source = sources.get(source_name)
            if source is None:
                continue
            for instance_id in cluster.ids(source_name):
                instance = source.get(instance_id)
                if instance is None:
                    continue
                for attribute, value in instance.attributes.items():
                    if value is not None:
                        collected.setdefault(attribute, []).append(
                            (source_name, value)
                        )
        attributes = {
            attribute: _fuse_values(values, policy.strategy_for(attribute),
                                    policy.source_priority)
            for attribute, values in collected.items()
        }
        fused.append(FusedObject(cluster, attributes))
    return fused
