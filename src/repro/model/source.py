"""Physical and logical data sources.

A physical data source (PDS) models an external system such as DBLP or
Google Scholar, including its *accessibility*: DBLP "can be completely
downloaded" while web sources "cannot be downloaded.  They can both be
accessed by queries" (paper §5.1).  A logical data source (LDS)
"belongs to one physical data source and consists of object instances
of a particular semantic object type" (paper §2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

from repro.model.entity import ObjectInstance


@dataclass(frozen=True)
class ObjectType:
    """A semantic object type such as Publication, Author or Venue."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("object type name must be non-empty")

    def __str__(self) -> str:
        return self.name


@dataclass
class PhysicalSource:
    """A physical data source with its access characteristics."""

    name: str
    description: str = ""
    #: True when the full extension can be materialized (DBLP); False for
    #: query-only web sources (ACM DL, Google Scholar).
    downloadable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("physical source name must be non-empty")

    def __str__(self) -> str:
        return self.name


class LogicalSource:
    """A set of object instances of one type within one physical source.

    Named ``"<PDS>.<ObjectType>"`` (e.g. ``"DBLP.Publication"``), which
    is also how the script language refers to it.  Instance ids are
    unique within the LDS.
    """

    def __init__(self, physical: PhysicalSource, object_type: ObjectType) -> None:
        self.physical = physical
        self.object_type = object_type
        self._instances: Dict[str, ObjectInstance] = {}

    @property
    def name(self) -> str:
        """Qualified name ``"<physical>.<object type>"``."""
        return f"{self.physical.name}.{self.object_type.name}"

    def add(self, instance: ObjectInstance) -> None:
        """Add ``instance``; duplicate ids are rejected."""
        if instance.id in self._instances:
            raise ValueError(
                f"duplicate instance id {instance.id!r} in {self.name}"
            )
        self._instances[instance.id] = instance

    def add_record(self, id: str, **attributes: Any) -> ObjectInstance:
        """Convenience: build and add an instance from keyword attributes."""
        instance = ObjectInstance(id, attributes)
        self.add(instance)
        return instance

    def get(self, id: str) -> Optional[ObjectInstance]:
        """Return the instance with ``id`` or ``None``."""
        return self._instances.get(id)

    def require(self, id: str) -> ObjectInstance:
        """Return the instance with ``id`` or raise ``KeyError``."""
        instance = self._instances.get(id)
        if instance is None:
            raise KeyError(f"no instance {id!r} in {self.name}")
        return instance

    def __contains__(self, id: str) -> bool:
        return id in self._instances

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[ObjectInstance]:
        return iter(self._instances.values())

    def ids(self) -> List[str]:
        """Return the list of instance ids (insertion order)."""
        return list(self._instances)

    def instances(self) -> List[ObjectInstance]:
        """Return the list of instances (insertion order)."""
        return list(self._instances.values())

    def attribute_values(self, attribute: str) -> List[Any]:
        """All non-``None`` values of ``attribute`` across instances."""
        return [
            instance.get(attribute)
            for instance in self._instances.values()
            if instance.get(attribute) is not None
        ]

    def select(self, predicate: Callable[[ObjectInstance], bool]) -> List[ObjectInstance]:
        """Return the instances satisfying ``predicate``."""
        return [inst for inst in self._instances.values() if predicate(inst)]

    def subset(self, ids: Iterable[str]) -> "LogicalSource":
        """Return a new LDS restricted to ``ids`` (missing ids skipped).

        Object matching "needs to be performed on the results of such
        queries" (paper §2.1) — the inputs need not be entire LDS, and
        this is the mechanism that produces partial inputs.
        """
        view = LogicalSource(self.physical, self.object_type)
        for id in ids:
            instance = self._instances.get(id)
            if instance is not None:
                view._instances[instance.id] = instance
        return view

    def __repr__(self) -> str:
        return f"LogicalSource({self.name!r}, {len(self)} instances)"
