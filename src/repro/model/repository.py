"""The mapping repository (paper §2.2, Figure 3).

"A mapping repository is used to materialize both association and
same-mappings.  Given the simple structure of our mappings they can
efficiently be maintained in relational mapping tables."  We follow
that literally: mappings persist into SQLite as three-column
correspondence tables plus a catalog of mapping metadata.  The
repository works equally on disk (shareable between processes) or
in memory (``":memory:"``, the default).
"""

from __future__ import annotations

import sqlite3
from typing import Iterator, List, Optional

from repro.core.mapping import Mapping, MappingKind

_SCHEMA = """
CREATE TABLE IF NOT EXISTS mappings (
    name        TEXT PRIMARY KEY,
    domain      TEXT NOT NULL,
    range       TEXT NOT NULL,
    kind        TEXT NOT NULL CHECK (kind IN ('same', 'association')),
    cardinality INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS correspondences (
    mapping    TEXT NOT NULL REFERENCES mappings(name) ON DELETE CASCADE,
    domain_id  TEXT NOT NULL,
    range_id   TEXT NOT NULL,
    similarity REAL NOT NULL CHECK (similarity >= 0 AND similarity <= 1),
    PRIMARY KEY (mapping, domain_id, range_id)
);
CREATE INDEX IF NOT EXISTS idx_corr_mapping
    ON correspondences(mapping);
"""


class MappingRepository:
    """SQLite-backed store of named mappings."""

    def __init__(self, path: str = ":memory:") -> None:
        self._path = path
        self._connection = sqlite3.connect(path)
        self._connection.execute("PRAGMA foreign_keys = ON")
        self._connection.executescript(_SCHEMA)
        self._connection.commit()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "MappingRepository":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- write -------------------------------------------------------------

    def save(self, name: str, mapping: Mapping, *, replace: bool = True) -> None:
        """Persist ``mapping`` under ``name``.

        With ``replace=False`` an existing name raises ``ValueError``
        instead of being overwritten.
        """
        if not name:
            raise ValueError("mapping name must be non-empty")
        cursor = self._connection.cursor()
        exists = cursor.execute(
            "SELECT 1 FROM mappings WHERE name = ?", (name,)
        ).fetchone()
        if exists:
            if not replace:
                raise ValueError(f"mapping {name!r} already stored")
            cursor.execute("DELETE FROM correspondences WHERE mapping = ?", (name,))
            cursor.execute("DELETE FROM mappings WHERE name = ?", (name,))
        cursor.execute(
            "INSERT INTO mappings (name, domain, range, kind, cardinality) "
            "VALUES (?, ?, ?, ?, ?)",
            (name, mapping.domain, mapping.range, mapping.kind.value,
             len(mapping)),
        )
        cursor.executemany(
            "INSERT INTO correspondences (mapping, domain_id, range_id, similarity) "
            "VALUES (?, ?, ?, ?)",
            ((name, corr.domain, corr.range, corr.similarity)
             for corr in mapping),
        )
        self._connection.commit()

    def delete(self, name: str) -> bool:
        """Remove a stored mapping; returns whether it existed."""
        cursor = self._connection.cursor()
        cursor.execute("DELETE FROM correspondences WHERE mapping = ?", (name,))
        cursor.execute("DELETE FROM mappings WHERE name = ?", (name,))
        removed = cursor.rowcount > 0
        self._connection.commit()
        return removed

    # -- read ----------------------------------------------------------------

    def contains(self, name: str) -> bool:
        row = self._connection.execute(
            "SELECT 1 FROM mappings WHERE name = ?", (name,)
        ).fetchone()
        return row is not None

    def __contains__(self, name: str) -> bool:
        return self.contains(name)

    def load(self, name: str) -> Mapping:
        """Load the mapping stored under ``name`` (KeyError on miss)."""
        header = self._connection.execute(
            "SELECT domain, range, kind FROM mappings WHERE name = ?", (name,)
        ).fetchone()
        if header is None:
            raise KeyError(f"no mapping {name!r} in repository")
        domain, range_, kind = header
        mapping = Mapping(domain, range_, kind=MappingKind(kind), name=name)
        rows = self._connection.execute(
            "SELECT domain_id, range_id, similarity FROM correspondences "
            "WHERE mapping = ?",
            (name,),
        )
        for domain_id, range_id, similarity in rows:
            mapping.add(domain_id, range_id, similarity)
        return mapping

    def names(self) -> List[str]:
        """Sorted names of all stored mappings."""
        rows = self._connection.execute(
            "SELECT name FROM mappings ORDER BY name"
        ).fetchall()
        return [row[0] for row in rows]

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        row = self._connection.execute("SELECT COUNT(*) FROM mappings").fetchone()
        return int(row[0])

    def info(self, name: str) -> Optional[dict]:
        """Metadata of a stored mapping without loading its rows."""
        row = self._connection.execute(
            "SELECT domain, range, kind, cardinality FROM mappings "
            "WHERE name = ?",
            (name,),
        ).fetchone()
        if row is None:
            return None
        return {
            "name": name,
            "domain": row[0],
            "range": row[1],
            "kind": row[2],
            "correspondences": row[3],
        }

    # -- relational access ---------------------------------------------------

    def join(self, left_name: str, right_name: str) -> List[tuple]:
        """Relational join of two mapping tables on the shared source.

        "The composition can be computed very efficiently in our
        implementation by joining the mapping tables" (§5.3) — this is
        that join, executed inside SQLite.  Returns rows
        ``(domain_id, via_id, range_id, sim1, sim2)``.
        """
        query = """
            SELECT l.domain_id, l.range_id, r.range_id,
                   l.similarity, r.similarity
            FROM correspondences AS l
            JOIN correspondences AS r ON l.range_id = r.domain_id
            WHERE l.mapping = ? AND r.mapping = ?
        """
        return list(self._connection.execute(query, (left_name, right_name)))

    def __repr__(self) -> str:
        return f"MappingRepository({self._path!r}, {len(self)} mappings)"
