"""The mapping repository (paper §2.2, Figure 3).

"A mapping repository is used to materialize both association and
same-mappings.  Given the simple structure of our mappings they can
efficiently be maintained in relational mapping tables."  We follow
that literally: mappings persist into SQLite as three-column
correspondence tables plus a catalog of mapping metadata.  The
repository works equally on disk (shareable between processes) or
in memory (``":memory:"``, the default).

Concurrency model (the serving subsystem runs repository writes from
HTTP handler threads):

* **file-backed** stores open one connection *per thread*
  (``threading.local``) in WAL journal mode, so readers never block
  the writer and short write bursts queue on SQLite's own busy
  handler instead of erroring;
* **in-memory** stores cannot share one database across connections,
  so a single connection is shared and every operation serializes on
  an internal lock.

Besides the wholesale :meth:`MappingRepository.save` (which still
replaces a mapping atomically), :meth:`MappingRepository.append`
upserts correspondences incrementally — the standing service appends
each scored micro-batch without rewriting the mapping table.
"""

from __future__ import annotations

import sqlite3
import threading
import weakref
from contextlib import nullcontext
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.correspondence import validate_similarity
from repro.core.mapping import Mapping, MappingKind

_SCHEMA = """
CREATE TABLE IF NOT EXISTS mappings (
    name        TEXT PRIMARY KEY,
    domain      TEXT NOT NULL,
    range       TEXT NOT NULL,
    kind        TEXT NOT NULL CHECK (kind IN ('same', 'association')),
    cardinality INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS correspondences (
    mapping    TEXT NOT NULL REFERENCES mappings(name) ON DELETE CASCADE,
    domain_id  TEXT NOT NULL,
    range_id   TEXT NOT NULL,
    similarity REAL NOT NULL CHECK (similarity >= 0 AND similarity <= 1),
    PRIMARY KEY (mapping, domain_id, range_id)
);
CREATE INDEX IF NOT EXISTS idx_corr_mapping
    ON correspondences(mapping);
"""

_UPSERT = """
INSERT INTO correspondences (mapping, domain_id, range_id, similarity)
VALUES (?, ?, ?, ?)
ON CONFLICT (mapping, domain_id, range_id)
DO UPDATE SET similarity = excluded.similarity
WHERE excluded.similarity > correspondences.similarity
"""

Triples = Iterable[Tuple[str, str, float]]


class _ThreadAnchor:
    """Weakref-able thread-local marker; dies with its owner thread."""

    __slots__ = ("__weakref__",)


class MappingRepository:
    """SQLite-backed store of named mappings, usable from many threads."""

    def __init__(self, path: str = ":memory:") -> None:
        self._path = path
        self._memory = path == ":memory:"
        self._lock = threading.RLock()
        self._local = threading.local()
        self._connections: List[sqlite3.Connection] = []
        self._closed = False
        if self._memory:
            # one :memory: database per connection — share a single
            # connection and serialize on the lock instead
            self._shared: Optional[sqlite3.Connection] = sqlite3.connect(
                path, check_same_thread=False)
            self._shared.execute("PRAGMA foreign_keys = ON")
            self._shared.executescript(_SCHEMA)
            self._shared.commit()
            self._connections.append(self._shared)
        else:
            self._shared = None
            self._connection()  # create eagerly so schema errors surface here

    # -- connections ---------------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        """The calling thread's connection (shared one for ``:memory:``)."""
        if self._closed:
            raise RuntimeError("repository is closed")
        if self._memory:
            return self._shared
        connection = getattr(self._local, "connection", None)
        if connection is None:
            # each connection serves exactly one thread (thread-local),
            # but close() must be able to reach it from any thread
            connection = sqlite3.connect(self._path,
                                         check_same_thread=False)
            connection.execute("PRAGMA foreign_keys = ON")
            connection.execute("PRAGMA journal_mode = WAL")
            connection.execute("PRAGMA busy_timeout = 5000")
            connection.executescript(_SCHEMA)
            connection.commit()
            self._local.connection = connection
            # the anchor lives in the thread's local storage: when the
            # thread dies its locals are dropped, the finalizer fires
            # and the connection is closed — handler threads (one per
            # HTTP client) must not leak one descriptor each
            anchor = _ThreadAnchor()
            self._local.anchor = anchor
            weakref.finalize(anchor, self._release, connection)
            with self._lock:
                self._connections.append(connection)
        return connection

    def _release(self, connection: sqlite3.Connection) -> None:
        """Close a per-thread connection whose owner thread died."""
        with self._lock:
            if connection in self._connections:
                self._connections.remove(connection)
        try:
            connection.close()
        except sqlite3.Error:  # pragma: no cover - already closed
            pass

    def _guard(self):
        """Serialize operations only where connections are shared."""
        return self._lock if self._memory else nullcontext()

    def journal_mode(self) -> str:
        """The active journal mode (``wal`` for file-backed stores)."""
        with self._guard():
            row = self._connection().execute(
                "PRAGMA journal_mode").fetchone()
        return str(row[0]).lower()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close every connection this repository opened."""
        with self._lock:
            self._closed = True
            for connection in self._connections:
                connection.close()
            self._connections.clear()
            self._local = threading.local()

    def __enter__(self) -> "MappingRepository":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- write -------------------------------------------------------------

    def save(self, name: str, mapping: Mapping, *, replace: bool = True) -> None:
        """Persist ``mapping`` under ``name``, replacing it wholesale.

        With ``replace=False`` an existing name raises ``ValueError``
        instead of being overwritten.  For incremental writes use
        :meth:`append`.
        """
        if not name:
            raise ValueError("mapping name must be non-empty")
        with self._guard():
            connection = self._connection()
            cursor = connection.cursor()
            exists = cursor.execute(
                "SELECT 1 FROM mappings WHERE name = ?", (name,)
            ).fetchone()
            if exists:
                if not replace:
                    raise ValueError(f"mapping {name!r} already stored")
                cursor.execute(
                    "DELETE FROM correspondences WHERE mapping = ?", (name,))
                cursor.execute("DELETE FROM mappings WHERE name = ?", (name,))
            cursor.execute(
                "INSERT INTO mappings (name, domain, range, kind, cardinality) "
                "VALUES (?, ?, ?, ?, ?)",
                (name, mapping.domain, mapping.range, mapping.kind.value,
                 len(mapping)),
            )
            cursor.executemany(
                "INSERT INTO correspondences "
                "(mapping, domain_id, range_id, similarity) "
                "VALUES (?, ?, ?, ?)",
                ((name, corr.domain, corr.range, corr.similarity)
                 for corr in mapping),
            )
            connection.commit()

    def append(self, name: str,
               correspondences: Union[Mapping, Triples]) -> int:
        """Upsert correspondences into ``name`` without a rewrite.

        ``correspondences`` is a :class:`Mapping` (whose header
        creates the catalog row when ``name`` is new) or an iterable
        of ``(domain id, range id, similarity)`` triples (``name``
        must then already exist — KeyError otherwise).  Conflicting
        pairs keep the larger similarity, mirroring
        :meth:`Mapping.add`'s default policy.  Returns the mapping's
        new cardinality.
        """
        if not name:
            raise ValueError("mapping name must be non-empty")
        if isinstance(correspondences, Mapping):
            header = correspondences
            triples = [(corr.domain, corr.range, corr.similarity)
                       for corr in correspondences]
        else:
            header = None
            triples = [
                (domain_id, range_id, validate_similarity(similarity))
                for domain_id, range_id, similarity in correspondences
            ]
        with self._guard():
            connection = self._connection()
            cursor = connection.cursor()
            exists = cursor.execute(
                "SELECT 1 FROM mappings WHERE name = ?", (name,)
            ).fetchone()
            if not exists:
                if header is None:
                    raise KeyError(
                        f"no mapping {name!r} in repository; append a "
                        f"Mapping (not bare triples) to create it")
                cursor.execute(
                    "INSERT INTO mappings "
                    "(name, domain, range, kind, cardinality) "
                    "VALUES (?, ?, ?, ?, 0)",
                    (name, header.domain, header.range, header.kind.value),
                )
            cursor.executemany(
                _UPSERT, ((name, domain_id, range_id, similarity)
                          for domain_id, range_id, similarity in triples))
            cursor.execute(
                "UPDATE mappings SET cardinality = "
                "(SELECT COUNT(*) FROM correspondences WHERE mapping = ?) "
                "WHERE name = ?",
                (name, name),
            )
            cardinality = cursor.execute(
                "SELECT cardinality FROM mappings WHERE name = ?", (name,)
            ).fetchone()[0]
            connection.commit()
        return int(cardinality)

    def delete(self, name: str) -> bool:
        """Remove a stored mapping; returns whether it existed."""
        with self._guard():
            connection = self._connection()
            cursor = connection.cursor()
            cursor.execute(
                "DELETE FROM correspondences WHERE mapping = ?", (name,))
            cursor.execute("DELETE FROM mappings WHERE name = ?", (name,))
            removed = cursor.rowcount > 0
            connection.commit()
        return removed

    # -- read ----------------------------------------------------------------

    def contains(self, name: str) -> bool:
        with self._guard():
            row = self._connection().execute(
                "SELECT 1 FROM mappings WHERE name = ?", (name,)
            ).fetchone()
        return row is not None

    def __contains__(self, name: str) -> bool:
        return self.contains(name)

    def load(self, name: str) -> Mapping:
        """Load the mapping stored under ``name`` (KeyError on miss)."""
        with self._guard():
            connection = self._connection()
            header = connection.execute(
                "SELECT domain, range, kind FROM mappings WHERE name = ?",
                (name,),
            ).fetchone()
            if header is None:
                raise KeyError(f"no mapping {name!r} in repository")
            domain, range_, kind = header
            mapping = Mapping(domain, range_, kind=MappingKind(kind),
                              name=name)
            rows = connection.execute(
                "SELECT domain_id, range_id, similarity FROM correspondences "
                "WHERE mapping = ?",
                (name,),
            ).fetchall()
        for domain_id, range_id, similarity in rows:
            mapping.add(domain_id, range_id, similarity)
        return mapping

    def names(self) -> List[str]:
        """Sorted names of all stored mappings."""
        with self._guard():
            rows = self._connection().execute(
                "SELECT name FROM mappings ORDER BY name"
            ).fetchall()
        return [row[0] for row in rows]

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        with self._guard():
            row = self._connection().execute(
                "SELECT COUNT(*) FROM mappings").fetchone()
        return int(row[0])

    def info(self, name: str) -> Optional[dict]:
        """Metadata of a stored mapping without loading its rows."""
        with self._guard():
            row = self._connection().execute(
                "SELECT domain, range, kind, cardinality FROM mappings "
                "WHERE name = ?",
                (name,),
            ).fetchone()
        if row is None:
            return None
        return {
            "name": name,
            "domain": row[0],
            "range": row[1],
            "kind": row[2],
            "correspondences": row[3],
        }

    # -- relational access ---------------------------------------------------

    def join(self, left_name: str, right_name: str) -> List[tuple]:
        """Relational join of two mapping tables on the shared source.

        "The composition can be computed very efficiently in our
        implementation by joining the mapping tables" (§5.3) — this is
        that join, executed inside SQLite.  Returns rows
        ``(domain_id, via_id, range_id, sim1, sim2)``.
        """
        query = """
            SELECT l.domain_id, l.range_id, r.range_id,
                   l.similarity, r.similarity
            FROM correspondences AS l
            JOIN correspondences AS r ON l.range_id = r.domain_id
            WHERE l.mapping = ? AND r.mapping = ?
        """
        with self._guard():
            return list(self._connection().execute(
                query, (left_name, right_name)))

    def __repr__(self) -> str:
        return f"MappingRepository({self._path!r}, {len(self)} mappings)"
