"""The source-mapping model (paper §2.1, Figure 2).

"PDS, LDS and mappings are represented in a so-called source-mapping
model (SMM)."  The SMM registers physical sources, object types,
logical sources, *mapping types* (semantic relationship descriptions
such as "publications of author" with their cardinality) and actual
mapping instances.  It also answers the structural queries the match
strategies of §4 need: which same-mappings exist between two sources,
and which compose paths connect them (including via a hub, Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.core.mapping import Mapping, MappingKind
from repro.model.source import LogicalSource, ObjectType, PhysicalSource

#: allowed semantic cardinalities of association mappings (Fig. 10)
CARDINALITIES = ("1:1", "1:n", "n:1", "n:m")


@dataclass(frozen=True)
class MappingType:
    """A semantic mapping type, e.g. ``publications of venue``.

    ``inverse`` names the opposite direction (VenuePub <-> PubVenue);
    the neighborhood matcher requires a pair of inverse association
    types around a same-mapping.
    """

    name: str
    domain_type: str
    range_type: str
    cardinality: str = "n:m"
    inverse: Optional[str] = None

    def __post_init__(self) -> None:
        if self.cardinality not in CARDINALITIES:
            raise ValueError(
                f"cardinality must be one of {CARDINALITIES}, "
                f"got {self.cardinality!r}"
            )

    @property
    def kind(self) -> MappingKind:
        """Same-mapping types connect equal object types 1:1."""
        if self.domain_type == self.range_type and self.cardinality == "1:1":
            return MappingKind.SAME
        return MappingKind.ASSOCIATION


class SourceMappingModel:
    """Registry of sources and mappings plus structural queries."""

    def __init__(self) -> None:
        self._physical: Dict[str, PhysicalSource] = {}
        self._types: Dict[str, ObjectType] = {}
        self._sources: Dict[str, LogicalSource] = {}
        self._mapping_types: Dict[str, MappingType] = {}
        #: mapping name -> (mapping, mapping type name or None)
        self._mappings: Dict[str, Tuple[Mapping, Optional[str]]] = {}

    # -- registration ----------------------------------------------------

    def add_physical_source(self, source: PhysicalSource) -> PhysicalSource:
        if source.name in self._physical:
            raise ValueError(f"physical source {source.name!r} already exists")
        self._physical[source.name] = source
        return source

    def add_object_type(self, object_type: ObjectType) -> ObjectType:
        existing = self._types.get(object_type.name)
        if existing is not None:
            return existing
        self._types[object_type.name] = object_type
        return object_type

    def add_source(self, source: LogicalSource) -> LogicalSource:
        """Register a logical source (its PDS and type are auto-added)."""
        if source.name in self._sources:
            raise ValueError(f"logical source {source.name!r} already exists")
        if source.physical.name not in self._physical:
            self._physical[source.physical.name] = source.physical
        self.add_object_type(source.object_type)
        self._sources[source.name] = source
        return source

    def create_source(self, physical_name: str, type_name: str,
                      *, downloadable: bool = True) -> LogicalSource:
        """Convenience: create and register an LDS by names."""
        physical = self._physical.get(physical_name)
        if physical is None:
            physical = self.add_physical_source(
                PhysicalSource(physical_name, downloadable=downloadable)
            )
        object_type = self.add_object_type(ObjectType(type_name))
        return self.add_source(LogicalSource(physical, object_type))

    def add_mapping_type(self, mapping_type: MappingType) -> MappingType:
        if mapping_type.name in self._mapping_types:
            raise ValueError(f"mapping type {mapping_type.name!r} already exists")
        self._mapping_types[mapping_type.name] = mapping_type
        return mapping_type

    def register_mapping(self, name: str, mapping: Mapping,
                         mapping_type: Optional[str] = None,
                         *, replace: bool = False) -> None:
        """Register a mapping instance under ``name``.

        Domain and range LDS must exist; an optional ``mapping_type``
        ties the instance to its semantic type and checks object-type
        compatibility.
        """
        if name in self._mappings and not replace:
            raise ValueError(f"mapping {name!r} already registered")
        for endpoint in (mapping.domain, mapping.range):
            if endpoint not in self._sources:
                raise ValueError(f"unknown logical source {endpoint!r}")
        if mapping_type is not None:
            declared = self._mapping_types.get(mapping_type)
            if declared is None:
                raise ValueError(f"unknown mapping type {mapping_type!r}")
            domain_type = self._sources[mapping.domain].object_type.name
            range_type = self._sources[mapping.range].object_type.name
            if (declared.domain_type, declared.range_type) != (domain_type, range_type):
                raise ValueError(
                    f"mapping type {mapping_type!r} relates "
                    f"{declared.domain_type}->{declared.range_type}, but the "
                    f"mapping connects {domain_type}->{range_type}"
                )
        self._mappings[name] = (mapping, mapping_type)

    # -- lookup -----------------------------------------------------------

    def get_physical_source(self, name: str) -> Optional[PhysicalSource]:
        return self._physical.get(name)

    def get_source(self, name: str) -> Optional[LogicalSource]:
        return self._sources.get(name)

    def require_source(self, name: str) -> LogicalSource:
        source = self._sources.get(name)
        if source is None:
            raise KeyError(f"unknown logical source {name!r}")
        return source

    def get_mapping_type(self, name: str) -> Optional[MappingType]:
        return self._mapping_types.get(name)

    def find_mapping(self, name: str) -> Optional[Mapping]:
        entry = self._mappings.get(name)
        return entry[0] if entry else None

    def mapping_names(self) -> List[str]:
        return sorted(self._mappings)

    def source_names(self) -> List[str]:
        return sorted(self._sources)

    def sources_of_type(self, type_name: str) -> List[LogicalSource]:
        """All logical sources carrying the given object type."""
        return [
            source for source in self._sources.values()
            if source.object_type.name == type_name
        ]

    def mappings_between(self, domain: str, range: str,
                         kind: Optional[MappingKind] = None) -> List[Mapping]:
        """Registered mappings from ``domain`` to ``range``."""
        found = []
        for mapping, _ in self._mappings.values():
            if mapping.domain == domain and mapping.range == range:
                if kind is None or mapping.kind == kind:
                    found.append(mapping)
        return found

    # -- structural queries ------------------------------------------------

    def same_mapping_graph(self) -> "nx.DiGraph":
        """Directed graph of registered same-mappings between LDS."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self._sources)
        for name, (mapping, _) in self._mappings.items():
            if mapping.kind == MappingKind.SAME and not mapping.is_self_mapping():
                graph.add_edge(mapping.domain, mapping.range, name=name)
                # same-mappings are semantically symmetric; the inverse
                # is always derivable
                graph.add_edge(mapping.range, mapping.domain, name=f"{name}~inv")
        return graph

    def find_compose_paths(self, source: str, target: str,
                           max_length: int = 2) -> List[List[str]]:
        """Same-mapping name paths from ``source`` to ``target``.

        Each path is a list of mapping names (``~inv`` suffix marks
        that the registered mapping must be inverted).  Used to
        enumerate the §4.1.2 compose alternatives, e.g. DBLP->GS->ACM.
        """
        graph = self.same_mapping_graph()
        if source not in graph or target not in graph:
            return []
        paths: List[List[str]] = []
        for node_path in nx.all_simple_paths(graph, source, target,
                                             cutoff=max_length):
            names = [
                graph.edges[first, second]["name"]
                for first, second in zip(node_path, node_path[1:])
            ]
            paths.append(names)
        paths.sort(key=len)
        return paths

    def resolve_path(self, names: Iterable[str]) -> List[Mapping]:
        """Materialize a mapping-name path (handling ``~inv`` markers)."""
        resolved = []
        for name in names:
            if name.endswith("~inv"):
                mapping = self.find_mapping(name[:-4])
                if mapping is None:
                    raise KeyError(f"unknown mapping {name[:-4]!r}")
                resolved.append(mapping.inverse())
            else:
                mapping = self.find_mapping(name)
                if mapping is None:
                    raise KeyError(f"unknown mapping {name!r}")
                resolved.append(mapping)
        return resolved

    def __repr__(self) -> str:
        return (
            f"SourceMappingModel({len(self._physical)} PDS, "
            f"{len(self._sources)} LDS, {len(self._mappings)} mappings)"
        )
