"""iFuice-style data model substrate.

MOMA is built on the iFuice P2P data-integration platform whose model
distinguishes *physical data sources* (DBLP, ACM DL, Google Scholar)
from *logical data sources* — one per (physical source, object type)
pair — and represents all inter-source relationships as instance
mappings registered in a *source-mapping model* (paper §2.1, Fig. 2).
This package implements that substrate plus the mapping repository and
mapping cache of the MOMA architecture (Fig. 3).
"""

from repro.model.cache import MappingCache
from repro.model.entity import ObjectInstance
from repro.model.repository import MappingRepository
from repro.model.smm import MappingType, SourceMappingModel
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.model.io import (
    mapping_to_csv_text,
    read_mapping_csv,
    write_mapping_csv,
)

__all__ = [
    "LogicalSource",
    "MappingCache",
    "MappingRepository",
    "MappingType",
    "ObjectInstance",
    "ObjectType",
    "PhysicalSource",
    "SourceMappingModel",
    "mapping_to_csv_text",
    "read_mapping_csv",
    "write_mapping_csv",
]
