"""Import/export of mapping tables as delimited text files.

The repository persists mapping tables in SQLite; interchange with
other tools (spreadsheets, dedupe pipelines, the paper's "existing
mappings in data sources") happens through plain delimited files with
the canonical three columns ``domain_id, range_id, similarity``.
A two-column file (no similarity) is accepted on import with an
assumed similarity of 1.0 — the common format of link dumps such as
the GS→ACM links of §5.3.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Optional, TextIO, Union

from repro.core.mapping import Mapping, MappingKind

_HEADER = ("domain_id", "range_id", "similarity")


def write_mapping_csv(mapping: Mapping, target: Union[str, Path, TextIO],
                      *, delimiter: str = ",",
                      header: bool = True) -> int:
    """Write ``mapping`` as a delimited mapping table; returns row count.

    Rows are emitted in the deterministic ``to_rows`` order so exports
    diff cleanly.
    """
    rows = mapping.to_rows()

    def _write(stream: TextIO) -> None:
        writer = csv.writer(stream, delimiter=delimiter,
                            lineterminator="\n")
        if header:
            writer.writerow(_HEADER)
        for domain_id, range_id, similarity in rows:
            writer.writerow([domain_id, range_id, f"{similarity:g}"])

    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8", newline="") as stream:
            _write(stream)
    else:
        _write(target)
    return len(rows)


def read_mapping_csv(source: Union[str, Path, TextIO], *,
                     domain: str, range: str,
                     kind: MappingKind = MappingKind.SAME,
                     delimiter: str = ",",
                     default_similarity: float = 1.0,
                     name: Optional[str] = None) -> Mapping:
    """Read a delimited mapping table into a :class:`Mapping`.

    Accepts three-column rows (with similarity) and two-column rows
    (``default_similarity`` assumed).  A header row is auto-detected by
    its literal column names.  Blank lines are skipped; malformed rows
    raise ``ValueError`` with the offending line number.
    """
    def _parse(stream: TextIO) -> Mapping:
        mapping = Mapping(domain, range, kind=kind, name=name)
        reader = csv.reader(stream, delimiter=delimiter)
        for line_number, row in enumerate(reader, start=1):
            if not row or all(not cell.strip() for cell in row):
                continue
            cells = [cell.strip() for cell in row]
            if line_number == 1 and tuple(
                    cell.lower() for cell in cells[:3]) == _HEADER[:len(cells)]:
                continue
            if len(cells) == 2:
                domain_id, range_id = cells
                similarity = default_similarity
            elif len(cells) >= 3:
                domain_id, range_id = cells[0], cells[1]
                try:
                    similarity = float(cells[2])
                except ValueError as error:
                    raise ValueError(
                        f"line {line_number}: bad similarity {cells[2]!r}"
                    ) from error
            else:
                raise ValueError(
                    f"line {line_number}: expected 2 or 3 columns, "
                    f"got {len(cells)}"
                )
            if not domain_id or not range_id:
                raise ValueError(f"line {line_number}: empty id")
            try:
                mapping.add(domain_id, range_id, similarity)
            except ValueError as error:
                raise ValueError(f"line {line_number}: {error}") from error
        return mapping

    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8", newline="") as stream:
            return _parse(stream)
    return _parse(source)


def mapping_to_csv_text(mapping: Mapping, *, delimiter: str = ",",
                        header: bool = True) -> str:
    """Render the mapping table as a CSV string (tests, debugging)."""
    buffer = io.StringIO()
    write_mapping_csv(mapping, buffer, delimiter=delimiter, header=header)
    return buffer.getvalue()
