"""The mapping cache (paper §2.2, Figure 3).

"MOMA also maintains a mapping cache for storing intermediate
same-mappings derived during a match workflow."  A bounded LRU keyed
by step/operator signature; entries are whole Mapping objects, so a
repeated combiner invocation inside (or across) workflows is free.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.core.mapping import Mapping


class MappingCache:
    """Bounded LRU cache of intermediate mappings."""

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Mapping]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def make_key(operator: str, *parts: object) -> str:
        """Build a deterministic cache key from operator and parameters."""
        return "|".join([operator, *map(str, parts)])

    def get(self, key: str) -> Optional[Mapping]:
        """Return the cached mapping or ``None``; refreshes recency."""
        mapping = self._entries.get(key)
        if mapping is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return mapping

    def put(self, key: str, mapping: Mapping) -> None:
        """Insert ``mapping``; evicts the least recently used entry."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = mapping
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._entries.clear()

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Hit/miss counters and current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "max_entries": self.max_entries,
        }

    def __repr__(self) -> str:
        return (
            f"MappingCache({len(self._entries)}/{self.max_entries} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )
