"""Object instances: the atoms of logical data sources.

"Each object instance is identified by an id value and may have
additional attribute values" (paper §2.1).  Instances are immutable;
updates produce new instances, which keeps sources safe to share
between workflows and caches.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Dict, Iterator, Mapping, Optional


class ObjectInstance:
    """An identified record with a read-only attribute dictionary."""

    __slots__ = ("id", "_attributes")

    def __init__(self, id: str, attributes: Optional[Mapping[str, Any]] = None) -> None:
        if not isinstance(id, str) or not id:
            raise ValueError(f"instance id must be a non-empty string, got {id!r}")
        self.id = id
        self._attributes: Mapping[str, Any] = MappingProxyType(
            dict(attributes) if attributes else {}
        )

    @property
    def attributes(self) -> Mapping[str, Any]:
        """Read-only view of the attribute dictionary."""
        return self._attributes

    def get(self, attribute: str, default: Any = None) -> Any:
        """Return the value of ``attribute`` or ``default`` when absent."""
        return self._attributes.get(attribute, default)

    def __getitem__(self, attribute: str) -> Any:
        return self._attributes[attribute]

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._attributes

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def with_attributes(self, **updates: Any) -> "ObjectInstance":
        """Return a copy with ``updates`` merged into the attributes."""
        merged: Dict[str, Any] = dict(self._attributes)
        merged.update(updates)
        return ObjectInstance(self.id, merged)

    def __reduce__(self):
        # the mappingproxy view defeats default pickling; rebuild from
        # a plain dict so instances can cross process boundaries (the
        # serve cluster ships query batches to shard workers)
        return (ObjectInstance, (self.id, dict(self._attributes)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ObjectInstance):
            return NotImplemented
        return self.id == other.id and dict(self._attributes) == dict(other._attributes)

    def __hash__(self) -> int:
        return hash(self.id)

    def __repr__(self) -> str:
        preview = ", ".join(
            f"{key}={value!r}" for key, value in list(self._attributes.items())[:3]
        )
        return f"ObjectInstance({self.id!r}, {{{preview}}})"
