"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``stats``       — generate a dataset and print Table-1-style counts;
* ``experiments`` — run paper experiments and print their tables;
* ``figures``     — reproduce the worked figures (1, 4, 6, 9);
* ``export``      — write the generated sources' association mappings
  and gold standards as CSV mapping tables for external tools;
* ``serve``       — run the incremental match service as a JSON HTTP
  server over a generated reference source;
* ``lint``        — run the invariant-aware static analysis pass
  (DET/LCK/PKL/DUR/API rule families) over the source tree.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

EXPERIMENT_NAMES = [f"table{i}" for i in range(1, 11)] + [
    "self-mapping",
]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MOMA (CIDR 2007) reproduction toolkit",
    )
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "paper"],
                        help="dataset scale preset (default: tiny)")
    parser.add_argument("--seed", type=int, default=7,
                        help="world generator seed (default: 7)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the batch match engine "
                             "(default: serial, or CPU-derived with "
                             "--auto)")
    parser.add_argument("--chunk-size", type=int, default=2048,
                        help="candidate pairs per engine chunk "
                             "(default: 2048)")
    parser.add_argument("--shard-blocking", action="store_true",
                        help="generate candidate pairs inside the workers "
                             "(sharded blocking) instead of streaming them "
                             "from the parent; identical results, faster "
                             "blocked multi-worker runs")
    parser.add_argument("--n-shards", type=int, default=None,
                        help="shard count for --shard-blocking runs "
                             "(default: engine-derived, 4 per worker; "
                             "adapted online under --auto)")
    parser.add_argument("--balance-shards", action="store_true",
                        help="with --shard-blocking: split oversized "
                             "blocking shards and bin-pack them so skewed "
                             "block-size distributions (one dominant key "
                             "or stop-word token) cannot leave one worker "
                             "with a long tail; identical results")
    parser.add_argument("--auto", action="store_true",
                        help="let the engine tune itself: adapt chunk "
                             "size to observed scoring throughput, shard "
                             "blocking work whenever the strategy "
                             "supports it, and rebalance shards when "
                             "their cost estimates are skewed — replaces "
                             "hand-set --chunk-size/--shard-blocking/"
                             "--balance-shards; identical results")
    parser.add_argument("--profile", action="store_true",
                        help="record per-stage engine timings (prepare, "
                             "chunk scoring, shard durations) into "
                             "engine.last_profile; pure observation, "
                             "identical results")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("stats", help="print dataset statistics")

    experiments = subparsers.add_parser(
        "experiments", help="run paper experiments")
    experiments.add_argument(
        "names", nargs="*", default=[],
        help=f"experiments to run (default: all); one of {EXPERIMENT_NAMES}")

    subparsers.add_parser("figures", help="reproduce Figures 1/4/6/9")

    export = subparsers.add_parser(
        "export", help="export mappings and gold standards as CSV")
    export.add_argument("--out", required=True,
                        help="target directory for the CSV mapping tables")

    serve = subparsers.add_parser(
        "serve", help="run the incremental match service over HTTP")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port, 0 for ephemeral (default: 8765)")
    serve.add_argument("--reference", default="dblp",
                       choices=["dblp", "acm", "gs"],
                       help="generated source to serve as the reference "
                            "(default: dblp)")
    serve.add_argument("--attribute", default="title",
                       help="match attribute (default: title)")
    serve.add_argument("--similarity", default="trigram",
                       help="similarity function registry name "
                            "(default: trigram)")
    serve.add_argument("--missing", default="skip",
                       choices=("skip", "zero"),
                       help="missing-value policy for the match "
                            "attribute: drop the pair or score it zero "
                            "(default: skip)")
    serve.add_argument("--threshold", type=float, default=0.7,
                       help="similarity threshold (default: 0.7)")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="result-reuse cache entries, 0 disables "
                            "(default: 1024)")
    serve.add_argument("--max-candidates", type=int, default=50,
                       help="candidates scored per query record, 0 for "
                            "exhaustive scoring (default: 50)")
    serve.add_argument("--repository", default=None, metavar="PATH",
                       help="SQLite file persisting matched "
                            "same-mappings (default: no persistence)")
    serve.add_argument("--mapping-name", default="serve.same",
                       help="repository mapping name for persisted "
                            "correspondences (default: serve.same)")
    serve.add_argument("--shards", type=int, default=0,
                       help="partition the reference across N shard "
                            "worker processes behind a scatter-gather "
                            "router (default: 0 = single in-heap index)")
    serve.add_argument("--data-dir", default=None, metavar="PATH",
                       help="back shards with on-disk packed columns + "
                            "mutation WALs; restores warm from an "
                            "existing snapshot, enables POST "
                            "/v1/snapshot (implies at least 1 shard)")
    serve.add_argument("--compact-ratio", type=float, default=0.25,
                       help="index compaction triggers when dead rows "
                            "exceed this fraction of live rows "
                            "(default: 0.25)")
    serve.add_argument("--compact-min", type=int, default=64,
                       help="minimum dead rows before compaction is "
                            "considered (default: 64)")
    serve.add_argument("--pruning", default="auto",
                       choices=("auto", "always", "never"),
                       help="impact-ordered candidate pruning: engage "
                            "on posting skew (auto), force it, or keep "
                            "the exhaustive bincount path; results are "
                            "bit-identical either way (default: auto)")
    serve.add_argument("--metrics", action="store_true",
                       help="enable the observability subsystem: GET "
                            "/v1/metrics (Prometheus text format), "
                            "request tracing and structured JSON logs; "
                            "match results stay bit-identical")
    serve.add_argument("--trace-sample-rate", type=float, default=0.0,
                       help="with --metrics: fraction of requests to "
                            "trace, deterministic accumulator sampling "
                            "(default: 0.0 = no traces, 1.0 = all)")
    serve.add_argument("--slow-query-ms", type=float, default=0.0,
                       help="with --metrics: log a slow_query event for "
                            "scoring batches slower than this many "
                            "milliseconds (default: 0 = disabled)")

    lint = subparsers.add_parser(
        "lint", help="run the repo-specific static analysis checkers")
    lint.add_argument("lint_paths", nargs="*", metavar="PATH",
                      help="files or directories to check "
                           "(default: src/repro)")
    lint.add_argument("--root", dest="lint_root", default=None,
                      help="repo root (default: nearest pyproject.toml)")
    lint.add_argument("--baseline", dest="lint_baseline", default=None,
                      help="baseline file relative to the root "
                           "(default: lint-baseline.json)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore the baseline; report every finding")
    lint.add_argument("--write-baseline", action="store_true",
                      help="rewrite the baseline from current findings")
    lint.add_argument("--json", action="store_true", dest="lint_json",
                      help="emit a JSON report instead of text")
    lint.add_argument("--no-cache", action="store_true",
                      dest="lint_no_cache",
                      help="analyze every file from scratch and write "
                           "no cache")
    lint.add_argument("--cache", dest="lint_cache", default=None,
                      metavar="PATH",
                      help="per-file result cache location relative to "
                           "the root (default: .repro-lint-cache.json)")
    return parser


def _load_workbench(args):
    from repro.datagen import build_dataset
    from repro.eval.experiments import Workbench

    dataset = build_dataset(args.scale, seed=args.seed)
    return dataset, Workbench(dataset)


def _command_stats(args) -> int:
    from repro.eval.experiments import run_table1

    _, workbench = _load_workbench(args)
    print(run_table1(workbench).render())
    return 0


def _command_experiments(args) -> int:
    from repro.eval.experiments import (
        run_self_mapping_extension,
        run_table1,
        run_table10,
        run_table2,
        run_table3,
        run_table4,
        run_table5,
        run_table6,
        run_table7,
        run_table8,
        run_table9,
    )

    runners = {
        "table1": run_table1, "table2": run_table2, "table3": run_table3,
        "table4": run_table4, "table5": run_table5, "table6": run_table6,
        "table7": run_table7, "table8": run_table8, "table9": run_table9,
        "table10": run_table10,
        "self-mapping": run_self_mapping_extension,
    }
    wanted = args.names if args.names else list(runners)
    unknown = [name for name in wanted if name not in runners]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"known: {sorted(runners)}", file=sys.stderr)
        return 2

    _, workbench = _load_workbench(args)
    for name in wanted:
        start = time.perf_counter()
        result = runners[name](workbench)
        print(result.render())
        print(f"  [{name} in {time.perf_counter() - start:.1f}s]\n")
    return 0


def _command_figures(args) -> int:
    from repro.eval.experiments import (
        run_figure1,
        run_figure4,
        run_figure6,
        run_figure9,
    )

    all_match = True
    for runner in (run_figure1, run_figure4, run_figure6, run_figure9):
        result = runner()
        print(result.render())
        print()
        all_match = all_match and result.data["matches_paper"]
    print(f"all figures match the paper: {all_match}")
    return 0 if all_match else 1


def _command_export(args) -> int:
    from repro.model.io import write_mapping_csv

    dataset, _ = _load_workbench(args)
    target = Path(args.out)
    target.mkdir(parents=True, exist_ok=True)

    written = []
    for name in dataset.smm.mapping_names():
        mapping = dataset.smm.find_mapping(name)
        path = target / f"{name.replace('.', '_')}.csv"
        rows = write_mapping_csv(mapping, path)
        written.append((path.name, rows))
    for key in dataset.gold:
        category, domain, range_ = key
        mapping = dataset.gold.get(category, domain, range_)
        safe = f"gold_{category}_{domain}_{range_}".replace(".", "_")
        path = target / f"{safe}.csv"
        rows = write_mapping_csv(mapping, path)
        written.append((path.name, rows))

    for file_name, rows in written:
        print(f"  wrote {file_name} ({rows} rows)")
    print(f"{len(written)} mapping tables exported to {target}")
    return 0


def _command_serve(args) -> int:
    if not 0.0 <= args.threshold <= 1.0:
        print("--threshold must be in [0, 1]", file=sys.stderr)
        return 2
    if args.max_candidates < 0:
        print("--max-candidates must be >= 0 (0 = exhaustive)",
              file=sys.stderr)
        return 2
    if args.shards < 0:
        print("--shards must be >= 0 (0 = single index)", file=sys.stderr)
        return 2
    from repro.datagen import build_dataset
    from repro.model.repository import MappingRepository
    from repro.serve import MatchService, ServeConfig
    from repro.serve import partition as partition_layout
    from repro.serve.http import serve

    repository = (MappingRepository(args.repository)
                  if args.repository else None)
    config = ServeConfig(
        attribute=args.attribute, similarity=args.similarity,
        missing=args.missing, threshold=args.threshold,
        max_candidates=(None if args.max_candidates == 0
                        else args.max_candidates),
        cache_size=args.cache_size,
        # NB: an empty repository is falsy (len 0) — test identity
        mapping_name=args.mapping_name if repository is not None else None,
        compact_ratio=args.compact_ratio, compact_min=args.compact_min,
        shards=args.shards, data_dir=args.data_dir,
        pruning=args.pruning,
        host=args.host, port=args.port,
        metrics=args.metrics,
        trace_sample_rate=args.trace_sample_rate,
        slow_query_ms=args.slow_query_ms)

    restoring = (args.data_dir is not None and
                 partition_layout.read_manifest(args.data_dir) is not None)
    if restoring:
        # an existing snapshot wins over regenerating the reference:
        # shard workers restart warm from their packed bases + WALs
        reference = None
    else:
        dataset = build_dataset(args.scale, seed=args.seed)
        reference = getattr(dataset, args.reference).publications
    service = MatchService(reference, config=config,
                           repository=repository)

    def ready(server) -> None:
        host, port = server.server_address[:2]
        origin = ("restored from " + args.data_dir if restoring
                  else f"{reference.name}")
        topology = (f"{config.validate().shards} shard worker(s)"
                    if config.validate().clustered else "single index")
        print(f"serving {origin} ({len(service.index)} records, "
              f"{args.similarity} @ {args.threshold}, {topology}) "
              f"on http://{host}:{port}")
        print("endpoints: POST /v1/match /v1/ingest /v1/delete "
              "/v1/snapshot · GET /v1/stats /v1/healthz"
              + (" /v1/metrics" if config.metrics else "")
              + " · Ctrl-C to stop")

    try:
        serve(service, config.host, config.port, ready=ready)
    finally:
        service.close()
        if repository is not None:
            repository.close()
    return 0


def _command_lint(args) -> int:
    from repro.analysis.cli import main as lint_main

    forwarded: List[str] = list(args.lint_paths)
    if args.lint_root is not None:
        forwarded += ["--root", args.lint_root]
    if args.lint_baseline is not None:
        forwarded += ["--baseline", args.lint_baseline]
    if args.no_baseline:
        forwarded.append("--no-baseline")
    if args.write_baseline:
        forwarded.append("--write-baseline")
    if args.lint_json:
        forwarded.append("--json")
    if args.lint_no_cache:
        forwarded.append("--no-cache")
    if args.lint_cache is not None:
        forwarded += ["--cache", args.lint_cache]
    return lint_main(forwarded)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        return _command_lint(args)
    if args.workers is not None and args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.chunk_size < 1:
        print("--chunk-size must be >= 1", file=sys.stderr)
        return 2
    from repro.engine import configure_default_engine
    if args.n_shards is not None and args.n_shards < 1:
        print("--n-shards must be >= 1", file=sys.stderr)
        return 2
    configure_default_engine(workers=args.workers, chunk_size=args.chunk_size,
                             shard_blocking=args.shard_blocking,
                             n_shards=args.n_shards,
                             balance_shards=args.balance_shards,
                             auto=args.auto, profile=args.profile)
    if args.command == "stats":
        return _command_stats(args)
    if args.command == "experiments":
        return _command_experiments(args)
    if args.command == "figures":
        return _command_figures(args)
    if args.command == "export":
        return _command_export(args)
    if args.command == "serve":
        return _command_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
