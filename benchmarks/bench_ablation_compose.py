"""Ablation: compose path-aggregation function (DESIGN.md §6).

Runs the Table 4 venue-matching pipeline with every ``g`` alternative.
Paper's claim: the Relative family, by rewarding multi-path support,
is what makes neighborhood matching work; plain max/avg over path
similarities cannot separate venues that share a single matched paper
from venues that share most of their program.
"""

from repro.core.matchers.neighborhood import neighborhood_match
from repro.core.operators.selection import BestNSelection
from repro.eval.report import Table, format_percent

AGGREGATES = ("relative", "relative_left", "relative_right", "avg", "max",
              "min")


def run_compose_ablation(workbench):
    dblp = workbench.bundle("DBLP")
    acm = workbench.bundle("ACM")
    pub_same = workbench.pub_same("DBLP", "ACM")

    table = Table(
        "Ablation: compose aggregation g for venue neighborhood matching "
        "(Best-1 selection)",
        ["g", "precision", "recall", "f-measure"],
    )
    scores = {}
    for aggregate in AGGREGATES:
        raw = neighborhood_match(dblp.venue_pub, pub_same, acm.pub_venue,
                                 g2=aggregate)
        mapping = BestNSelection(1).apply(raw)
        quality = workbench.score(mapping, "venues", "DBLP", "ACM")
        scores[aggregate] = quality
        table.add_row(aggregate, format_percent(quality.precision),
                      format_percent(quality.recall),
                      format_percent(quality.f1))
    table.add_note("relative is the paper's nhMatch configuration")
    return table, scores


def test_compose_aggregation_ablation(benchmark, bench_workbench, report):
    table, scores = benchmark.pedantic(
        lambda: run_compose_ablation(bench_workbench), rounds=1, iterations=1)
    report("ablation-compose", table.render())
    # multi-path-aware aggregation must beat single-path max
    assert scores["relative"].f1 >= scores["max"].f1
    assert scores["relative"].f1 > 0.85
