"""Ablation: selection strategy sweep on the venue same-mapping.

Quantifies Table 4's selection sensitivity beyond the paper's three
points: a full threshold sweep plus Best-1, Best-2 and Best-1+Delta
variants.  The crossover (thresholds win precision early, Best-1 wins
F overall because ACM covers all journal issues) is the behaviour
DESIGN.md §6 calls out.
"""

from repro.core.matchers.neighborhood import neighborhood_match
from repro.core.operators.selection import (
    Best1DeltaSelection,
    BestNSelection,
    ThresholdSelection,
)
from repro.eval.report import Table, format_percent

THRESHOLDS = (0.2, 0.35, 0.5, 0.65, 0.8, 0.9)


def run_selection_ablation(workbench):
    dblp = workbench.bundle("DBLP")
    acm = workbench.bundle("ACM")
    raw = neighborhood_match(dblp.venue_pub,
                             workbench.pub_same("DBLP", "ACM"),
                             acm.pub_venue)

    strategies = []
    for threshold in THRESHOLDS:
        strategies.append((f"threshold {threshold:.2f}",
                           ThresholdSelection(threshold)))
    strategies.append(("best-1", BestNSelection(1)))
    strategies.append(("best-2", BestNSelection(2)))
    strategies.append(("best-1 both sides", BestNSelection(1, side="both")))
    strategies.append(("best-1 + 0.1 abs", Best1DeltaSelection(0.1)))
    strategies.append(("best-1 + 10% rel",
                       Best1DeltaSelection(0.1, relative=True)))

    table = Table(
        "Ablation: selection strategies on the venue same-mapping",
        ["selection", "precision", "recall", "f-measure"],
    )
    scores = {}
    for label, selection in strategies:
        quality = workbench.score(selection.apply(raw), "venues",
                                  "DBLP", "ACM")
        scores[label] = quality
        table.add_row(label, format_percent(quality.precision),
                      format_percent(quality.recall),
                      format_percent(quality.f1))
    return table, scores


def test_selection_ablation(benchmark, bench_workbench, report):
    table, scores = benchmark.pedantic(
        lambda: run_selection_ablation(bench_workbench),
        rounds=1, iterations=1)
    report("ablation-selection", table.render())
    # higher thresholds never lose precision
    assert scores["threshold 0.90"].precision >= \
        scores["threshold 0.20"].precision - 1e-9
    # ...but starve recall relative to best-1
    assert scores["best-1"].recall >= scores["threshold 0.90"].recall
