"""Table 6 benchmark: author matching via n:m neighborhood."""

from repro.eval.experiments import run_table6


def test_table6_author_neighborhood(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_table6(bench_workbench), rounds=1, iterations=1)
    report(result.experiment_id, result.render())
    # neighborhood alone is weak but recall-complete
    assert result.data["neighborhood"]["f1"] < result.data["attribute"]["f1"]
    assert result.data["neighborhood"]["recall"] > 0.9
    # merging lifts recall over the name matcher
    assert result.data["merge"]["recall"] > result.data["attribute"]["recall"]
    assert result.data["merge"]["f1"] >= result.data["attribute"]["f1"]
