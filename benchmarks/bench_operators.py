"""Micro-benchmarks: merge/compose throughput vs mapping size.

Scaling behaviour matters because MOMA leans on "the composition can
be computed very efficiently ... by joining the mapping tables" — the
operators must stay linear in the number of correspondences/paths.
"""

import random

import pytest

from repro.core.mapping import Mapping
from repro.core.operators.compose import compose
from repro.core.operators.merge import merge


def synthetic_mapping(size: int, seed: int, domain="A", range_="B",
                      fanout: int = 3) -> Mapping:
    rng = random.Random(seed)
    mapping = Mapping(domain, range_)
    for index in range(size):
        for _ in range(rng.randint(1, fanout)):
            mapping.add(f"d{index}", f"r{rng.randrange(size)}",
                        rng.uniform(0.1, 1.0))
    return mapping


@pytest.mark.parametrize("size", [1000, 5000])
def test_merge_throughput(benchmark, size):
    left = synthetic_mapping(size, 1)
    right = synthetic_mapping(size, 2)
    merged = benchmark(lambda: merge([left, right], "avg"))
    assert len(merged) >= max(len(left), len(right)) * 0.5


@pytest.mark.parametrize("size", [1000, 5000])
def test_compose_throughput(benchmark, size):
    left = synthetic_mapping(size, 3, "A", "C")
    right = synthetic_mapping(size, 4, "C", "B")
    composed = benchmark(lambda: compose(left, right, "min", "relative"))
    assert composed is not None


@pytest.mark.parametrize("function", ["avg", "min", "max", "min0", "avg0"])
def test_merge_function_overhead(benchmark, function):
    left = synthetic_mapping(2000, 5)
    right = synthetic_mapping(2000, 6)
    benchmark(lambda: merge([left, right], function))


def test_repository_round_trip_throughput(benchmark):
    from repro.model.repository import MappingRepository
    mapping = synthetic_mapping(5000, 9)

    def round_trip():
        with MappingRepository(":memory:") as repository:
            repository.save("bench", mapping)
            return repository.load("bench")

    loaded = benchmark(round_trip)
    assert len(loaded) == len(mapping)
