"""Engine benchmark: execution models, kernels and shard balancing.

Five scenarios, each with its own gate:

**trigram** — the original engine benchmark.  One workload (a datagen
world scaled ~10x beyond the default benchmark scale, blocked with
token blocking, scored with the trigram matcher), four execution
models:

* **serial baseline** — the pre-engine execution model: one
  ``similarity()`` call per candidate pair in a pure-Python loop
  (reimplemented here verbatim so the baseline survives refactors);
* **engine, workers=1** — chunked streaming through the vectorized
  ``score_batch`` kernels, no processes;
* **engine, workers=4** — the same chunks fanned out across a
  process pool, with the parent generating every candidate pair
  (the PR-1 parallel model);
* **engine, workers=4 sharded** — ``shard_blocking=True``: workers
  generate *and* score their own blocking shards.

All four must produce identical correspondences; the 4-worker engine
must beat the serial baseline and the sharded path must beat the
parent-streamed parallel path.

**tfidf** — kernel #2.  The same workload scored with TF/IDF cosine,
sharded at 4 workers, twice: once through the sparse CSR kernel
(:mod:`repro.engine.sparse`) and once with kernels disabled, which
forces the generic chunk scorer — the slowest worker-side mode, and
exactly what every TF/IDF request paid before the sparse kernel.
Identical correspondences required; the sparse kernel must win by
``TFIDF_SPEEDUP_FLOOR``.

**multiattr** — the composed multi-attribute kernel.  The same
publication workload scored over three attribute pairs (trigram
title, TF/IDF venue, year proximity, weighted combination): once
through the scalar per-pair ``_score_multi`` loop (composed kernel
disabled — exactly what every multi-attribute request paid before
this kernel existed) and once through the composed kernel at 4
sharded workers.  Byte-identical correspondences required; the
composed run must win by ``MULTIATTR_SPEEDUP_FLOOR``.

**skewed blocks** — shard rebalancing.  A synthetic workload whose
first-token key distribution is dominated by one hot key, so key
blocking yields one block holding most of the pairs and the naive
shard list has a long tail.  Measured two ways: wall-clock of naive
vs ``balance_shards=True`` sharded runs, and a *makespan model* —
each naive/balanced shard is timed inline and the per-worker critical
path is computed by list scheduling, which is what bounds wall-clock
on real multi-core hardware (single-core CI timeslices the tail away,
so the gate runs on the makespan, with wall-clock reported).

**autotune** — the self-tuning mode on the same skewed workload.
``EngineConfig(auto=True)`` with *no* hand-set flags must reproduce
the hand-tuned ``balance_shards=True`` plan from its cost model: the
auto shard makespan must come within ``AUTO_MAKESPAN_TOLERANCE`` of
the hand-tuned makespan, and results must stay identical.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_engine.py``
or via pytest.  Set ``REPRO_ENGINE_BENCH=small`` for a quick smoke run
at reduced scale (smoke runs report every ratio but only gate on
correctness — sub-second workloads are noise-bound).  Set
``REPRO_BENCH_JSON=/path/to/BENCH_engine.json`` to also write the
measurements as JSON (what the CI bench-smoke step archives so the
perf trajectory is visible across PRs); see ``docs/benchmarks.md``
for the field reference.
"""

from __future__ import annotations

import heapq
import json
import os
import time

from repro.blocking import KeyBlocking, TokenBlocking
from repro.core.mapping import Mapping, MappingKind
from repro.core.matchers.attribute import AttributeMatcher
from repro.core.matchers.multi_attribute import (
    AttributePair,
    MultiAttributeMatcher,
)
from repro.datagen import build_dataset
from repro.datagen.world import WorldConfig
from repro.engine import BatchMatchEngine, EngineConfig, vectorized
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.sim.ngram import TrigramSimilarity
from repro.sim.tfidf import TfIdfCosineSimilarity

THRESHOLD = 0.7
TFIDF_THRESHOLD = 0.5
CHUNK_SIZE = 16384
WORKERS = 4
#: the sharded path must beat the parent-streamed parallel path by at
#: least this factor on the full-scale blocked workload
SHARDED_SPEEDUP_FLOOR = 1.3
#: the sparse TF/IDF kernel must beat the generic chunk scorer by at
#: least this factor at 4 workers on the full-scale workload
TFIDF_SPEEDUP_FLOOR = 3.0
#: balanced shards must cut the naive makespan (per-worker critical
#: path) by at least this factor on the full-scale skewed workload
SKEW_MAKESPAN_FLOOR = 1.5
#: the composed multi-attribute kernel at 4 sharded workers must beat
#: the scalar per-pair multi loop by at least this factor
MULTIATTR_SPEEDUP_FLOOR = 2.5
#: auto=True must come within this factor of the hand-tuned
#: balance_shards=True makespan on the skewed workload, flags unset
AUTO_MAKESPAN_TOLERANCE = 1.2
MULTIATTR_THRESHOLD = 0.5

SERIAL_LABEL = "serial (per-pair loop)"
PARALLEL_LABEL = f"engine workers={WORKERS}"
SHARDED_LABEL = f"engine workers={WORKERS} sharded"
TFIDF_GENERIC_LABEL = f"tfidf generic workers={WORKERS} sharded"
TFIDF_SPARSE_LABEL = f"tfidf sparse workers={WORKERS} sharded"
SKEW_NAIVE_LABEL = f"skewed workers={WORKERS} sharded"
SKEW_BALANCED_LABEL = f"skewed workers={WORKERS} sharded balanced"
SKEW_AUTO_LABEL = f"skewed workers={WORKERS} auto"
MULTIATTR_SCALAR_LABEL = "multiattr scalar serial"
MULTIATTR_COMPOSED_SERIAL_LABEL = "multiattr composed workers=1"
MULTIATTR_COMPOSED_LABEL = f"multiattr composed workers={WORKERS} sharded"


def _small_mode() -> bool:
    return os.environ.get("REPRO_ENGINE_BENCH") == "small"


def _build_workload():
    """DBLP x ACM publications at ~10x the default benchmark scale."""
    if _small_mode():
        dataset = build_dataset("small", seed=7)
    else:
        # the "small" preset is scale=0.35 / clusters=30; this is 10x that
        dataset = build_dataset(
            world_config=WorldConfig(seed=7, scale=3.5, clusters=300))
    return dataset.dblp.publications, dataset.acm.publications


# ----------------------------------------------------------------------
# scenario 1: trigram execution models
# ----------------------------------------------------------------------

def _serial_baseline(domain, range_, blocking) -> Mapping:
    """The pre-engine model: score candidate pairs one at a time."""
    sim = TrigramSimilarity()
    corpus = (domain.attribute_values("title")
              + range_.attribute_values("title"))
    sim.prepare(corpus)
    result = Mapping(domain.name, range_.name, kind=MappingKind.SAME)
    for id_a, id_b in blocking.candidates(domain, range_,
                                          domain_attribute="title",
                                          range_attribute="title"):
        value_a = domain.get(id_a).get("title")
        value_b = range_.get(id_b).get("title")
        if value_a is None or value_b is None:
            continue
        score = sim.similarity(value_a, value_b)
        if score >= THRESHOLD and score > 0.0:
            result.add(id_a, id_b, score)
    return result


def _engine_run(domain, range_, blocking, workers: int,
                shard_blocking: bool = False, similarity=None,
                threshold: float = THRESHOLD,
                balance_shards: bool = False) -> Mapping:
    engine = BatchMatchEngine(
        EngineConfig(workers=workers, chunk_size=CHUNK_SIZE,
                     shard_blocking=shard_blocking,
                     balance_shards=balance_shards))
    if similarity is None:
        similarity = TrigramSimilarity()
    matcher = AttributeMatcher("title", similarity=similarity,
                               threshold=threshold, blocking=blocking,
                               engine=engine)
    return matcher.match(domain, range_)


def run_engine_benchmark():
    """Time the four trigram execution models; return (render, ...)."""
    domain, range_ = _build_workload()
    blocking = TokenBlocking()

    timings = {}

    start = time.perf_counter()
    baseline = _serial_baseline(domain, range_, blocking)
    timings[SERIAL_LABEL] = time.perf_counter() - start

    start = time.perf_counter()
    engine_serial = _engine_run(domain, range_, blocking, workers=1)
    timings["engine workers=1"] = time.perf_counter() - start

    start = time.perf_counter()
    engine_parallel = _engine_run(domain, range_, blocking, workers=WORKERS)
    timings[PARALLEL_LABEL] = time.perf_counter() - start

    start = time.perf_counter()
    engine_sharded = _engine_run(domain, range_, blocking, workers=WORKERS,
                                 shard_blocking=True)
    timings[SHARDED_LABEL] = time.perf_counter() - start

    rows = baseline.to_rows()
    identical = (rows == engine_serial.to_rows()
                 and rows == engine_parallel.to_rows()
                 and rows == engine_sharded.to_rows())

    serial_time = timings[SERIAL_LABEL]
    lines = [
        "engine benchmark: "
        f"{len(domain)} x {len(range_)} publications, "
        f"{len(baseline)} correspondences @ threshold {THRESHOLD}",
    ]
    for label, seconds in timings.items():
        lines.append(f"  {label:<36} {seconds:8.2f}s "
                     f"({serial_time / seconds:5.2f}x vs serial)")
    lines.append(f"  sharded vs parent-streamed parallel: "
                 f"{timings[PARALLEL_LABEL] / timings[SHARDED_LABEL]:.2f}x")
    lines.append(f"  identical correspondences: {identical}")
    return "\n".join(lines), timings, identical, (domain, range_)


# ----------------------------------------------------------------------
# scenario 2: sparse TF/IDF kernel vs generic chunk scorer
# ----------------------------------------------------------------------

def run_tfidf_benchmark(workload=None):
    """Sparse kernel vs generic scorer on the TF/IDF workload."""
    domain, range_ = workload if workload is not None else _build_workload()
    blocking = TokenBlocking()

    timings = {}

    original_build_kernel = vectorized.build_kernel
    vectorized.build_kernel = lambda *args, **kwargs: None
    try:
        start = time.perf_counter()
        generic = _engine_run(domain, range_, blocking, workers=WORKERS,
                              shard_blocking=True,
                              similarity=TfIdfCosineSimilarity(),
                              threshold=TFIDF_THRESHOLD)
        timings[TFIDF_GENERIC_LABEL] = time.perf_counter() - start
    finally:
        vectorized.build_kernel = original_build_kernel

    start = time.perf_counter()
    sparse = _engine_run(domain, range_, blocking, workers=WORKERS,
                         shard_blocking=True,
                         similarity=TfIdfCosineSimilarity(),
                         threshold=TFIDF_THRESHOLD)
    timings[TFIDF_SPARSE_LABEL] = time.perf_counter() - start

    identical = generic.to_rows() == sparse.to_rows()
    speedup = timings[TFIDF_GENERIC_LABEL] / timings[TFIDF_SPARSE_LABEL]
    lines = [
        "tfidf kernel benchmark: "
        f"{len(domain)} x {len(range_)} publications, "
        f"{len(sparse)} correspondences @ threshold {TFIDF_THRESHOLD}",
        f"  {TFIDF_GENERIC_LABEL:<36} "
        f"{timings[TFIDF_GENERIC_LABEL]:8.2f}s",
        f"  {TFIDF_SPARSE_LABEL:<36} "
        f"{timings[TFIDF_SPARSE_LABEL]:8.2f}s",
        f"  sparse kernel vs generic scorer: {speedup:.2f}x",
        f"  identical correspondences: {identical}",
    ]
    return "\n".join(lines), timings, identical, speedup


# ----------------------------------------------------------------------
# scenario 3: multi-attribute scalar loop vs composed kernel
# ----------------------------------------------------------------------

def _multiattr_pairs():
    return [AttributePair("title", similarity=TrigramSimilarity()),
            AttributePair("venue", similarity=TfIdfCosineSimilarity(),
                          weight=2.0),
            AttributePair("year", similarity="year", weight=0.5)]


def _multiattr_run(domain, range_, blocking, workers: int,
                   shard_blocking: bool = False) -> Mapping:
    engine = BatchMatchEngine(
        EngineConfig(workers=workers, chunk_size=CHUNK_SIZE,
                     shard_blocking=shard_blocking))
    matcher = MultiAttributeMatcher(_multiattr_pairs(), combine="weighted",
                                    threshold=MULTIATTR_THRESHOLD,
                                    blocking=blocking, engine=engine)
    return matcher.match(domain, range_)


def run_multiattr_benchmark(workload=None):
    """Scalar multi-attribute loop vs the composed kernel."""
    domain, range_ = workload if workload is not None else _build_workload()
    blocking = TokenBlocking()

    timings = {}

    original_build_multi = vectorized.build_multi_kernel
    vectorized.build_multi_kernel = lambda request: None
    try:
        start = time.perf_counter()
        scalar = _multiattr_run(domain, range_, blocking, workers=1)
        timings[MULTIATTR_SCALAR_LABEL] = time.perf_counter() - start
    finally:
        vectorized.build_multi_kernel = original_build_multi

    start = time.perf_counter()
    composed_serial = _multiattr_run(domain, range_, blocking, workers=1)
    timings[MULTIATTR_COMPOSED_SERIAL_LABEL] = time.perf_counter() - start

    start = time.perf_counter()
    composed = _multiattr_run(domain, range_, blocking, workers=WORKERS,
                              shard_blocking=True)
    timings[MULTIATTR_COMPOSED_LABEL] = time.perf_counter() - start

    rows = scalar.to_rows()
    identical = (rows == composed_serial.to_rows()
                 and rows == composed.to_rows())
    speedup = (timings[MULTIATTR_SCALAR_LABEL]
               / timings[MULTIATTR_COMPOSED_LABEL])
    lines = [
        "multiattr kernel benchmark: "
        f"{len(domain)} x {len(range_)} publications, 3 attribute "
        f"pairs (trigram title + tfidf venue + year), "
        f"{len(scalar)} correspondences @ threshold "
        f"{MULTIATTR_THRESHOLD}",
        f"  {MULTIATTR_SCALAR_LABEL:<36} "
        f"{timings[MULTIATTR_SCALAR_LABEL]:8.2f}s",
        f"  {MULTIATTR_COMPOSED_SERIAL_LABEL:<36} "
        f"{timings[MULTIATTR_COMPOSED_SERIAL_LABEL]:8.2f}s",
        f"  {MULTIATTR_COMPOSED_LABEL:<36} "
        f"{timings[MULTIATTR_COMPOSED_LABEL]:8.2f}s",
        f"  composed kernel vs scalar loop: {speedup:.2f}x",
        f"  identical correspondences: {identical}",
    ]
    return "\n".join(lines), timings, identical, speedup


# ----------------------------------------------------------------------
# scenario 4: skewed block distribution, naive vs balanced shards
# (scenario 5, autotune, rides the same workload below)
# ----------------------------------------------------------------------

def _skewed_source(name: str, count: int, hot_share: float = 0.4):
    """A source whose first-token key is dominated by one hot key."""
    words = ["adaptive", "stream", "schema", "query", "index", "cache",
             "graph", "join", "view", "cube"]
    source = LogicalSource(PhysicalSource(name), ObjectType("Publication"))
    hot_every = max(2, int(round(1.0 / hot_share)))
    for i in range(count):
        first = ("popular" if i % hot_every == 0
                 else words[i % len(words)])
        tail = " ".join(words[(i * 7 + j) % len(words)]
                        for j in range(1, 5))
        source.add_record(f"{name.lower()}{i}",
                          title=f"{first} {tail} {i % 97}q")
    return source


def _skew_workload():
    scale = 900 if _small_mode() else 7000
    return (_skewed_source("SKL", scale),
            _skewed_source("SKR", scale - scale // 20))


def _shard_makespan(durations, workers: int) -> float:
    """List-schedule shard durations onto ``workers``; the critical path.

    Mirrors the pool's dynamic scheduling: each free worker takes the
    next shard in submission order.  This is the wall-clock lower
    bound on genuinely parallel hardware, independent of how many
    cores the benchmark host happens to have.
    """
    free = [0.0] * workers
    for duration in durations:
        heapq.heappush(free, heapq.heappop(free) + duration)
    return max(free)


def _time_shards(request, engine):
    """Per-shard inline wall times of exactly the plan ``engine`` runs.

    ``build_shard_runner`` is the engine's own shard-plan resolver
    (shard-count default, rebalancing, kernel choice), so the makespan
    model always times the same shard list production executes.
    """
    from repro.engine.shards import build_shard_runner

    shards, runner = build_shard_runner(engine, request)
    durations = []
    for index in range(len(shards)):
        start = time.perf_counter()
        runner.run(index)
        durations.append(time.perf_counter() - start)
    return durations


def run_skew_benchmark():
    """Naive vs balanced sharding on the skewed key-blocked workload."""
    from repro.engine.request import AttributeSpec, MatchRequest

    domain, range_ = _skew_workload()
    blocking = KeyBlocking()

    timings = {}

    serial = _engine_run(domain, range_, blocking, workers=1,
                         threshold=THRESHOLD)

    start = time.perf_counter()
    naive = _engine_run(domain, range_, blocking, workers=WORKERS,
                        shard_blocking=True, threshold=THRESHOLD)
    timings[SKEW_NAIVE_LABEL] = time.perf_counter() - start

    start = time.perf_counter()
    balanced = _engine_run(domain, range_, blocking, workers=WORKERS,
                           shard_blocking=True, balance_shards=True,
                           threshold=THRESHOLD)
    timings[SKEW_BALANCED_LABEL] = time.perf_counter() - start

    # autotune: no flags at all beyond auto=True — the cost model must
    # discover the skew and rebalance on its own
    auto_engine_run = BatchMatchEngine(EngineConfig(workers=WORKERS,
                                                    auto=True))
    auto_matcher = AttributeMatcher("title",
                                    similarity=TrigramSimilarity(),
                                    threshold=THRESHOLD,
                                    blocking=blocking,
                                    engine=auto_engine_run)
    start = time.perf_counter()
    auto = auto_matcher.match(domain, range_)
    timings[SKEW_AUTO_LABEL] = time.perf_counter() - start

    identical = (serial.to_rows() == naive.to_rows()
                 and serial.to_rows() == balanced.to_rows()
                 and serial.to_rows() == auto.to_rows())

    # makespan model from inline per-shard timings (hardware-neutral)
    naive_engine = BatchMatchEngine(EngineConfig(workers=WORKERS,
                                                 chunk_size=CHUNK_SIZE,
                                                 shard_blocking=True))
    balanced_engine = BatchMatchEngine(EngineConfig(workers=WORKERS,
                                                    chunk_size=CHUNK_SIZE,
                                                    shard_blocking=True,
                                                    balance_shards=True))
    auto_engine = BatchMatchEngine(EngineConfig(workers=WORKERS,
                                                auto=True))
    sim = TrigramSimilarity()
    request = MatchRequest(domain=domain, range=range_,
                           specs=[AttributeSpec("title", "title", sim)],
                           threshold=THRESHOLD, blocking=blocking)
    naive_engine._prepare(request)
    naive_durations = _time_shards(request, naive_engine)
    balanced_durations = _time_shards(request, balanced_engine)
    auto_durations = _time_shards(request, auto_engine)
    naive_makespan = _shard_makespan(naive_durations, WORKERS)
    balanced_makespan = _shard_makespan(balanced_durations, WORKERS)
    auto_makespan = _shard_makespan(auto_durations, WORKERS)
    makespan_gain = naive_makespan / max(balanced_makespan, 1e-9)
    auto_ratio = auto_makespan / max(balanced_makespan, 1e-9)

    lines = [
        "skewed-blocks benchmark: "
        f"{len(domain)} x {len(range_)} records, key blocking with one "
        f"dominant key, {len(serial)} correspondences",
        f"  {SKEW_NAIVE_LABEL:<36} "
        f"{timings[SKEW_NAIVE_LABEL]:8.2f}s wall",
        f"  {SKEW_BALANCED_LABEL:<36} "
        f"{timings[SKEW_BALANCED_LABEL]:8.2f}s wall",
        f"  {SKEW_AUTO_LABEL:<36} "
        f"{timings[SKEW_AUTO_LABEL]:8.2f}s wall",
        f"  naive shard makespan @ {WORKERS} workers:    "
        f"{naive_makespan:8.2f}s "
        f"(longest shard {max(naive_durations):.2f}s "
        f"of {len(naive_durations)})",
        f"  balanced shard makespan @ {WORKERS} workers: "
        f"{balanced_makespan:8.2f}s "
        f"(longest shard {max(balanced_durations):.2f}s "
        f"of {len(balanced_durations)})",
        f"  auto shard makespan @ {WORKERS} workers:     "
        f"{auto_makespan:8.2f}s "
        f"(longest shard {max(auto_durations):.2f}s "
        f"of {len(auto_durations)})",
        f"  balanced vs naive makespan: {makespan_gain:.2f}x",
        f"  auto vs hand-tuned balanced makespan: {auto_ratio:.2f}x "
        f"(tolerance {AUTO_MAKESPAN_TOLERANCE}x)",
        f"  identical correspondences: {identical}",
    ]
    measurements = {
        "timings_seconds": timings,
        "naive_makespan_seconds": naive_makespan,
        "balanced_makespan_seconds": balanced_makespan,
        "auto_makespan_seconds": auto_makespan,
        "makespan_gain": makespan_gain,
        "auto_vs_balanced_makespan": auto_ratio,
        "n_naive_shards": len(naive_durations),
        "n_balanced_shards": len(balanced_durations),
        "n_auto_shards": len(auto_durations),
    }
    return "\n".join(lines), measurements, identical, makespan_gain, \
        auto_ratio


# ----------------------------------------------------------------------
# JSON output
# ----------------------------------------------------------------------

def _write_json(path: str, domain, range_, timings, identical,
                tfidf_results, multiattr_results, skew_results) -> None:
    serial = timings[SERIAL_LABEL]
    tfidf_timings, tfidf_identical, tfidf_speedup = tfidf_results
    multiattr_timings, multiattr_identical, multiattr_speedup = \
        multiattr_results
    skew_measurements, skew_identical, skew_gain, auto_ratio = skew_results
    payload = {
        "benchmark": "engine",
        "mode": "small" if _small_mode() else "full",
        "workload": {
            "domain_size": len(domain),
            "range_size": len(range_),
            "blocking": "TokenBlocking",
            "threshold": THRESHOLD,
        },
        "timings_seconds": timings,
        "speedups_vs_serial": {
            label: serial / seconds for label, seconds in timings.items()
        },
        "sharded_vs_parallel": timings[PARALLEL_LABEL] / timings[SHARDED_LABEL],
        "identical_correspondences": identical,
        "scenarios": {
            "tfidf": {
                "threshold": TFIDF_THRESHOLD,
                "timings_seconds": tfidf_timings,
                "sparse_vs_generic": tfidf_speedup,
                "identical_correspondences": tfidf_identical,
            },
            "multiattr": {
                "threshold": MULTIATTR_THRESHOLD,
                "timings_seconds": multiattr_timings,
                "composed_vs_scalar": multiattr_speedup,
                "identical_correspondences": multiattr_identical,
            },
            "skewed_blocks": {
                **skew_measurements,
                "identical_correspondences": skew_identical,
            },
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def run_all():
    """Run the five scenarios; return renders, gates and measurements."""
    rendered, timings, identical, workload = run_engine_benchmark()
    tfidf_rendered, tfidf_timings, tfidf_identical, tfidf_speedup = \
        run_tfidf_benchmark(workload)
    multiattr_rendered, multiattr_timings, multiattr_identical, \
        multiattr_speedup = run_multiattr_benchmark(workload)
    skew_rendered, skew_measurements, skew_identical, skew_gain, \
        auto_ratio = run_skew_benchmark()
    render = "\n".join([rendered, tfidf_rendered, multiattr_rendered,
                        skew_rendered])

    json_path = os.environ.get("REPRO_BENCH_JSON")
    if json_path:
        _write_json(json_path, workload[0], workload[1], timings, identical,
                    (tfidf_timings, tfidf_identical, tfidf_speedup),
                    (multiattr_timings, multiattr_identical,
                     multiattr_speedup),
                    (skew_measurements, skew_identical, skew_gain,
                     auto_ratio))
        render += f"\n  measurements written to {json_path}"
    return render, {
        "timings": timings,
        "identical": identical,
        "tfidf_identical": tfidf_identical,
        "tfidf_speedup": tfidf_speedup,
        "multiattr_identical": multiattr_identical,
        "multiattr_speedup": multiattr_speedup,
        "skew_identical": skew_identical,
        "skew_gain": skew_gain,
        "auto_ratio": auto_ratio,
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

def test_engine_beats_serial_baseline(report):
    rendered, results = run_all()
    report("engine", rendered)
    print(rendered)
    timings = results["timings"]
    assert results["identical"], \
        "execution models disagree on the result mapping"
    assert results["tfidf_identical"], \
        "sparse TF/IDF kernel disagrees with the generic chunk scorer"
    assert results["multiattr_identical"], \
        "composed multi-attribute kernel disagrees with the scalar loop"
    assert results["skew_identical"], \
        "balanced/auto sharding disagrees with serial execution"
    parallel = timings[PARALLEL_LABEL]
    serial = timings[SERIAL_LABEL]
    if not _small_mode():
        # perf gates only at full scale: sub-second smoke runs on a
        # shared CI runner are noise-bound
        assert parallel < serial, (
            f"parallel engine ({parallel:.2f}s) did not beat the serial "
            f"per-pair baseline ({serial:.2f}s)")
        ratio = parallel / timings[SHARDED_LABEL]
        assert ratio >= SHARDED_SPEEDUP_FLOOR, (
            f"sharded blocking ({timings[SHARDED_LABEL]:.2f}s) only "
            f"{ratio:.2f}x faster than the parent-streamed parallel path "
            f"({parallel:.2f}s); expected >= {SHARDED_SPEEDUP_FLOOR}x")
        assert results["tfidf_speedup"] >= TFIDF_SPEEDUP_FLOOR, (
            f"sparse TF/IDF kernel only {results['tfidf_speedup']:.2f}x "
            f"faster than the generic chunk scorer; expected >= "
            f"{TFIDF_SPEEDUP_FLOOR}x")
        assert results["multiattr_speedup"] >= MULTIATTR_SPEEDUP_FLOOR, (
            f"composed multi-attribute kernel only "
            f"{results['multiattr_speedup']:.2f}x faster than the scalar "
            f"loop; expected >= {MULTIATTR_SPEEDUP_FLOOR}x")
        assert results["skew_gain"] >= SKEW_MAKESPAN_FLOOR, (
            f"balanced shards only cut the skewed makespan "
            f"{results['skew_gain']:.2f}x; expected >= "
            f"{SKEW_MAKESPAN_FLOOR}x")
        assert results["auto_ratio"] <= AUTO_MAKESPAN_TOLERANCE, (
            f"auto=True makespan {results['auto_ratio']:.2f}x the "
            f"hand-tuned balanced makespan; expected <= "
            f"{AUTO_MAKESPAN_TOLERANCE}x")


if __name__ == "__main__":
    rendered, results = run_all()
    print(rendered)
    if not (results["identical"] and results["tfidf_identical"]
            and results["multiattr_identical"]
            and results["skew_identical"]):
        raise SystemExit("FAIL: execution models disagree")
    timings = results["timings"]
    ratio = timings[PARALLEL_LABEL] / timings[SHARDED_LABEL]
    if not _small_mode():
        if timings[PARALLEL_LABEL] >= timings[SERIAL_LABEL]:
            raise SystemExit(
                "FAIL: parallel engine slower than serial baseline")
        if ratio < SHARDED_SPEEDUP_FLOOR:
            raise SystemExit(
                f"FAIL: sharded blocking only {ratio:.2f}x faster than the "
                f"parent-streamed parallel path")
        if results["tfidf_speedup"] < TFIDF_SPEEDUP_FLOOR:
            raise SystemExit(
                f"FAIL: sparse TF/IDF kernel only "
                f"{results['tfidf_speedup']:.2f}x faster than the generic "
                f"chunk scorer")
        if results["multiattr_speedup"] < MULTIATTR_SPEEDUP_FLOOR:
            raise SystemExit(
                f"FAIL: composed multi-attribute kernel only "
                f"{results['multiattr_speedup']:.2f}x faster than the "
                f"scalar loop")
        if results["skew_gain"] < SKEW_MAKESPAN_FLOOR:
            raise SystemExit(
                f"FAIL: balanced shards only cut the skewed makespan "
                f"{results['skew_gain']:.2f}x")
        if results["auto_ratio"] > AUTO_MAKESPAN_TOLERANCE:
            raise SystemExit(
                f"FAIL: auto=True makespan {results['auto_ratio']:.2f}x "
                f"the hand-tuned balanced makespan")
    print("OK: engine (4 workers) beats the serial per-pair baseline "
          f"({timings[SERIAL_LABEL] / timings[PARALLEL_LABEL]:.2f}x), "
          f"sharded blocking beats parent streaming {ratio:.2f}x, "
          f"sparse TF/IDF beats the generic scorer "
          f"{results['tfidf_speedup']:.2f}x, the composed multi-attribute "
          f"kernel beats the scalar loop "
          f"{results['multiattr_speedup']:.2f}x, balanced shards cut the "
          f"skewed makespan {results['skew_gain']:.2f}x, auto=True lands "
          f"within {results['auto_ratio']:.2f}x of the hand-tuned "
          "balanced makespan, identical correspondences everywhere")
