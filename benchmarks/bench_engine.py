"""Engine benchmark: serial per-pair matching vs the batch engine.

Compares four execution models on one workload — a datagen world
scaled ~10x beyond the default (``small``) benchmark scale, blocked
with token blocking and scored with the trigram matcher:

* **serial baseline** — the pre-engine execution model: one
  ``similarity()`` call per candidate pair in a pure-Python loop
  (reimplemented here verbatim so the baseline survives refactors);
* **engine, workers=1** — chunked streaming through the vectorized
  ``score_batch`` kernels, no processes;
* **engine, workers=4** — the same chunks fanned out across a
  process pool, with the parent generating every candidate pair
  (the PR-1 parallel model);
* **engine, workers=4 sharded** — ``shard_blocking=True``: workers
  generate *and* score their own blocking shards; the parent ships
  shard indices and merges survivors.

All four must produce identical correspondences.  The 4-worker engine
must beat the serial baseline, and the sharded path must beat the
parent-streamed parallel path — parent-side candidate generation is
the Amdahl bottleneck the sharded path exists to remove, so the gap
shows up even on single-core containers (where the parent-streamed
pool only adds IPC on top of the serial generation cost).

Run standalone with ``PYTHONPATH=src python benchmarks/bench_engine.py``
or via pytest.  Set ``REPRO_ENGINE_BENCH=small`` for a quick smoke run
at the ordinary benchmark scale (smoke runs report the sharded ratio
but don't gate on it — sub-second workloads are noise-bound).  Set
``REPRO_BENCH_JSON=/path/to/BENCH_engine.json`` to also write the
measurements as JSON (what the CI bench-smoke step archives so the
perf trajectory is visible across PRs).
"""

from __future__ import annotations

import json
import os
import time

from repro.blocking import TokenBlocking
from repro.core.mapping import Mapping, MappingKind
from repro.core.matchers.attribute import AttributeMatcher
from repro.datagen import build_dataset
from repro.datagen.world import WorldConfig
from repro.engine import BatchMatchEngine, EngineConfig
from repro.sim.ngram import TrigramSimilarity

THRESHOLD = 0.7
CHUNK_SIZE = 16384
WORKERS = 4
#: the sharded path must beat the parent-streamed parallel path by at
#: least this factor on the full-scale blocked workload
SHARDED_SPEEDUP_FLOOR = 1.3

SERIAL_LABEL = "serial (per-pair loop)"
PARALLEL_LABEL = f"engine workers={WORKERS}"
SHARDED_LABEL = f"engine workers={WORKERS} sharded"


def _small_mode() -> bool:
    return os.environ.get("REPRO_ENGINE_BENCH") == "small"


def _build_workload():
    """DBLP x ACM publications at ~10x the default benchmark scale."""
    if _small_mode():
        dataset = build_dataset("small", seed=7)
    else:
        # the "small" preset is scale=0.35 / clusters=30; this is 10x that
        dataset = build_dataset(
            world_config=WorldConfig(seed=7, scale=3.5, clusters=300))
    return dataset.dblp.publications, dataset.acm.publications


def _serial_baseline(domain, range_, blocking) -> Mapping:
    """The pre-engine model: score candidate pairs one at a time."""
    sim = TrigramSimilarity()
    corpus = (domain.attribute_values("title")
              + range_.attribute_values("title"))
    sim.prepare(corpus)
    result = Mapping(domain.name, range_.name, kind=MappingKind.SAME)
    for id_a, id_b in blocking.candidates(domain, range_,
                                          domain_attribute="title",
                                          range_attribute="title"):
        value_a = domain.get(id_a).get("title")
        value_b = range_.get(id_b).get("title")
        if value_a is None or value_b is None:
            continue
        score = sim.similarity(value_a, value_b)
        if score >= THRESHOLD and score > 0.0:
            result.add(id_a, id_b, score)
    return result


def _engine_run(domain, range_, blocking, workers: int,
                shard_blocking: bool = False) -> Mapping:
    engine = BatchMatchEngine(
        EngineConfig(workers=workers, chunk_size=CHUNK_SIZE,
                     shard_blocking=shard_blocking))
    matcher = AttributeMatcher("title", similarity=TrigramSimilarity(),
                               threshold=THRESHOLD, blocking=blocking,
                               engine=engine)
    return matcher.match(domain, range_)


def _write_json(path: str, domain, range_, timings, identical) -> None:
    serial = timings[SERIAL_LABEL]
    payload = {
        "benchmark": "engine",
        "mode": "small" if _small_mode() else "full",
        "workload": {
            "domain_size": len(domain),
            "range_size": len(range_),
            "blocking": "TokenBlocking",
            "threshold": THRESHOLD,
        },
        "timings_seconds": timings,
        "speedups_vs_serial": {
            label: serial / seconds for label, seconds in timings.items()
        },
        "sharded_vs_parallel": timings[PARALLEL_LABEL] / timings[SHARDED_LABEL],
        "identical_correspondences": identical,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def run_engine_benchmark():
    """Time the four execution models; return (render, measurements)."""
    domain, range_ = _build_workload()
    blocking = TokenBlocking()

    timings = {}

    start = time.perf_counter()
    baseline = _serial_baseline(domain, range_, blocking)
    timings[SERIAL_LABEL] = time.perf_counter() - start

    start = time.perf_counter()
    engine_serial = _engine_run(domain, range_, blocking, workers=1)
    timings["engine workers=1"] = time.perf_counter() - start

    start = time.perf_counter()
    engine_parallel = _engine_run(domain, range_, blocking, workers=WORKERS)
    timings[PARALLEL_LABEL] = time.perf_counter() - start

    start = time.perf_counter()
    engine_sharded = _engine_run(domain, range_, blocking, workers=WORKERS,
                                 shard_blocking=True)
    timings[SHARDED_LABEL] = time.perf_counter() - start

    rows = baseline.to_rows()
    identical = (rows == engine_serial.to_rows()
                 and rows == engine_parallel.to_rows()
                 and rows == engine_sharded.to_rows())

    serial_time = timings[SERIAL_LABEL]
    lines = [
        "engine benchmark: "
        f"{len(domain)} x {len(range_)} publications, "
        f"{len(baseline)} correspondences @ threshold {THRESHOLD}",
    ]
    for label, seconds in timings.items():
        lines.append(f"  {label:<32} {seconds:8.2f}s "
                     f"({serial_time / seconds:5.2f}x vs serial)")
    lines.append(f"  sharded vs parent-streamed parallel: "
                 f"{timings[PARALLEL_LABEL] / timings[SHARDED_LABEL]:.2f}x")
    lines.append(f"  identical correspondences: {identical}")

    json_path = os.environ.get("REPRO_BENCH_JSON")
    if json_path:
        _write_json(json_path, domain, range_, timings, identical)
        lines.append(f"  measurements written to {json_path}")
    return "\n".join(lines), timings, identical


def test_engine_beats_serial_baseline(report):
    rendered, timings, identical = run_engine_benchmark()
    report("engine", rendered)
    print(rendered)
    assert identical, "execution models disagree on the result mapping"
    parallel = timings[PARALLEL_LABEL]
    serial = timings[SERIAL_LABEL]
    assert parallel < serial, (
        f"parallel engine ({parallel:.2f}s) did not beat the serial "
        f"per-pair baseline ({serial:.2f}s)")
    if not _small_mode():
        ratio = parallel / timings[SHARDED_LABEL]
        assert ratio >= SHARDED_SPEEDUP_FLOOR, (
            f"sharded blocking ({timings[SHARDED_LABEL]:.2f}s) only "
            f"{ratio:.2f}x faster than the parent-streamed parallel path "
            f"({parallel:.2f}s); expected >= {SHARDED_SPEEDUP_FLOOR}x")


if __name__ == "__main__":
    rendered, timings, identical = run_engine_benchmark()
    print(rendered)
    if not identical:
        raise SystemExit("FAIL: execution models disagree")
    if timings[PARALLEL_LABEL] >= timings[SERIAL_LABEL]:
        raise SystemExit("FAIL: parallel engine slower than serial baseline")
    ratio = timings[PARALLEL_LABEL] / timings[SHARDED_LABEL]
    if not _small_mode() and ratio < SHARDED_SPEEDUP_FLOOR:
        raise SystemExit(
            f"FAIL: sharded blocking only {ratio:.2f}x faster than the "
            f"parent-streamed parallel path")
    print("OK: engine (4 workers) beats the serial per-pair baseline, "
          f"sharded blocking beats parent streaming {ratio:.2f}x, "
          "identical correspondences")
