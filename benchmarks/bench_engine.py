"""Engine benchmark: serial per-pair matching vs the batch engine.

Compares three execution models on one workload — a datagen world
scaled ~10x beyond the default (``small``) benchmark scale, blocked
with token blocking and scored with the trigram matcher:

* **serial baseline** — the pre-engine execution model: one
  ``similarity()`` call per candidate pair in a pure-Python loop
  (reimplemented here verbatim so the baseline survives refactors);
* **engine, workers=1** — chunked streaming through the vectorized
  ``score_batch`` kernels, no processes;
* **engine, workers=4** — the same chunks fanned out across a
  process pool.

All three must produce identical correspondences, and the 4-worker
engine must beat the serial baseline's wall-clock.  On single-core
containers the engine's win comes from batched/vectorized scoring
(the pool only adds IPC there, so ``workers=1`` is typically fastest);
on real multi-core hardware the pool widens the gap further.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_engine.py``
or via pytest.  Set ``REPRO_ENGINE_BENCH=small`` for a quick smoke run
at the ordinary benchmark scale.
"""

from __future__ import annotations

import os
import time

from repro.blocking import TokenBlocking
from repro.core.mapping import Mapping, MappingKind
from repro.core.matchers.attribute import AttributeMatcher
from repro.datagen import build_dataset
from repro.datagen.world import WorldConfig
from repro.engine import BatchMatchEngine, EngineConfig
from repro.sim.ngram import TrigramSimilarity

THRESHOLD = 0.7
CHUNK_SIZE = 16384
WORKERS = 4


def _build_workload():
    """DBLP x ACM publications at ~10x the default benchmark scale."""
    if os.environ.get("REPRO_ENGINE_BENCH") == "small":
        dataset = build_dataset("small", seed=7)
    else:
        # the "small" preset is scale=0.35 / clusters=30; this is 10x that
        dataset = build_dataset(
            world_config=WorldConfig(seed=7, scale=3.5, clusters=300))
    return dataset.dblp.publications, dataset.acm.publications


def _serial_baseline(domain, range_, blocking) -> Mapping:
    """The pre-engine model: score candidate pairs one at a time."""
    sim = TrigramSimilarity()
    corpus = (domain.attribute_values("title")
              + range_.attribute_values("title"))
    sim.prepare(corpus)
    result = Mapping(domain.name, range_.name, kind=MappingKind.SAME)
    for id_a, id_b in blocking.candidates(domain, range_,
                                          domain_attribute="title",
                                          range_attribute="title"):
        value_a = domain.get(id_a).get("title")
        value_b = range_.get(id_b).get("title")
        if value_a is None or value_b is None:
            continue
        score = sim.similarity(value_a, value_b)
        if score >= THRESHOLD and score > 0.0:
            result.add(id_a, id_b, score)
    return result


def _engine_run(domain, range_, blocking, workers: int) -> Mapping:
    engine = BatchMatchEngine(
        EngineConfig(workers=workers, chunk_size=CHUNK_SIZE))
    matcher = AttributeMatcher("title", similarity=TrigramSimilarity(),
                               threshold=THRESHOLD, blocking=blocking,
                               engine=engine)
    return matcher.match(domain, range_)


def run_engine_benchmark():
    """Time the three execution models; return (render, measurements)."""
    domain, range_ = _build_workload()
    blocking = TokenBlocking()

    timings = {}

    start = time.perf_counter()
    baseline = _serial_baseline(domain, range_, blocking)
    timings["serial (per-pair loop)"] = time.perf_counter() - start

    start = time.perf_counter()
    engine_serial = _engine_run(domain, range_, blocking, workers=1)
    timings["engine workers=1"] = time.perf_counter() - start

    start = time.perf_counter()
    engine_parallel = _engine_run(domain, range_, blocking, workers=WORKERS)
    timings[f"engine workers={WORKERS}"] = time.perf_counter() - start

    rows = baseline.to_rows()
    identical = (rows == engine_serial.to_rows()
                 and rows == engine_parallel.to_rows())

    serial_time = timings["serial (per-pair loop)"]
    lines = [
        "engine benchmark: "
        f"{len(domain)} x {len(range_)} publications, "
        f"{len(baseline)} correspondences @ threshold {THRESHOLD}",
    ]
    for label, seconds in timings.items():
        lines.append(f"  {label:<24} {seconds:8.2f}s "
                     f"({serial_time / seconds:5.2f}x vs serial)")
    lines.append(f"  identical correspondences: {identical}")
    return "\n".join(lines), timings, identical


def test_engine_beats_serial_baseline(report):
    rendered, timings, identical = run_engine_benchmark()
    report("engine", rendered)
    print(rendered)
    assert identical, "execution models disagree on the result mapping"
    parallel = timings[f"engine workers={WORKERS}"]
    serial = timings["serial (per-pair loop)"]
    assert parallel < serial, (
        f"parallel engine ({parallel:.2f}s) did not beat the serial "
        f"per-pair baseline ({serial:.2f}s)")


if __name__ == "__main__":
    rendered, timings, identical = run_engine_benchmark()
    print(rendered)
    if not identical:
        raise SystemExit("FAIL: execution models disagree")
    if timings[f"engine workers={WORKERS}"] >= timings["serial (per-pair loop)"]:
        raise SystemExit("FAIL: parallel engine slower than serial baseline")
    print("OK: engine (4 workers) beats the serial per-pair baseline "
          "with identical correspondences")
