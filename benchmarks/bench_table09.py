"""Table 9 benchmark: duplicate author detection within DBLP."""

from repro.eval.experiments import run_table9


def test_table9_duplicate_authors(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_table9(bench_workbench), rounds=1, iterations=1)
    report(result.experiment_id, result.render())
    # injected duplicates surface among the top merged candidates
    assert result.data["recall_at_k"] >= 0.4
    assert len(result.data["candidates"]) > 0
