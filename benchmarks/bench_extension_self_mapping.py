"""Benchmark: the §5.6 future-work workflow (GS self-mapping).

Duplicate detection inside Google Scholar first, then composition of
the resulting self-mapping into the DBLP-GS same-mapping — the match
workflow the paper proposes as future work to repair the unsatisfying
GS numbers of Tables 7/8.
"""

from repro.eval.experiments.extension_self_mapping import (
    run_self_mapping_extension,
)


def test_self_mapping_extension(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_self_mapping_extension(bench_workbench),
        rounds=1, iterations=1)
    report(result.experiment_id, result.render())
    base = result.data["base"]
    expanded = result.data["expanded"]
    # the self-mapping must find duplicate clusters ...
    assert result.data["self_mapping_size"] > 0
    # ... and composing them in must improve the mapping overall
    assert expanded["f1"] > base["f1"]
