"""Table 4 benchmark: venue matching via 1:n neighborhood matcher."""

from repro.eval.experiments import run_table4


def test_table4_venue_neighborhood(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_table4(bench_workbench), rounds=1, iterations=1)
    report(result.experiment_id, result.render())
    # thresholds match conferences perfectly (large neighborhoods)
    assert result.data["conferences|80%"]["precision"] > 0.95
    # permissive selection recovers journal recall
    assert result.data["journals|50%"]["recall"] >= \
        result.data["journals|80%"]["recall"]
    # Best-1 is the strongest overall strategy
    assert result.data["overall|best1"]["f1"] >= \
        max(result.data["overall|80%"]["f1"],
            result.data["overall|50%"]["f1"]) - 0.08
