"""Worked-figure benchmarks: exact reproduction of Figures 1, 4, 6, 9."""

import pytest

from repro.eval.experiments import (
    run_figure1,
    run_figure4,
    run_figure6,
    run_figure9,
)


@pytest.mark.parametrize("runner", [
    run_figure1, run_figure4, run_figure6, run_figure9,
], ids=["figure1", "figure4", "figure6", "figure9"])
def test_figures_match_paper(benchmark, report, runner):
    result = benchmark(runner)
    report(result.experiment_id, result.render())
    assert result.data["matches_paper"] is True, result.data["checks"]
