"""Benchmark: the e-commerce domain (paper §7 future work).

Demonstrates domain transfer at benchmark scale: the same operators
match products, brands and categories between a curated catalog and a
noisy marketplace feed.
"""

from repro.core.matchers.attribute import AttributeMatcher
from repro.core.matchers.neighborhood import neighborhood_match
from repro.core.operators.selection import BestNSelection, ThresholdSelection
from repro.datagen.ecommerce import EcommerceConfig, build_ecommerce_dataset
from repro.eval import evaluate
from repro.eval.report import Table, format_percent


def run_ecommerce_experiment():
    data = build_ecommerce_dataset(EcommerceConfig(seed=5, products=400))
    catalog, market = data.catalog, data.market

    matcher = AttributeMatcher("name", similarity="trigram", threshold=0.55)
    fuzzy = matcher.match(catalog.products, market.products)
    direct = ThresholdSelection(0.8).apply(fuzzy)
    product_quality = evaluate(
        BestNSelection(1, side="range").apply(direct),
        data.gold.get("products", "Catalog.Product", "Market.Product"))

    brand_same = BestNSelection(1).apply(neighborhood_match(
        catalog.brand_product, direct, market.product_brand))
    brand_quality = evaluate(
        brand_same, data.gold.get("brands", "Catalog.Brand", "Market.Brand"))

    category_same = BestNSelection(1).apply(neighborhood_match(
        catalog.category_product, direct, market.product_category))
    category_quality = evaluate(
        category_same,
        data.gold.get("categories", "Catalog.Category", "Market.Category"))

    table = Table(
        "E-commerce domain (paper §7): catalog vs marketplace matching",
        ["task", "strategy", "precision", "recall", "f-measure"],
    )
    rows = (
        ("products", "name matcher + best-1", product_quality),
        ("brands", "1:n neighborhood", brand_quality),
        ("categories", "1:n neighborhood", category_quality),
    )
    for task, strategy, quality in rows:
        table.add_row(task, strategy, format_percent(quality.precision),
                      format_percent(quality.recall),
                      format_percent(quality.f1))
    return table, {task: quality for task, _, quality in rows}


def test_ecommerce_domain(benchmark, report):
    table, scores = benchmark.pedantic(run_ecommerce_experiment,
                                       rounds=1, iterations=1)
    report("ecommerce", table.render())
    assert scores["products"].f1 > 0.6
    assert scores["brands"].f1 > 0.85
    assert scores["categories"].f1 > 0.85
