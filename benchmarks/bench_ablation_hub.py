"""Ablation: hub topology for multi-source matching (Figure 8).

"All data sources connected with the hub can efficiently be matched
with each other.  Generating a same-mapping between any two sources
only requires the composition of two same-mappings via the hub."

Compares matching GS-ACM (the pair with no usable direct mapping)
through each possible intermediate, plus the direct link mapping —
quantifying the paper's advice that the intermediate "should be of
high quality such as DBLP".
"""

from repro.core.operators.compose import compose
from repro.eval.report import Table, format_percent


def run_hub_ablation(workbench):
    links = workbench.bundle("GS").extras["links_to_acm"]
    dblp_acm = workbench.pub_same("DBLP", "ACM")
    dblp_gs = workbench.pub_same("DBLP", "GS")

    routes = {
        "direct (link mapping)": links,
        "via DBLP (curated hub)": compose(dblp_gs.inverse(), dblp_acm,
                                          "min", "max"),
        # a deliberately poor hub: route DBLP-ACM through GS both ways
        "via GS (dirty hub)": compose(
            compose(dblp_gs.inverse(), dblp_gs, "min", "max"),
            links, "min", "max"),
    }
    table = Table(
        "Ablation: intermediate-source choice for GS-ACM matching (Fig. 8)",
        ["route", "precision", "recall", "f-measure"],
    )
    scores = {}
    for label, mapping in routes.items():
        quality = workbench.score(mapping, "publications", "GS", "ACM")
        scores[label] = quality
        table.add_row(label, format_percent(quality.precision),
                      format_percent(quality.recall),
                      format_percent(quality.f1))
    table.add_note("the curated hub wins; dirty intermediates compound "
                   "their own duplicates and coverage gaps")
    return table, scores


def test_hub_ablation(benchmark, bench_workbench, report):
    table, scores = benchmark.pedantic(
        lambda: run_hub_ablation(bench_workbench), rounds=1, iterations=1)
    report("ablation-hub", table.render())
    assert scores["via DBLP (curated hub)"].f1 > \
        scores["direct (link mapping)"].f1
    assert scores["via DBLP (curated hub)"].f1 > \
        scores["via GS (dirty hub)"].f1
