"""Table 8 benchmark: GS-ACM publications via author neighborhood."""

from repro.eval.experiments import run_table8


def test_table8_gs_acm_publications(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_table8(bench_workbench), rounds=1, iterations=1)
    report(result.experiment_id, result.render())
    # "comparative results" to Table 7 (paper §5.4.3)
    assert result.data["merge"]["f1"] > result.data["attribute"]["f1"]
    assert result.data["neighborhood"]["precision"] < 0.5
