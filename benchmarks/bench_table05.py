"""Table 5 benchmark: publication matching via n:1 neighborhood."""

from repro.eval.experiments import run_table5


def test_table5_publication_neighborhood(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_table5(bench_workbench), rounds=1, iterations=1)
    report(result.experiment_id, result.render())
    neighborhood = result.data["overall|neighborhood"]
    # neighborhood alone: ~100% recall at useless precision (paper: 2%)
    assert neighborhood["recall"] > 0.95
    assert neighborhood["precision"] < 0.35
    # the merged mapping dominates the attribute matcher
    assert result.data["overall|merge"]["f1"] > \
        result.data["overall|attribute"]["f1"]
    assert result.data["overall|merge"]["f1"] > 0.9
