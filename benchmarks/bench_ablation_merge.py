"""Ablation: merge combination function choice (DESIGN.md §6).

Holds the Table 2 inputs fixed (title, author, year matchers between
DBLP and ACM) and varies only the combination function + threshold.
Paper's claim: merge quality comes from the missing-as-zero average;
ignore-missing averaging lets the year matcher's cross-product flood
the result, and Min-0 intersection trades recall for precision.
"""

from repro.core.operators.merge import merge
from repro.core.operators.selection import ThresholdSelection
from repro.eval.report import Table, format_percent

FUNCTIONS = ("avg", "avg0", "min", "min0", "max")


def run_merge_ablation(workbench):
    title = workbench.fuzzy_title("DBLP", "ACM")
    author = workbench.fuzzy_pub_authors("DBLP", "ACM")
    year = workbench.year_mapping("DBLP", "ACM")
    threshold = ThresholdSelection(workbench.THRESHOLD)

    table = Table(
        "Ablation: merge combination function (Table 2 inputs, 80% threshold)",
        ["function", "precision", "recall", "f-measure"],
    )
    scores = {}
    for function in FUNCTIONS:
        merged = threshold.apply(merge([title, author, year], function))
        quality = workbench.score(merged, "publications", "DBLP", "ACM")
        scores[function] = quality
        table.add_row(function, format_percent(quality.precision),
                      format_percent(quality.recall),
                      format_percent(quality.f1))
    table.add_note("avg0 is the paper's Table 2 configuration")
    return table, scores


def test_merge_function_ablation(benchmark, bench_workbench, report):
    table, scores = benchmark.pedantic(
        lambda: run_merge_ablation(bench_workbench), rounds=1, iterations=1)
    report("ablation-merge", table.render())
    # missing-as-zero beats ignore-missing here: the year matcher's
    # same-year cross product would otherwise dominate
    assert scores["avg0"].f1 > scores["avg"].f1
    # min-0 = intersection: top precision
    assert scores["min0"].precision >= scores["max"].precision
