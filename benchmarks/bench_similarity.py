"""Micro-benchmarks: similarity-function throughput on realistic titles."""

import random

import pytest

from repro.datagen.text import generate_distinct_titles
from repro.sim.registry import get_similarity

NAMES = ("trigram", "levenshtein", "jaro", "jarowinkler", "tfidf",
         "affix", "jaccard", "personname")


@pytest.fixture(scope="module")
def title_pairs():
    rng = random.Random(13)
    titles = generate_distinct_titles(200, rng)
    return [(titles[i], titles[(i * 7 + 1) % len(titles)])
            for i in range(len(titles))]


@pytest.mark.parametrize("name", NAMES)
def test_similarity_throughput(benchmark, name, title_pairs):
    function = get_similarity(name)
    function.prepare([a for a, _ in title_pairs])

    def score_all():
        total = 0.0
        for a, b in title_pairs:
            total += function.similarity(a, b)
        return total

    total = benchmark(score_all)
    assert 0.0 <= total <= len(title_pairs)
