"""Serving benchmark: the kernel-batched match service vs the scalar
online loop.

One mixed query/ingest/delete workload (noisy GS titles matched
against the DBLP reference, with ACM-derived records ingested and
reference rows deleted along the way), executed twice:

* **scalar online loop** — the pre-serve :class:`OnlineMatcher`
  execution model, reimplemented here verbatim so the baseline
  survives refactors: per query record, candidates from the token
  index, then one ``similarity()`` call per candidate pair;
* **match service** — :class:`repro.serve.MatchService` over the same
  mutable reference: each query batch becomes one bound-kernel
  ``score_rows`` call over the union of its candidate pairs.

Both runs share candidate generation (the same
:class:`~repro.serve.index.IncrementalIndex` logic) and must produce
identical correspondences; the result cache is disabled so the gate
measures scoring, not reuse.  Alongside the wall times the benchmark
reports sustained match throughput and p50/p99 per-batch latency for
the service.

A second section exercises the partitioned serving tier
(:class:`~repro.serve.cluster.ClusterIndex`): a shard-count sweep over
a frozen-reference query workload (every shard count must answer
bit-identically to the single in-heap index), plus
snapshot → cold-restart → first-answer timing for the mmap/WAL
persistence path.  The >= 2.5x four-shard scaling gate applies only at
full scale on a machine with at least four cores; bit-identity and the
sub-second restart budget are enforced everywhere.

A third section gates the impact-ordered candidate pruning
(``IncrementalIndex(pruning=...)``): a 10x reference-size sweep over a
hub-token workload (one token in ~90% of the reference, rare tokens
drawn from a vocabulary that grows with the corpus).  At every scale
the pruned top-k answers must be bit-identical to the exhaustive
``bincount`` ranking; the posting-mass counters must show the hub
posting being skipped (touched fraction bounded, touched-per-query
growth well under the reference growth) — both enforced everywhere,
since counters are deterministic.  The wall-clock gate — pruned p99
batch latency grows sublinearly across the 10x sweep — applies only at
full scale, where timings rise above noise.

A fourth section gates observability overhead: the match workload
runs with metrics + tracing off and on, interleaved, three rounds per
mode; the best metrics-on p50 must stay within 5% of the best
metrics-off p50 (full scale only — smoke timings are noise-bound) and
both runs must produce identical correspondences (enforced
everywhere).  It also drives a metrics-enabled sharded service over
real HTTP and scrapes ``/v1/metrics``; set
``REPRO_SERVE_METRICS_SNAPSHOT=/path`` to keep the scraped exposition
(archived by CI next to ``BENCH_serve.json``).

Run standalone with ``PYTHONPATH=src python benchmarks/bench_serve.py``
or via pytest.  ``REPRO_SERVE_BENCH=small`` runs a quick smoke at
reduced scale (all correctness gates, no perf gate — sub-second runs
are noise-bound; the cluster sweep shrinks to {1, 2} shards).
``REPRO_SERVE_BENCH_JSON=/path/to/BENCH_serve.json`` writes the
measurements as JSON (archived by CI next to ``BENCH_engine.json``);
see ``docs/benchmarks.md``.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import string
import tempfile
import threading
import time
from typing import List, Tuple

from repro.datagen import build_dataset
from repro.datagen.world import WorldConfig
from repro.engine.request import AttributeSpec
from repro.model.entity import ObjectInstance
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.serve import ClusterIndex, MatchService, ServeConfig
from repro.serve.cluster import _fork_available
from repro.serve.index import IncrementalIndex
from repro.sim.ngram import TrigramSimilarity

THRESHOLD = 0.6
MAX_CANDIDATES = 100
MATCH_BATCH = 48
#: the kernel-batched service must beat the scalar per-pair loop by at
#: least this factor on the full-scale mixed workload
SERVE_SPEEDUP_FLOOR = 3.0
#: four shard workers must scale match throughput by at least this
#: factor over one shard (full scale, >= 4 cores only)
CLUSTER_SCALING_FLOOR = 2.5
#: snapshot -> cold restart -> first answered batch must fit in this
RESTART_BUDGET_SECONDS = 1.0
#: pruning sweep: threshold / top-k for the hub-token workload
PRUNING_THRESHOLD = 0.3
PRUNING_TOP_K = 10
#: pruned p99 batch latency across the 10x reference sweep must grow
#: by at most this factor (full scale only; smoke timings are noise)
PRUNING_P99_GROWTH_CEILING = 5.0
#: touched-postings-per-query across the 10x sweep must grow by at
#: most this factor (counters are deterministic: enforced everywhere)
PRUNING_COUNTER_GROWTH_CEILING = 5.0
#: at the largest scale the pruned path must skip most of the posting
#: mass it would otherwise scan (the hub posting dominates it)
PRUNING_TOUCHED_FRACTION_CEILING = 0.6
#: metrics-on p50 batch latency must stay within this factor of the
#: metrics-off p50 (best of OBSERVABILITY_ROUNDS interleaved rounds
#: per mode; full scale only)
OBSERVABILITY_P50_CEILING = 1.05
OBSERVABILITY_ROUNDS = 3

SCALAR_LABEL = "scalar online loop"
SERVICE_LABEL = "match service (kernel-batched)"


def _small_mode() -> bool:
    return os.environ.get("REPRO_SERVE_BENCH") == "small"


def _cluster_shard_counts() -> List[int]:
    return [1, 2] if _small_mode() else [1, 2, 4]


def _build_workload():
    """Reference + query/ingest pools from the synthetic world."""
    if _small_mode():
        dataset = build_dataset("small", seed=7)
    else:
        dataset = build_dataset(
            world_config=WorldConfig(seed=7, scale=3.5, clusters=300))
    reference = dataset.dblp.publications
    queries = [instance for instance in dataset.gs.publications
               if instance.get("title") is not None]
    ingest_pool = [
        ObjectInstance(f"ingest-{instance.id}", dict(instance.attributes))
        for instance in dataset.acm.publications
    ]
    return reference, queries, ingest_pool


def _build_ops(reference, queries, ingest_pool):
    """The deterministic mixed op sequence both runs execute."""
    rng = random.Random(7)
    if _small_mode():
        n_match, ingest_every, ingest_size, delete_size = 10, 4, 8, 4
    else:
        n_match, ingest_every, ingest_size, delete_size = 60, 5, 24, 12
    deletable = list(reference.ids())
    rng.shuffle(deletable)
    ops = []
    query_cursor = ingest_cursor = 0
    for step in range(n_match):
        batch = [queries[(query_cursor + i) % len(queries)]
                 for i in range(MATCH_BATCH)]
        query_cursor += MATCH_BATCH
        ops.append(("match", batch))
        if (step + 1) % ingest_every == 0:
            records = ingest_pool[ingest_cursor:ingest_cursor + ingest_size]
            ingest_cursor += ingest_size
            ops.append(("ingest", records))
            ops.append(("delete", [deletable.pop()
                                   for _ in range(delete_size)]))
    return ops


class ScalarOnlineLoop:
    """The pre-serve ``OnlineMatcher`` execution model, reimplemented
    verbatim so the baseline survives refactors: per query record,
    candidate ranking by per-id dict accumulation over the token
    postings, then one scalar ``similarity()`` call per candidate
    pair.  Mutation bookkeeping (postings, tombstones) reuses the
    :class:`IncrementalIndex` with kernels disabled; the ranking
    weights match the index's, so both runs score identical pairs and
    must produce identical correspondences.
    """

    def __init__(self, reference) -> None:
        self.index = IncrementalIndex(reference, "title",
                                      TrigramSimilarity(),
                                      build_kernels=False)
        self.similarity = self.index.specs[0].similarity

    def _candidates(self, value: str) -> List[str]:
        # the old OnlineMatcher._candidates shape: one dict update per
        # (token, posting entry), then a full ranking sort
        scores = {}
        for _, posting, weight in self.index._posting_weights(value):
            for slot in posting:
                scores[slot] = scores.get(slot, 0.0) + weight
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        slot_ids = self.index._slot_ids
        return [slot_ids[slot] for slot, _ in ranked[:MAX_CANDIDATES]]

    def match_record(self, record) -> List[Tuple[str, float]]:
        value = record.get("title")
        if value is None:
            return []
        value = str(value)
        results = []
        for reference_id in self._candidates(value):
            reference_value = self.index.get(reference_id).get("title")
            score = self.similarity.similarity(value, reference_value)
            if score >= THRESHOLD and score > 0.0:
                results.append((reference_id, score))
        results.sort(key=lambda item: (-item[1], item[0]))
        return results


def _run_scalar(reference, ops):
    loop = ScalarOnlineLoop(reference)
    rows = []
    match_seconds = mutation_seconds = 0.0
    for kind, payload in ops:
        start = time.perf_counter()
        if kind == "match":
            for record in payload:
                for reference_id, score in loop.match_record(record):
                    rows.append((record.id, reference_id, score))
            match_seconds += time.perf_counter() - start
        elif kind == "ingest":
            for record in payload:
                if record.id in loop.index:
                    loop.index.update(record)
                else:
                    loop.index.add(record)
            mutation_seconds += time.perf_counter() - start
        else:
            for id in payload:
                loop.index.delete(id)
            mutation_seconds += time.perf_counter() - start
    return rows, match_seconds, mutation_seconds


def _run_service(reference, ops):
    service = MatchService(reference, config=ServeConfig(
        attribute="title", similarity=TrigramSimilarity(),
        threshold=THRESHOLD, max_candidates=MAX_CANDIDATES,
        cache_size=0))
    rows = []
    latencies = []
    match_seconds = mutation_seconds = 0.0
    matched_records = 0
    for kind, payload in ops:
        start = time.perf_counter()
        if kind == "match":
            mapping = service.match_batch(payload)
            elapsed = time.perf_counter() - start
            match_seconds += elapsed
            latencies.append(elapsed)
            matched_records += len(payload)
            for domain_id, range_id, score in mapping.to_rows():
                rows.append((domain_id, range_id, score))
        elif kind == "ingest":
            service.ingest(payload)
            mutation_seconds += time.perf_counter() - start
        else:
            for id in payload:
                service.delete(id)
            mutation_seconds += time.perf_counter() - start
    return (rows, match_seconds, mutation_seconds, latencies,
            matched_records, service)


def _percentile(values: List[float], fraction: float) -> float:
    ranked = sorted(values)
    index = min(len(ranked) - 1, int(round(fraction * (len(ranked) - 1))))
    return ranked[index]


def run_cluster_benchmark():
    """Shard-scaling sweep + snapshot/restore timing for the
    partitioned serving tier; returns (render lines, measurements)."""
    reference, queries, _ = _build_workload()
    n_batches = 6 if _small_mode() else 24
    batches = [
        [queries[(b * MATCH_BATCH + i) % len(queries)]
         for i in range(MATCH_BATCH)]
        for b in range(n_batches)
    ]
    specs = [AttributeSpec("title", "title", TrigramSimilarity())]

    single = IncrementalIndex(reference, specs=specs)
    start = time.perf_counter()
    expected = [single.match_records(batch, threshold=THRESHOLD,
                                     max_candidates=MAX_CANDIDATES)
                for batch in batches]
    single_seconds = time.perf_counter() - start

    processes = _fork_available()
    throughput = {}
    seconds = {}
    bit_identical = True
    for shards in _cluster_shard_counts():
        cluster = ClusterIndex.build(reference, specs=specs, shards=shards,
                                     processes=processes)
        try:
            cluster.match_records(batches[0], threshold=THRESHOLD,
                                  max_candidates=MAX_CANDIDATES)  # warm-up
            start = time.perf_counter()
            results = [cluster.match_records(batch, threshold=THRESHOLD,
                                             max_candidates=MAX_CANDIDATES)
                       for batch in batches]
            elapsed = time.perf_counter() - start
        finally:
            cluster.close()
        seconds[shards] = elapsed
        throughput[shards] = n_batches * MATCH_BATCH / max(elapsed, 1e-9)
        bit_identical = bit_identical and results == expected

    counts = _cluster_shard_counts()
    scaling = throughput[counts[-1]] / max(throughput[1], 1e-9)

    # snapshot -> cold restart -> first answered batch
    with tempfile.TemporaryDirectory() as data_dir:
        cluster = ClusterIndex.build(reference, specs=specs, shards=2,
                                     processes=processes, data_dir=data_dir)
        try:
            cluster.checkpoint()
        finally:
            cluster.close()
        start = time.perf_counter()
        restored = ClusterIndex.restore(data_dir, processes=processes)
        try:
            first = restored.match_records(batches[0], threshold=THRESHOLD,
                                           max_candidates=MAX_CANDIDATES)
            restart_seconds = time.perf_counter() - start
        finally:
            restored.close()
        bit_identical = bit_identical and first == expected[0]

    lines = [
        f"cluster scatter-gather: {len(reference)} reference records "
        f"across {{{', '.join(map(str, counts))}}} "
        f"{'process' if processes else 'in-process'} shard(s), "
        f"{n_batches * MATCH_BATCH} query records "
        f"(single in-heap index: {single_seconds:.2f}s)",
    ]
    for shards in counts:
        lines.append(
            f"  {shards} shard(s): {seconds[shards]:8.2f}s match, "
            f"{throughput[shards]:,.0f} records/s")
    lines += [
        f"  scaling {counts[-1]} vs 1 shard: {scaling:.2f}x "
        f"({os.cpu_count()} cores visible)",
        f"  snapshot restore -> first answer: "
        f"{restart_seconds * 1000.0:.1f}ms (2 shards)",
        f"  bit-identical to the single index: {bit_identical}",
    ]
    measurements = {
        "shard_counts": counts,
        "processes": processes,
        "cpu_count": os.cpu_count(),
        "single_index_seconds": single_seconds,
        "seconds_by_shards": {str(n): seconds[n] for n in counts},
        "throughput_records_per_second": {
            str(n): throughput[n] for n in counts},
        "scaling_vs_one_shard": scaling,
        "restart_seconds": restart_seconds,
        "bit_identical": bit_identical,
    }
    return lines, measurements


def _pruning_sizes() -> List[int]:
    """1x / 3x / 10x reference sizes for the pruning sweep."""
    return [200, 600, 2000] if _small_mode() else [2000, 6000, 20000]


def _hub_corpus(n: int):
    """A skewed reference + queries: one hub token in ~90% of the
    records, rare tokens drawn from a vocabulary that grows with the
    corpus (so rare postings stay small as the reference grows — the
    regime impact ordering exploits).  Queries replay reference titles
    with the hub token guaranteed, the pruned path's worst case."""
    rng = random.Random(1000 + n)
    vocab = ["".join(rng.choice(string.ascii_lowercase) for _ in range(7))
             for _ in range(max(50, n // 10))]
    source = LogicalSource(PhysicalSource("REF"), ObjectType("Publication"))
    titles = []
    for i in range(n):
        tokens = rng.sample(vocab, 3)
        if rng.random() < 0.9:
            tokens.insert(rng.randrange(len(tokens) + 1), "ubiquitous")
        titles.append(" ".join(tokens))
        source.add_record(f"p{i}", title=titles[-1])
    n_batches = 6 if _small_mode() else 16
    batch_size = 16
    queries = []
    for b in range(n_batches):
        batch = []
        for i in range(batch_size):
            tokens = rng.choice(titles).split()
            if "ubiquitous" not in tokens:
                tokens.insert(0, "ubiquitous")
            batch.append(ObjectInstance(f"q{b}-{i}",
                                        {"title": " ".join(tokens)}))
        queries.append(batch)
    return source, queries


def _copy_source(source):
    rebuilt = LogicalSource(source.physical, source.object_type)
    for instance in source:
        rebuilt.add(instance)
    return rebuilt


def run_pruning_benchmark():
    """10x reference sweep for impact-ordered pruning; returns
    (render lines, measurements).  Bit-identity and the posting-mass
    counters are checked at every scale."""
    sizes = _pruning_sizes()
    sweep = []
    bit_identical = True
    for scale, n in zip(("1x", "3x", "10x"), sizes):
        source, batches = _hub_corpus(n)
        pruned = IncrementalIndex(source, "title", TrigramSimilarity(),
                                  pruning="always")
        exhaustive = IncrementalIndex(_copy_source(source), "title",
                                      TrigramSimilarity(), pruning="never")
        latencies = []
        exhaustive_seconds = 0.0
        for batch in batches:
            start = time.perf_counter()
            actual = pruned.match_records(batch,
                                          threshold=PRUNING_THRESHOLD,
                                          max_candidates=PRUNING_TOP_K)
            latencies.append(time.perf_counter() - start)
            start = time.perf_counter()
            expected = exhaustive.match_records(
                batch, threshold=PRUNING_THRESHOLD,
                max_candidates=PRUNING_TOP_K)
            exhaustive_seconds += time.perf_counter() - start
            bit_identical = bit_identical and actual == expected
        counters = pruned.pruning_counters()
        queries = counters["queries"]
        mass = counters["postings_touched"] + counters["postings_skipped"]
        sweep.append({
            "scale": scale,
            "reference_size": n,
            "query_records": queries,
            "p50_ms": _percentile(latencies, 0.50) * 1000.0,
            "p99_ms": _percentile(latencies, 0.99) * 1000.0,
            "exhaustive_seconds": exhaustive_seconds,
            "pruned_seconds": sum(latencies),
            "pruned_queries": counters["pruned_queries"],
            "postings_touched": counters["postings_touched"],
            "postings_skipped": counters["postings_skipped"],
            "touched_fraction": counters["postings_touched"] / max(mass, 1),
            "touched_per_query":
                counters["postings_touched"] / max(queries, 1),
        })
    first, last = sweep[0], sweep[-1]
    size_growth = last["reference_size"] / first["reference_size"]
    p99_growth = last["p99_ms"] / max(first["p99_ms"], 1e-9)
    counter_growth = (last["touched_per_query"]
                      / max(first["touched_per_query"], 1e-9))
    lines = [
        f"pruning sweep: hub-token workload, top-{PRUNING_TOP_K} @ "
        f"threshold {PRUNING_THRESHOLD}, "
        f"{first['query_records']} query records per scale",
    ]
    for entry in sweep:
        lines.append(
            f"  {entry['scale']:>3} ({entry['reference_size']:>6} refs): "
            f"p50 {entry['p50_ms']:6.1f}ms / p99 {entry['p99_ms']:6.1f}ms, "
            f"touched {entry['touched_fraction'] * 100.0:4.1f}% of "
            f"posting mass "
            f"({entry['touched_per_query']:,.0f} entries/query)")
    lines += [
        f"  {size_growth:.0f}x reference growth -> p99 x{p99_growth:.2f}, "
        f"touched/query x{counter_growth:.2f}",
        f"  bit-identical to the exhaustive ranking: {bit_identical}",
    ]
    measurements = {
        "threshold": PRUNING_THRESHOLD,
        "max_candidates": PRUNING_TOP_K,
        "sweep": sweep,
        "reference_growth": size_growth,
        "p99_growth": p99_growth,
        "touched_per_query_growth": counter_growth,
        "bit_identical": bit_identical,
    }
    return lines, measurements


def _observability_run(reference, batches, observed):
    """One match-only pass; returns (sorted rows, p50 seconds)."""
    service = MatchService(reference, config=ServeConfig(
        attribute="title", similarity=TrigramSimilarity(),
        threshold=THRESHOLD, max_candidates=MAX_CANDIDATES,
        cache_size=0, metrics=observed,
        trace_sample_rate=1.0 if observed else 0.0))
    rows = []
    latencies = []
    try:
        service.match_batch(batches[0])  # warm-up
        for batch in batches:
            start = time.perf_counter()
            mapping = service.match_batch(batch)
            latencies.append(time.perf_counter() - start)
            rows.extend(mapping.to_rows())
    finally:
        service.close()
    return sorted(rows), _percentile(latencies, 0.50)


def _scrape_metrics(reference, batches):
    """Drive a metrics-enabled sharded service over real HTTP and
    scrape ``/v1/metrics``; returns the exposition text."""
    from repro.serve.http import build_server

    with tempfile.TemporaryDirectory() as data_dir:
        service = MatchService(reference, config=ServeConfig(
            attribute="title", similarity=TrigramSimilarity(),
            threshold=THRESHOLD, max_candidates=MAX_CANDIDATES,
            shards=2, shard_processes=_fork_available(),
            data_dir=data_dir, metrics=True, trace_sample_rate=1.0))
        server = build_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        def request(method, path, body=None):
            # one connection per request: the snapshot handler reads
            # no body, so keep-alive reuse would desync the stream
            connection = http.client.HTTPConnection(host, port, timeout=30)
            try:
                payload = (json.dumps(body).encode()
                           if body is not None else None)
                connection.request(method, path, body=payload,
                                   headers={"Content-Type":
                                            "application/json"})
                return connection.getresponse().read().decode()
            finally:
                connection.close()

        try:
            records = [{"id": record.id,
                        "attributes": dict(record.attributes)}
                       for record in batches[0]]
            request("POST", "/v1/match", {"records": records})
            request("POST", "/v1/snapshot")
            return request("GET", "/v1/metrics")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.close()


def run_observability_benchmark():
    """Metrics/tracing overhead gate + a real-HTTP ``/v1/metrics``
    scrape; returns (render lines, measurements)."""
    reference, queries, _ = _build_workload()
    n_batches = 6 if _small_mode() else 24
    batches = [
        [queries[(b * MATCH_BATCH + i) % len(queries)]
         for i in range(MATCH_BATCH)]
        for b in range(n_batches)
    ]

    # interleave the modes so drift (cache warmth, frequency scaling)
    # hits both equally; keep the best p50 per mode
    p50 = {False: [], True: []}
    rows = {}
    for _ in range(OBSERVABILITY_ROUNDS):
        for observed in (False, True):
            rows[observed], run_p50 = _observability_run(
                reference, batches, observed)
            p50[observed].append(run_p50)
    off_p50, on_p50 = min(p50[False]), min(p50[True])
    overhead = on_p50 / max(off_p50, 1e-9)
    identical = rows[True] == rows[False]

    exposition = _scrape_metrics(reference, batches)
    families = sorted({line.split()[2] for line in exposition.splitlines()
                       if line.startswith("# TYPE ")})
    snapshot_path = os.environ.get("REPRO_SERVE_METRICS_SNAPSHOT")
    if snapshot_path:
        with open(snapshot_path, "w") as handle:
            handle.write(exposition)

    lines = [
        f"observability: {n_batches * MATCH_BATCH} query records, "
        f"metrics + tracing off vs on "
        f"(best of {OBSERVABILITY_ROUNDS} interleaved rounds)",
        f"  p50 off {off_p50 * 1000.0:6.1f}ms / "
        f"on {on_p50 * 1000.0:6.1f}ms -> overhead x{overhead:.3f} "
        f"(ceiling x{OBSERVABILITY_P50_CEILING})",
        f"  /v1/metrics scrape: {len(exposition)} bytes, "
        f"{len(families)} metric families"
        + (f" -> {snapshot_path}" if snapshot_path else ""),
        f"  identical correspondences: {identical}",
    ]
    measurements = {
        "rounds": OBSERVABILITY_ROUNDS,
        "p50_ms_off": off_p50 * 1000.0,
        "p50_ms_on": on_p50 * 1000.0,
        "overhead": overhead,
        "overhead_ceiling": OBSERVABILITY_P50_CEILING,
        "metric_families": families,
        "exposition_bytes": len(exposition),
        "identical_correspondences": identical,
    }
    return lines, measurements


def run_serve_benchmark():
    """Execute the mixed workload both ways; return render + results."""
    reference, queries, ingest_pool = _build_workload()
    ops = _build_ops(reference, queries, ingest_pool)
    n_matches = sum(len(payload) for kind, payload in ops
                    if kind == "match")

    scalar_rows, scalar_match, scalar_mutation = _run_scalar(reference, ops)
    (service_rows, service_match, service_mutation, latencies,
     matched_records, service) = _run_service(reference, ops)

    identical = sorted(scalar_rows) == sorted(service_rows)
    speedup = scalar_match / max(service_match, 1e-9)
    throughput = matched_records / max(service_match, 1e-9)
    p50 = _percentile(latencies, 0.50) * 1000.0
    p99 = _percentile(latencies, 0.99) * 1000.0

    lines = [
        "serve benchmark: "
        f"{len(reference)} reference records, {n_matches} query records "
        f"in batches of {MATCH_BATCH}, mixed with ingest/delete ops "
        f"@ threshold {THRESHOLD}, {MAX_CANDIDATES} candidates",
        f"  {SCALAR_LABEL:<34} {scalar_match:8.2f}s match "
        f"(+{scalar_mutation:.2f}s mutations)",
        f"  {SERVICE_LABEL:<34} {service_match:8.2f}s match "
        f"(+{service_mutation:.2f}s mutations)",
        f"  service vs scalar loop: {speedup:.2f}x",
        f"  sustained throughput: {throughput:,.0f} records/s, "
        f"batch latency p50 {p50:.1f}ms / p99 {p99:.1f}ms",
        f"  identical correspondences: {identical}",
    ]
    measurements = {
        "benchmark": "serve",
        "mode": "small" if _small_mode() else "full",
        "workload": {
            "reference_size": len(reference),
            "query_records": n_matches,
            "match_batch": MATCH_BATCH,
            "threshold": THRESHOLD,
            "max_candidates": MAX_CANDIDATES,
            "ops": len(ops),
        },
        "timings_seconds": {
            SCALAR_LABEL: scalar_match,
            SERVICE_LABEL: service_match,
            "scalar mutations": scalar_mutation,
            "service mutations": service_mutation,
        },
        "service_vs_scalar": speedup,
        "throughput_records_per_second": throughput,
        "latency_ms": {"p50": p50, "p99": p99},
        "service_stats": service.stats(),
        "identical_correspondences": identical,
    }

    cluster_lines, cluster_measurements = run_cluster_benchmark()
    lines += cluster_lines
    measurements["cluster"] = cluster_measurements

    pruning_lines, pruning_measurements = run_pruning_benchmark()
    lines += pruning_lines
    measurements["pruning"] = pruning_measurements

    obs_lines, obs_measurements = run_observability_benchmark()
    lines += obs_lines
    measurements["observability"] = obs_measurements

    json_path = os.environ.get("REPRO_SERVE_BENCH_JSON")
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(measurements, handle, indent=2)
            handle.write("\n")
        lines.append(f"  measurements written to {json_path}")
    return "\n".join(lines), measurements


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

_CACHED = None


def _benchmark_results():
    """Run the benchmark once per process; both tests read the result."""
    global _CACHED
    if _CACHED is None:
        _CACHED = run_serve_benchmark()
    return _CACHED


def _scaling_gate_applies() -> bool:
    """The >= 2.5x shard-scaling gate needs full scale (smoke timings
    are noise-bound), real worker processes and enough cores to run
    four shards in parallel."""
    return (not _small_mode() and _fork_available()
            and (os.cpu_count() or 1) >= 4)


def test_service_beats_scalar_online_loop(report):
    rendered, results = _benchmark_results()
    report("serve", rendered)
    print(rendered)
    assert results["identical_correspondences"], \
        "service correspondences disagree with the scalar online loop"
    if not _small_mode():
        # perf gate only at full scale: smoke runs are noise-bound
        speedup = results["service_vs_scalar"]
        assert speedup >= SERVE_SPEEDUP_FLOOR, (
            f"kernel-batched service only {speedup:.2f}x faster than the "
            f"scalar online loop; expected >= {SERVE_SPEEDUP_FLOOR}x")


def test_cluster_tier_scales_and_restores(report):
    _, results = _benchmark_results()
    cluster = results["cluster"]
    assert cluster["bit_identical"], \
        "cluster scatter-gather disagrees with the single in-heap index"
    assert cluster["restart_seconds"] < RESTART_BUDGET_SECONDS, (
        f"snapshot restore to first answer took "
        f"{cluster['restart_seconds']:.2f}s; "
        f"budget {RESTART_BUDGET_SECONDS}s")
    if _scaling_gate_applies():
        scaling = cluster["scaling_vs_one_shard"]
        assert scaling >= CLUSTER_SCALING_FLOOR, (
            f"4 shard workers only {scaling:.2f}x over 1 shard; "
            f"expected >= {CLUSTER_SCALING_FLOOR}x")


def test_pruning_sweep_is_sublinear(report):
    _, results = _benchmark_results()
    pruning = results["pruning"]
    assert pruning["bit_identical"], \
        "pruned top-k disagrees with the exhaustive bincount ranking"
    largest = pruning["sweep"][-1]
    assert largest["pruned_queries"] > 0, \
        "pruning never engaged on the hub-token workload"
    # deterministic counter gates apply everywhere, including smoke
    assert largest["touched_fraction"] \
        < PRUNING_TOUCHED_FRACTION_CEILING, (
        f"pruned path touched "
        f"{largest['touched_fraction'] * 100.0:.1f}% of the posting "
        f"mass at {largest['reference_size']} references; expected < "
        f"{PRUNING_TOUCHED_FRACTION_CEILING * 100.0:.0f}%")
    assert pruning["touched_per_query_growth"] \
        <= PRUNING_COUNTER_GROWTH_CEILING, (
        f"touched postings per query grew "
        f"x{pruning['touched_per_query_growth']:.2f} across the "
        f"{pruning['reference_growth']:.0f}x sweep; ceiling "
        f"x{PRUNING_COUNTER_GROWTH_CEILING}")
    if not _small_mode():
        # wall-clock gate only at full scale: smoke runs are noise-bound
        assert pruning["p99_growth"] <= PRUNING_P99_GROWTH_CEILING, (
            f"pruned p99 grew x{pruning['p99_growth']:.2f} across the "
            f"{pruning['reference_growth']:.0f}x sweep; ceiling "
            f"x{PRUNING_P99_GROWTH_CEILING}")


def test_observability_overhead_is_bounded(report):
    _, results = _benchmark_results()
    obs = results["observability"]
    assert obs["identical_correspondences"], \
        "metrics-on run disagrees with the metrics-off run"
    assert any(family.startswith("repro_index_pruning_")
               for family in obs["metric_families"])
    assert any(family.startswith("repro_wal_")
               for family in obs["metric_families"])
    assert "repro_cluster_round_seconds" in obs["metric_families"]
    assert "repro_service_batch_size" in obs["metric_families"]
    assert "repro_service_cache_misses_total" in obs["metric_families"]
    if not _small_mode():
        # perf gate only at full scale: smoke p50s are noise-bound
        assert obs["overhead"] <= OBSERVABILITY_P50_CEILING, (
            f"metrics-on p50 is x{obs['overhead']:.3f} the metrics-off "
            f"p50; ceiling x{OBSERVABILITY_P50_CEILING}")


if __name__ == "__main__":
    rendered, results = run_serve_benchmark()
    print(rendered)
    if not results["identical_correspondences"]:
        raise SystemExit(
            "FAIL: service and scalar loop disagree on correspondences")
    if not _small_mode() \
            and results["service_vs_scalar"] < SERVE_SPEEDUP_FLOOR:
        raise SystemExit(
            f"FAIL: service only {results['service_vs_scalar']:.2f}x "
            f"faster than the scalar online loop")
    cluster = results["cluster"]
    if not cluster["bit_identical"]:
        raise SystemExit(
            "FAIL: cluster scatter-gather disagrees with the single index")
    if cluster["restart_seconds"] >= RESTART_BUDGET_SECONDS:
        raise SystemExit(
            f"FAIL: snapshot restore took {cluster['restart_seconds']:.2f}s")
    if _scaling_gate_applies() \
            and cluster["scaling_vs_one_shard"] < CLUSTER_SCALING_FLOOR:
        raise SystemExit(
            f"FAIL: shard scaling only "
            f"{cluster['scaling_vs_one_shard']:.2f}x")
    pruning = results["pruning"]
    if not pruning["bit_identical"]:
        raise SystemExit(
            "FAIL: pruned top-k disagrees with the exhaustive ranking")
    if pruning["sweep"][-1]["touched_fraction"] \
            >= PRUNING_TOUCHED_FRACTION_CEILING:
        raise SystemExit(
            f"FAIL: pruned path touched "
            f"{pruning['sweep'][-1]['touched_fraction'] * 100.0:.1f}% "
            f"of the posting mass")
    if pruning["touched_per_query_growth"] \
            > PRUNING_COUNTER_GROWTH_CEILING:
        raise SystemExit(
            f"FAIL: touched/query grew "
            f"x{pruning['touched_per_query_growth']:.2f} across the "
            f"10x sweep")
    if not _small_mode() \
            and pruning["p99_growth"] > PRUNING_P99_GROWTH_CEILING:
        raise SystemExit(
            f"FAIL: pruned p99 grew x{pruning['p99_growth']:.2f} "
            f"across the 10x sweep")
    obs = results["observability"]
    if not obs["identical_correspondences"]:
        raise SystemExit(
            "FAIL: metrics-on run disagrees with the metrics-off run")
    if not _small_mode() and obs["overhead"] > OBSERVABILITY_P50_CEILING:
        raise SystemExit(
            f"FAIL: metrics-on p50 is x{obs['overhead']:.3f} the "
            f"metrics-off p50")
    print(f"OK: kernel-batched service beats the scalar online loop "
          f"{results['service_vs_scalar']:.2f}x on the mixed workload, "
          f"identical correspondences; cluster bit-identical across "
          f"{{{', '.join(map(str, cluster['shard_counts']))}}} shards, "
          f"restore to first answer "
          f"{cluster['restart_seconds'] * 1000.0:.0f}ms")
