"""Table 1 benchmark: dataset statistics (and generation throughput)."""

from repro.datagen import build_dataset
from repro.eval.experiments import run_table1


def test_table1_dataset_statistics(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_table1(bench_workbench), rounds=1, iterations=1)
    report(result.experiment_id, result.render())
    assert result.data["DBLP"]["publications"] > 0


def test_table1_generation_throughput(benchmark):
    """Time a full tiny-scale dataset generation (world + 3 views + gold)."""
    dataset = benchmark(lambda: build_dataset("tiny", seed=11))
    assert len(dataset.dblp.publications) > 0
