"""Table 10 benchmark: summary of matching results across all tasks."""

from repro.eval.experiments import run_table10


def test_table10_summary(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_table10(bench_workbench), rounds=1, iterations=1)
    report(result.experiment_id, result.render())
    # headline qualities of the reproduction (paper: 96.9-98.8 for
    # DBLP-ACM, ~88-89 for the GS pairs)
    assert result.data["DBLP-ACM|venues"] > 0.9
    assert result.data["DBLP-ACM|publications"] > 0.9
    assert result.data["DBLP-ACM|authors"] > 0.85
    assert result.data["DBLP-GS|publications"] > 0.8
    assert result.data["GS-ACM|publications"] > 0.8
