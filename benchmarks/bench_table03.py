"""Table 3 benchmark: direct vs composed vs merged compose paths."""

from repro.eval.experiments import run_table3


def test_table3_compose_paths(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_table3(bench_workbench), rounds=1, iterations=1)
    report(result.experiment_id, result.render())
    # the hub repair: composing GS-ACM through DBLP beats the link mapping
    assert result.data["GS-ACM"]["compose"]["f1"] > \
        result.data["GS-ACM"]["direct"]["f1"]
    # composing through the weak link mapping hurts the other pairs
    assert result.data["DBLP-ACM"]["compose"]["f1"] < \
        result.data["DBLP-ACM"]["direct"]["f1"]
    # merge retains the level of the best alternative
    for pair in ("DBLP-GS", "DBLP-ACM", "GS-ACM"):
        best = max(result.data[pair]["direct"]["f1"],
                   result.data[pair]["compose"]["f1"])
        assert result.data[pair]["merge"]["f1"] >= best - 0.1
