"""Ablation: blocking strategies for paper-scale attribute matching.

Measures candidate-pair reduction and pair completeness (the recall
ceiling blocking imposes) for every strategy, plus end-to-end matcher
wall time with and without blocking.  Token blocking is the repo's
default for titles; this bench justifies that choice.
"""

import time

from repro.blocking import (
    CanopyBlocking,
    KeyBlocking,
    SortedNeighborhood,
    TokenBlocking,
    pair_completeness,
    reduction_ratio,
)
from repro.core.matchers.attribute import AttributeMatcher
from repro.eval.report import Table, format_percent


def run_blocking_ablation(workbench):
    dblp = workbench.bundle("DBLP").publications
    acm = workbench.bundle("ACM").publications
    gold = workbench.gold("publications", "DBLP", "ACM")

    strategies = [
        ("token", TokenBlocking()),
        ("key (first token)", KeyBlocking()),
        ("sorted neighborhood w=7", SortedNeighborhood(window=7)),
        ("canopy", CanopyBlocking(loose=0.25, tight=0.7, seed=1)),
    ]
    table = Table(
        "Ablation: blocking strategies for DBLP-ACM title matching",
        ["strategy", "pairs", "reduction", "pair completeness",
         "block+match time"],
    )
    stats = {}
    for label, blocking in strategies:
        start = time.perf_counter()
        pairs = list(blocking.candidates(dblp, acm,
                                         domain_attribute="title",
                                         range_attribute="title"))
        matcher = AttributeMatcher("title", threshold=0.8)
        matcher.match(dblp, acm, candidates=pairs)
        elapsed = time.perf_counter() - start
        distinct = set(pairs)
        completeness = pair_completeness(distinct, gold)
        reduction = reduction_ratio(len(distinct), len(dblp), len(acm))
        stats[label] = {"pairs": len(distinct),
                        "completeness": completeness,
                        "reduction": reduction}
        table.add_row(label, len(distinct), format_percent(reduction),
                      format_percent(completeness), f"{elapsed:.2f}s")
    table.add_note(f"cross product would be {len(dblp) * len(acm)} pairs")
    return table, stats


def test_blocking_ablation(benchmark, bench_workbench, report):
    table, stats = benchmark.pedantic(
        lambda: run_blocking_ablation(bench_workbench),
        rounds=1, iterations=1)
    report("ablation-blocking", table.render())
    token = stats["token"]
    # the default must not cap attainable recall below ~99%
    assert token["completeness"] > 0.98
    # and must cut at least half of the cross product
    assert token["reduction"] > 0.5
