"""Benchmark fixtures: shared dataset, workbench and result reporting.

Scale is selected with ``REPRO_SCALE`` (``tiny`` / ``small`` /
``paper``; default ``small``) and the seed with ``REPRO_SEED``.  Every
benchmark registers its experiment table with the ``report`` fixture;
the tables are printed in the terminal summary so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
captures the full paper-vs-measured record.
"""

from __future__ import annotations

import os
from typing import List, Tuple

import pytest

from repro.datagen import build_dataset
from repro.eval.experiments import Workbench

_RESULTS: List[Tuple[str, str]] = []


@pytest.fixture(scope="session")
def bench_dataset():
    scale = os.environ.get("REPRO_SCALE", "small")
    seed = int(os.environ.get("REPRO_SEED", "7"))
    return build_dataset(scale, seed=seed)


@pytest.fixture(scope="session")
def bench_workbench(bench_dataset):
    return Workbench(bench_dataset)


@pytest.fixture
def report():
    """Collect a rendered experiment table for the terminal summary."""

    def _add(experiment_id: str, rendered: str) -> None:
        _RESULTS.append((experiment_id, rendered))

    return _add


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    terminalreporter.write_sep("=", "MOMA reproduction: paper vs measured")
    for _experiment_id, rendered in sorted(_RESULTS):
        terminalreporter.write_line("")
        terminalreporter.write_line(rendered)
    terminalreporter.write_line("")
