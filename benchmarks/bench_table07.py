"""Table 7 benchmark: DBLP-GS publications via author neighborhood."""

from repro.eval.experiments import run_table7


def test_table7_dblp_gs_publications(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_table7(bench_workbench), rounds=1, iterations=1)
    report(result.experiment_id, result.render())
    # the improvement is recall-driven (title-mangled GS entries are
    # recovered through author lists)
    assert result.data["merge"]["recall"] > \
        result.data["attribute"]["recall"] + 0.05
    assert result.data["merge"]["f1"] > result.data["attribute"]["f1"]
