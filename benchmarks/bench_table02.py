"""Table 2 benchmark: attribute matchers and their merge (DBLP-ACM)."""

from repro.eval.experiments import run_table2


def test_table2_attribute_matchers(benchmark, bench_workbench, report):
    result = benchmark.pedantic(
        lambda: run_table2(bench_workbench), rounds=1, iterations=1)
    report(result.experiment_id, result.render())
    # paper shape: title >> year; merge >= best single matcher
    assert result.data["title"]["f1"] > result.data["year"]["f1"]
    best_single = max(result.data[key]["f1"]
                      for key in ("title", "author", "year"))
    assert result.data["merge"]["f1"] >= best_single - 0.02
