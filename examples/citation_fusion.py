"""Citation analysis via mapping-based fusion (the iFuice use case).

The application that motivated MOMA ([29]): enrich curated DBLP
publications with citation counts from ACM and Google Scholar by
fusing the entities connected by same-mappings, then aggregate per
venue and per author.  Demonstrates the hub pattern of Figure 8: both
same-mappings anchor on DBLP.

Run with::

    python examples/citation_fusion.py
"""

from repro import AttributeMatcher, ThresholdSelection
from repro.blocking import TokenBlocking
from repro.datagen import build_dataset
from repro.fusion import citation_analysis


def main():
    dataset = build_dataset("tiny")
    dblp, acm, gs = dataset.dblp, dataset.acm, dataset.gs

    matcher = AttributeMatcher("title", similarity="trigram", threshold=0.5,
                               blocking=TokenBlocking())
    select = ThresholdSelection(0.8)
    dblp_acm = select.apply(matcher.match(dblp.publications,
                                          acm.publications))
    dblp_gs = select.apply(matcher.match(dblp.publications,
                                         gs.publications))

    report = citation_analysis(dblp, [acm, gs], [dblp_acm, dblp_gs])

    print("Top cited publications (fused DBLP+ACM+GS citation counts):")
    for pub_id, citations in report.top_publications(5):
        title = dblp.publications.require(pub_id).get("title")
        print(f"  {citations:6.0f}  {title}")

    print("\nTop venues by total citations:")
    for venue_id, citations in report.top_venues(5):
        name = dblp.venues.require(venue_id).get("name")
        pubs, _ = report.per_venue[venue_id]
        print(f"  {citations:7.0f}  {name:20s} ({pubs} publications)")

    print("\nTop authors by total citations:")
    for author_id, citations in report.top_authors(5):
        name = dblp.authors.require(author_id).get("name")
        pubs, _ = report.per_author[author_id]
        print(f"  {citations:7.0f}  {name:24s} ({pubs} publications)")

    uncited = sum(1 for count in report.per_publication.values()
                  if count == 0)
    print(f"\nFused citation coverage: "
          f"{len(report.per_publication) - uncited}/"
          f"{len(report.per_publication)} DBLP publications "
          "received a non-zero fused count.")


if __name__ == "__main__":
    main()
