"""Venue matching with the neighborhood matcher (§4.2, §5.4.1).

Shows why attribute matching fails for venues ("VLDB'02" vs
"Proceedings of the 28th International Conference on Very Large Data
Bases, 2002") and how the 1:n neighborhood matcher solves the task by
composing venue-publication associations around a publication
same-mapping.

Run with::

    python examples/venue_matching.py
"""

from repro import AttributeMatcher, BestNSelection, ThresholdSelection
from repro import neighborhood_match
from repro.blocking import TokenBlocking
from repro.datagen import build_dataset
from repro.eval import evaluate


def main():
    dataset = build_dataset("tiny")
    dblp, acm = dataset.dblp, dataset.acm
    gold = dataset.gold.venues("DBLP.Venue", "ACM.Venue")

    # 1. naive attribute matching on venue names: hopeless
    name_matcher = AttributeMatcher("name", similarity="trigram",
                                    threshold=0.5)
    by_name = BestNSelection(1).apply(name_matcher.match(dblp.venues,
                                                         acm.venues))
    quality = evaluate(by_name, gold)
    print("Attribute matching on venue names:")
    print(f"  P={quality.precision:.1%} R={quality.recall:.1%} "
          f"F={quality.f1:.1%}   <- the string-diversity problem")

    sample_dblp = dblp.venues.instances()[0]
    matching_acm = next(
        acm.venues.require(venue_id)
        for venue_id, true_id in dataset.acm.true_venue.items()
        if true_id == dataset.dblp.true_venue[sample_dblp.id]
    ) if dataset.dblp.true_venue[sample_dblp.id] in set(
        dataset.acm.true_venue.values()) else None
    if matching_acm is not None:
        print(f"  e.g. {sample_dblp.get('name')!r} vs "
              f"{matching_acm.get('name')!r}\n")

    # 2. the neighborhood matcher: venues match when their publications do
    title_matcher = AttributeMatcher("title", similarity="trigram",
                                     threshold=0.5,
                                     blocking=TokenBlocking())
    pub_same = ThresholdSelection(0.8).apply(
        title_matcher.match(dblp.publications, acm.publications))
    venue_same = neighborhood_match(dblp.venue_pub, pub_same, acm.pub_venue)

    print("Neighborhood matcher (venue-publication 1:n associations):")
    for selection, label in ((ThresholdSelection(0.8), "threshold 80%"),
                             (ThresholdSelection(0.5), "threshold 50%"),
                             (BestNSelection(1), "best-1")):
        quality = evaluate(selection.apply(venue_same), gold)
        print(f"  {label:14s} P={quality.precision:.1%} "
              f"R={quality.recall:.1%} F={quality.f1:.1%}")

    print("\nBest-1 correspondences (sample):")
    best = BestNSelection(1).apply(venue_same)
    for domain, range_, similarity in sorted(best.to_rows())[:6]:
        dblp_name = dblp.venues.require(domain).get("name")
        acm_name = acm.venues.require(range_).get("name")
        print(f"  {dblp_name:24s} ~ {acm_name:58s} sim={similarity:.2f}")


if __name__ == "__main__":
    main()
