"""Duplicate author detection within DBLP — the paper's §4.3 script.

Runs the exact iFuice-style script from the paper through the script
engine and lists the top duplicate-author candidates with their
co-author overlap and name similarity, Table-9 style.

Run with::

    python examples/duplicate_detection.py
"""

from repro.datagen import build_dataset
from repro.script import ScriptEngine

PAPER_SCRIPT = """
# §4.3: detect duplicate authors in DBLP via co-authorship + names.
$CoAuthSim = nhMatch (DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor)
$NameSim = attrMatch (DBLP.Author, DBLP.Author, Trigram, 0.5,
                      "[name]", "[name]")
$Merged = merge ($CoAuthSim, $NameSim, Avg0)
$Result = select ($Merged, "[domain.id]<>[range.id]")
"""


def main():
    dataset = build_dataset("tiny")
    engine = ScriptEngine(smm=dataset.smm)
    result = engine.run(PAPER_SCRIPT)

    authors = dataset.dblp.authors
    co_author_sim = engine.variables["CoAuthSim"]
    name_sim = engine.variables["NameSim"]

    seen = set()
    candidates = []
    for correspondence in result:
        key = tuple(sorted((correspondence.domain, correspondence.range)))
        if key in seen:
            continue
        seen.add(key)
        candidates.append(correspondence)
    candidates.sort(key=lambda c: -c.similarity)

    gold = dataset.gold.get("author-duplicates", authors.name, authors.name)
    gold_pairs = {tuple(sorted(pair)) for pair in gold.pairs()}

    print("Top duplicate author candidates in DBLP (cf. paper Table 9):\n")
    print(f"{'rank':>4}  {'author':22s} {'author~':22s} "
          f"{'co-auth':>7} {'name':>6} {'merge':>6}  injected?")
    for rank, corr in enumerate(candidates[:10], start=1):
        name_a = authors.require(corr.domain).get("name")
        name_b = authors.require(corr.range).get("name")
        co = co_author_sim.get(corr.domain, corr.range) or 0.0
        nm = name_sim.get(corr.domain, corr.range) or 0.0
        injected = tuple(sorted((corr.domain, corr.range))) in gold_pairs
        print(f"{rank:>4}  {name_a:22s} {name_b:22s} "
              f"{co:7.0%} {nm:6.0%} {corr.similarity:6.0%}  "
              f"{'YES' if injected else ''}")

    top = {tuple(sorted((c.domain, c.range)))
           for c in candidates[:3 * len(gold_pairs)]}
    found = len(top & gold_pairs)
    print(f"\nInjected duplicates recovered in top candidates: "
          f"{found}/{len(gold_pairs)}")
    print("Note the 'Catalina Fan ~ Catalina Wei' phenomenon: pairs that "
          "share co-authors and a first name\nbut cannot be confirmed — "
          "exactly the problem cases the paper says MOMA surfaces.")


if __name__ == "__main__":
    main()
