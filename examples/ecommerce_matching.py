"""Product matching between two shops — MOMA beyond bibliography.

The paper's outlook (§7) names e-commerce as the next target domain.
This example matches a curated catalog against a noisy marketplace
feed and shows that every strategy transfers unchanged:

1. attribute matching on product names;
2. 1:n neighborhood matching of *brands* via matched products (the
   venue-publication pattern);
3. merging a category-constrained refinement into the direct matcher
   (the Figure-11 pattern).

Run with::

    python examples/ecommerce_matching.py
"""

from repro import (
    AttributeMatcher,
    BestNSelection,
    ThresholdSelection,
    merge,
    neighborhood_match,
)
from repro.datagen.ecommerce import EcommerceConfig, build_ecommerce_dataset
from repro.eval import evaluate


def main():
    data = build_ecommerce_dataset(EcommerceConfig(seed=5, products=200))
    catalog, market = data.catalog, data.market
    product_gold = data.gold.get("products", "Catalog.Product",
                                 "Market.Product")

    sample_true = next(iter(market.true_product.values()))
    clean = data.products[sample_true].name
    offered = next(
        market.products.require(offer_id).get("name")
        for offer_id, true_id in market.true_product.items()
        if true_id == sample_true)
    print("Sample dirty pair:")
    print(f"  catalog: {clean!r}")
    print(f"  market : {offered!r}\n")

    # 1. direct attribute matching on names
    name_matcher = AttributeMatcher("name", similarity="trigram",
                                    threshold=0.55)
    fuzzy = name_matcher.match(catalog.products, market.products)
    direct = ThresholdSelection(0.8).apply(fuzzy)
    quality = evaluate(BestNSelection(1, side="range").apply(direct),
                       product_gold)
    print(f"1. name matcher @0.8 + best-1:      "
          f"P={quality.precision:.1%} R={quality.recall:.1%} "
          f"F={quality.f1:.1%}")

    # 2. brand matching via the product neighborhood (1:n)
    brand_same = BestNSelection(1).apply(neighborhood_match(
        catalog.brand_product, direct, market.product_brand))
    brand_quality = evaluate(brand_same,
                             data.gold.get("brands", "Catalog.Brand",
                                           "Market.Brand"))
    print(f"2. brand neighborhood matcher:      "
          f"P={brand_quality.precision:.1%} R={brand_quality.recall:.1%} "
          f"F={brand_quality.f1:.1%}")

    # 3. category-constrained refinement merged into the direct result
    category_same = BestNSelection(1).apply(neighborhood_match(
        catalog.category_product, direct, market.product_category))
    constrained = neighborhood_match(
        catalog.product_category, category_same, market.category_product)
    refined = merge([ThresholdSelection(0.55).apply(fuzzy), constrained],
                    "min0")
    merged = BestNSelection(1, side="range").apply(
        merge([direct, refined], "max"))
    merged_quality = evaluate(merged, product_gold)
    print(f"3. + category-constrained refine:   "
          f"P={merged_quality.precision:.1%} "
          f"R={merged_quality.recall:.1%} F={merged_quality.f1:.1%}")

    print("\nSame operators, same workflows — different domain.")


if __name__ == "__main__":
    main()
