"""Walk through the paper's worked figures with exact values.

Reproduces Figure 1 (example same-mapping), Figure 4 (merge operator),
Figure 6 (compose with f=Min, g=Relative) and Figure 9 (neighborhood
matcher) and checks every printed number against the paper.

Run with::

    python examples/paper_walkthrough.py
"""

from repro.eval.experiments import (
    run_figure1,
    run_figure4,
    run_figure6,
    run_figure9,
)


def main():
    for runner in (run_figure1, run_figure4, run_figure6, run_figure9):
        result = runner()
        print(result.render())
        status = "OK" if result.data["matches_paper"] else "MISMATCH"
        print(f"  -> {status}\n")


if __name__ == "__main__":
    main()
