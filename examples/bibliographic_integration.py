"""Full bibliographic integration scenario (the paper's evaluation).

Generates the synthetic DBLP / ACM / Google Scholar views, runs every
experiment of §5 and prints the paper-vs-measured tables.  This is the
programmatic equivalent of ``pytest benchmarks/ --benchmark-only``.

Run with::

    python examples/bibliographic_integration.py [tiny|small|paper]
"""

import sys
import time

from repro.datagen import build_dataset, dataset_statistics
from repro.eval.experiments import (
    Workbench,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
    run_table9,
    run_table10,
)


def main():
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    print(f"Generating synthetic bibliographic dataset (scale={scale!r})...")
    start = time.perf_counter()
    dataset = build_dataset(scale)
    print(f"  done in {time.perf_counter() - start:.1f}s: "
          f"{dataset_statistics(dataset)}\n")

    workbench = Workbench(dataset)
    for runner in (run_table1, run_table2, run_table3, run_table4,
                   run_table5, run_table6, run_table7, run_table8,
                   run_table9, run_table10):
        start = time.perf_counter()
        result = runner(workbench)
        print(result.render())
        print(f"  [{result.experiment_id} in "
              f"{time.perf_counter() - start:.1f}s]\n")


if __name__ == "__main__":
    main()
