"""Self-tuning match configuration (§2.2).

MOMA "will provide self-tuning capabilities to automatically select
matchers and mappings and to find optimal configuration parameters ...
these parameters can be optimized by standard machine learning
schemes, e.g. using decision trees."  This example:

1. grid-searches attribute / similarity-function / threshold choices
   against a small training sample of the gold standard;
2. learns a decision-tree match rule over several similarity features;
3. tunes merge weights for the weighted combination.

Run with::

    python examples/self_tuning.py
"""

from repro import AttributeMatcher, GridSearchTuner
from repro.core.tuning import (
    DecisionTreeMatcherTuner,
    FeatureSpec,
    tune_merge_weights,
)
from repro.datagen import build_dataset
from repro.eval import evaluate


def main():
    dataset = build_dataset("tiny")
    dblp, acm = dataset.dblp, dataset.acm
    gold = dataset.gold.publications("DBLP.Publication", "ACM.Publication")

    print("1. Grid search over attribute matcher configurations")
    tuner = GridSearchTuner(
        attributes=["title", "authors", "year"],
        similarities=["trigram", "tfidf", "jaccard"],
        thresholds=[0.5, 0.65, 0.8, 0.9],
    )
    best = tuner.tune(dblp.publications, acm.publications, gold)
    print(f"   tried {len(best.trials)} configurations; best: "
          f"{best.params} -> F={best.f1:.1%}\n")

    print("2. Decision-tree match rule over similarity features")
    tree_tuner = DecisionTreeMatcherTuner(
        features=[FeatureSpec("title"),
                  FeatureSpec("authors"),
                  FeatureSpec("year", similarity="year")],
        negatives_per_positive=4, seed=1)
    tree_matcher = tree_tuner.fit(dblp.publications, acm.publications, gold)
    predicted = tree_matcher.match(dblp.publications, acm.publications)
    quality = evaluate(predicted, gold)
    print(f"   learned tree of depth {tree_tuner.tree.depth()}; "
          f"P={quality.precision:.1%} R={quality.recall:.1%} "
          f"F={quality.f1:.1%}\n")

    print("3. Merge-weight tuning (title + authors matchers, Weighted)")
    title_map = AttributeMatcher("title", threshold=0.4).match(
        dblp.publications, acm.publications)
    authors_map = AttributeMatcher("authors", threshold=0.4).match(
        dblp.publications, acm.publications)
    weights, threshold, f1 = tune_merge_weights(
        [title_map, authors_map], gold, steps=5)
    print(f"   best weights={weights}, threshold={threshold:.2f} "
          f"-> F={f1:.1%}")


if __name__ == "__main__":
    main()
