"""Online matching of web query results (§2.1's second use case).

Web sources cannot be downloaded, only queried; object matching then
runs on query results as they arrive.  This example runs the serving
subsystem the way a deployment would: a
:class:`~repro.serve.MatchService` holds DBLP behind an incrementally
indexed, kernel-packed reference, the v1 HTTP server fronts it, and a
:class:`~repro.serve.Client` drives everything over the wire — query
batches from the simulated Google Scholar source score through single
kernel calls, repeated results reuse the cache (the paper's mapping
reuse), matched same-mappings persist into a
:class:`~repro.model.repository.MappingRepository`, and a late
"publication feed" ingest shows reference mutation with precise cache
invalidation.

Run with::

    python examples/online_matching.py
"""

import threading

from repro.datagen import build_dataset
from repro.datagen.query import QueryClient
from repro.model.entity import ObjectInstance
from repro.model.repository import MappingRepository
from repro.serve import Client, MatchService, ServeConfig
from repro.serve.http import build_server


def main():
    dataset = build_dataset("tiny")
    gs_client = QueryClient(dataset.gs.publications, attribute="title")
    repository = MappingRepository(":memory:")
    service = MatchService(
        dataset.dblp.publications,
        config=ServeConfig(attribute="title", similarity="trigram",
                           threshold=0.75,
                           mapping_name="gs-vs-dblp",
                           source_name="GS.Publication"),
        repository=repository)
    server = build_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = Client(f"http://{host}:{port}")

    print(f"match service listening on http://{host}:{port} "
          f"({client.healthz()['records']} DBLP records)")
    print("Simulating query-time integration: query GS per DBLP title,")
    print("match each result batch online over the v1 HTTP API.\n")

    gold = dataset.gold.publications("GS.Publication", "DBLP.Publication")
    shown = 0
    correct = total = 0
    for pub_id in dataset.dblp.publications.ids():
        title = dataset.dblp.publications.require(pub_id).get("title")
        results = gs_client.search(title, max_results=3)
        if not results:
            continue
        matches_by_id = client.match(results)["matches"]
        for result in results:
            matches = matches_by_id[result.id]
            if not matches:
                continue
            total += 1
            best_id, score = matches[0]
            is_correct = gold.get(result.id, best_id) is not None
            correct += is_correct
            if shown < 8:
                shown += 1
                mark = "+" if is_correct else "!"
                print(f" {mark} GS {result.id}: "
                      f"{str(result.get('title'))[:46]:46s} "
                      f"-> {best_id} (sim={score:.2f})")

    stats = client.stats()
    print(f"\nmatched {total} query results online, "
          f"{correct / total:.1%} of top-1 matches correct")
    print(f"reuse cache: {stats['cache']['hits']} hits / "
          f"{stats['cache']['misses']} misses "
          "(duplicate GS entries returned by several queries are free)")
    print(f"kernel micro-batches: {stats['batches']} calls for "
          f"{stats['batched_records']} records")
    print(f"repository: {repository.info('gs-vs-dblp')['correspondences']} "
          "correspondences materialized in 'gs-vs-dblp'")

    # the reference is live: ingest a fresh record and match against it
    fresh = ObjectInstance("dblp-fresh-1", {
        "title": "Mapping-based Object Matching as a Service"})
    client.ingest([fresh])
    probe = ObjectInstance("gs-probe", {
        "title": "mapping based object matching as a service"})
    best = client.match_record(probe)
    print(f"\nafter ingest, new record matches immediately: "
          f"{best[0][0]} (sim={best[0][1]:.2f})")

    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


if __name__ == "__main__":
    main()
