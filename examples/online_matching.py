"""Online matching of web query results (§2.1's second use case).

Web sources cannot be downloaded, only queried; object matching then
runs on query results as they arrive.  This example runs the serving
subsystem programmatically: a :class:`~repro.serve.MatchService` holds
DBLP behind an incrementally indexed, kernel-packed reference, query
batches from the simulated Google Scholar source score through single
kernel calls, repeated results reuse the cache (the paper's mapping
reuse), matched same-mappings persist into a
:class:`~repro.model.repository.MappingRepository`, and a late
"publication feed" ingest shows reference mutation with precise cache
invalidation.

Run with::

    python examples/online_matching.py
"""

from repro.datagen import build_dataset
from repro.datagen.query import QueryClient
from repro.model.entity import ObjectInstance
from repro.model.repository import MappingRepository
from repro.serve import MatchService


def main():
    dataset = build_dataset("tiny")
    gs_client = QueryClient(dataset.gs.publications, attribute="title")
    repository = MappingRepository(":memory:")
    service = MatchService(dataset.dblp.publications, "title", "trigram",
                           threshold=0.75,
                           repository=repository,
                           mapping_name="gs-vs-dblp",
                           source_name="GS.Publication")
    gold = dataset.gold.publications("GS.Publication", "DBLP.Publication")

    print("Simulating query-time integration: query GS per DBLP title,")
    print("match each result batch online against the DBLP service.\n")

    shown = 0
    correct = total = 0
    for pub_id in dataset.dblp.publications.ids():
        title = dataset.dblp.publications.require(pub_id).get("title")
        results = gs_client.search(title, max_results=3)
        if not results:
            continue
        mapping = service.match_batch(results)
        for result in results:
            matches = sorted(mapping.range_ids_of(result.id).items(),
                             key=lambda item: (-item[1], item[0]))
            if not matches:
                continue
            total += 1
            best_id, score = matches[0]
            is_correct = gold.get(result.id, best_id) is not None
            correct += is_correct
            if shown < 8:
                shown += 1
                mark = "+" if is_correct else "!"
                print(f" {mark} GS {result.id}: "
                      f"{str(result.get('title'))[:46]:46s} "
                      f"-> {best_id} (sim={score:.2f})")

    stats = service.stats()
    print(f"\nmatched {total} query results online, "
          f"{correct / total:.1%} of top-1 matches correct")
    print(f"reuse cache: {stats['cache']['hits']} hits / "
          f"{stats['cache']['misses']} misses "
          "(duplicate GS entries returned by several queries are free)")
    print(f"kernel micro-batches: {stats['batches']} calls for "
          f"{stats['batched_records']} records")
    print(f"repository: {repository.info('gs-vs-dblp')['correspondences']} "
          "correspondences materialized in 'gs-vs-dblp'")

    # the reference is live: ingest a fresh record and match against it
    fresh = ObjectInstance("dblp-fresh-1", {
        "title": "Mapping-based Object Matching as a Service"})
    service.ingest([fresh])
    probe = ObjectInstance("gs-probe", {
        "title": "mapping based object matching as a service"})
    best = service.match_record(probe)
    print(f"\nafter ingest, new record matches immediately: "
          f"{best[0][0]} (sim={best[0][1]:.2f})")


if __name__ == "__main__":
    main()
