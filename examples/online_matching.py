"""Online matching of web query results (§2.1's second use case).

Web sources cannot be downloaded, only queried; object matching then
runs on query results as they arrive.  This example queries the
simulated Google Scholar source title-by-title (the paper's harvest
procedure) and matches each result batch against DBLP with the
incremental :class:`OnlineMatcher`, whose per-record cache plays the
role of the mapping cache.

Run with::

    python examples/online_matching.py
"""

from repro.core.online import OnlineMatcher
from repro.datagen import build_dataset
from repro.datagen.query import QueryClient


def main():
    dataset = build_dataset("tiny")
    gs_client = QueryClient(dataset.gs.publications, attribute="title")
    matcher = OnlineMatcher(dataset.dblp.publications, "title",
                            threshold=0.75)
    gold = dataset.gold.publications("GS.Publication", "DBLP.Publication")

    print("Simulating query-time integration: query GS per DBLP title,")
    print("match results online against the local DBLP store.\n")

    shown = 0
    correct = total = 0
    for pub_id in dataset.dblp.publications.ids():
        title = dataset.dblp.publications.require(pub_id).get("title")
        results = gs_client.search(title, max_results=3)
        for result in results:
            matches = matcher.match_record(result)
            if not matches:
                continue
            total += 1
            best_id, score = matches[0]
            is_correct = gold.get(result.id, best_id) is not None
            correct += is_correct
            if shown < 8:
                shown += 1
                mark = "+" if is_correct else "!"
                print(f" {mark} GS {result.id}: "
                      f"{str(result.get('title'))[:46]:46s} "
                      f"-> {best_id} (sim={score:.2f})")

    stats = matcher.cache_stats()
    print(f"\nmatched {total} query results online, "
          f"{correct / total:.1%} of top-1 matches correct")
    print(f"online matcher cache: {stats['hits']} hits / "
          f"{stats['misses']} misses "
          "(duplicate GS entries returned by several queries are free)")


if __name__ == "__main__":
    main()
