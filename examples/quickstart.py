"""Quickstart: match two small publication sources with MOMA.

Builds two in-memory logical sources, runs two attribute matchers,
merges their results and selects with a threshold — the §4.1.1
"independently executed matchers" strategy in ~40 lines.

Run with::

    python examples/quickstart.py
"""

from repro import (
    AttributeMatcher,
    LogicalSource,
    ObjectType,
    PhysicalSource,
    ThresholdSelection,
    merge,
)


def build_sources():
    dblp = LogicalSource(PhysicalSource("DBLP"), ObjectType("Publication"))
    acm = LogicalSource(PhysicalSource("ACM"), ObjectType("Publication"))

    dblp.add_record("conf/VLDB/MadhavanBR01",
                    title="Generic Schema Matching with Cupid", year=2001)
    dblp.add_record("conf/VLDB/ChirkovaHS01",
                    title="A formal perspective on the view selection problem",
                    year=2001)
    dblp.add_record("journals/VLDB/ChirkovaHS02",
                    title="A formal perspective on the view selection problem",
                    year=2002)

    acm.add_record("P-672191",
                   title="Generic Schema Matching with Cupid", year=2001)
    acm.add_record("P-672216",
                   title="A formal perspective on the view selection problem",
                   year=2001)
    acm.add_record("P-641272",
                   title="A formal perspective on the view selection problem",
                   year=2002)
    return dblp, acm


def main():
    dblp, acm = build_sources()

    # two independent attribute matchers ...
    title_matcher = AttributeMatcher("title", similarity="trigram",
                                     threshold=0.5)
    year_matcher = AttributeMatcher("year", similarity="year", threshold=0.1)
    title_mapping = title_matcher.match(dblp, acm)
    year_mapping = year_matcher.match(dblp, acm)

    # ... merged into one same-mapping, then selected
    merged = merge([title_mapping, year_mapping], "avg")
    same_mapping = ThresholdSelection(0.75).apply(merged)

    print("Publication same-mapping DBLP ~ ACM (cf. paper Figure 1):")
    for domain, range_, similarity in same_mapping.to_rows():
        print(f"  {domain:32s} ~ {range_:10s}  sim={similarity:.2f}")

    ambiguous = [d for d in same_mapping.domain_ids()
                 if same_mapping.out_degree(d) > 1]
    print(f"\n{len(same_mapping)} correspondences; "
          f"{len(ambiguous)} DBLP publications remain ambiguous "
          "(the conference/journal-version effect).")


if __name__ == "__main__":
    main()
